"""NP-completeness of ``DAG-ChkptSched`` for join DAGs (Theorem 2).

The paper proves NP-completeness by reduction from SUBSET-SUM: given positive
integers :math:`w_1, \\dots, w_n` and a target ``X``, the reduction builds a
join DAG with ``n`` sources (weights :math:`w_i`, zero recovery cost, carefully
chosen checkpoint costs) and a zero-weight sink, such that a schedule meeting
the makespan bound exists iff a subset of the integers sums to ``X``.

With :math:`r_i = 0` the task ordering is irrelevant (Corollary 2) and the
*scaled* expected makespan (dropping the constant factor
:math:`1/\\lambda + D`, with ``D = 0`` as in the reduction) is

.. math::

    \\hat{E}[T] = \\sum_{i \\in I_{Ckpt}} \\left(e^{\\lambda (w_i + c_i)} - 1\\right)
                + e^{\\lambda \\sum_{i \\in I_{NCkpt}} w_i} - 1
               = \\lambda e^{\\lambda X}(S - W) + e^{\\lambda W} - 1

where ``S`` is the sum of all weights and ``W`` the weight of the
non-checkpointed set.  The function is minimised at ``W = X``, where it equals
the bound :math:`t_{min} = \\lambda e^{\\lambda X}(S - X) + e^{\\lambda X} - 1`.

This module exposes the reduction (useful for testing the evaluator and for
pedagogy) and a tiny exact SUBSET-SUM solver driven through the scheduling
formulation, demonstrating the equivalence on small instances.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.dag import Workflow
from ..core.platform import Platform
from ..core.task import Task

__all__ = [
    "SubsetSumReduction",
    "build_reduction",
    "scaled_expected_makespan",
    "certificate_is_valid",
    "solve_subset_sum_by_reduction",
]


@dataclass(frozen=True)
class SubsetSumReduction:
    """The join-DAG instance produced from a SUBSET-SUM instance.

    Attributes
    ----------
    workflow:
        Join DAG with ``n`` sources and one zero-weight sink (the sink has
        index ``n``).
    platform:
        Platform with failure rate ``lambda`` and zero downtime.
    threshold:
        The makespan bound :math:`t_{min}` (in the scaled units described in
        the module docstring).
    weights:
        Original SUBSET-SUM integers.
    target:
        Original SUBSET-SUM target ``X``.
    """

    workflow: Workflow
    platform: Platform
    threshold: float
    weights: tuple[float, ...]
    target: float

    @property
    def n_items(self) -> int:
        """Number of SUBSET-SUM items (= number of join sources)."""
        return len(self.weights)

    @property
    def sink_index(self) -> int:
        """Index of the sink task in the workflow."""
        return self.n_items


def build_reduction(
    weights: Sequence[float],
    target: float,
    *,
    failure_rate: float | None = None,
) -> SubsetSumReduction:
    """Build the Theorem-2 join instance from a SUBSET-SUM instance.

    Parameters
    ----------
    weights:
        Strictly positive item values :math:`w_1 \\dots w_n`.
    target:
        The SUBSET-SUM target ``X`` (``0 < X <= sum(weights)`` for the instance
        to be interesting; other values are allowed but trivially infeasible).
    failure_rate:
        The reduction requires :math:`\\lambda \\ge 1 / \\min_i w_i` so that all
        checkpoint costs are positive; by default the smallest such value is
        used.
    """
    weights = tuple(float(w) for w in weights)
    if not weights:
        raise ValueError("weights must be non-empty")
    if any(w <= 0 for w in weights):
        raise ValueError("SUBSET-SUM weights must be strictly positive")
    target = float(target)
    if target < 0:
        raise ValueError("target must be non-negative")
    if any(w > target for w in weights):
        # Items heavier than the target can never belong to the subset; the
        # reduction's checkpoint cost c_i = (X - w_i) + log(lambda w_i + e^{-lambda X}) / lambda
        # would be negative for them.  Such items can be removed from the
        # SUBSET-SUM instance without loss of generality, which is what the
        # paper's construction implicitly assumes.
        raise ValueError(
            "every SUBSET-SUM weight must be <= target; drop heavier items first "
            "(they can never be part of the subset)"
        )

    min_w = min(weights)
    lam = failure_rate if failure_rate is not None else 1.0 / min_w
    if lam < 1.0 / min_w - 1e-12:
        raise ValueError(
            f"failure_rate must be at least 1/min(weights) = {1.0 / min_w:g} "
            "for all checkpoint costs to be positive"
        )

    n = len(weights)
    tasks = []
    for i, w in enumerate(weights):
        c = (target - w) + math.log(lam * w + math.exp(-lam * target)) / lam
        tasks.append(
            Task(
                index=i,
                weight=w,
                checkpoint_cost=c,
                recovery_cost=0.0,
                name=f"item{i}",
                category="subset-sum-item",
            )
        )
    tasks.append(Task(index=n, weight=0.0, name="sink", category="subset-sum-sink"))
    edges = [(i, n) for i in range(n)]
    workflow = Workflow(tasks, edges, name="subset-sum-join")

    total = sum(weights)
    threshold = lam * math.exp(lam * target) * (total - target) + math.expm1(lam * target)
    platform = Platform.from_platform_rate(lam, downtime=0.0)
    return SubsetSumReduction(
        workflow=workflow,
        platform=platform,
        threshold=threshold,
        weights=weights,
        target=target,
    )


def scaled_expected_makespan(
    reduction: SubsetSumReduction, checkpointed: Iterable[int]
) -> float:
    """Scaled expected makespan of a schedule of the reduction instance.

    This is the quantity compared against ``reduction.threshold``:
    :math:`\\lambda \\cdot E[T]` with ``D = 0`` — i.e. Equation (3) of the paper
    without its :math:`(1/\\lambda + D)` factor.  With zero recovery costs the
    task ordering is irrelevant (Corollary 2), so only the checkpoint set
    matters.
    """
    lam = reduction.platform.failure_rate
    workflow = reduction.workflow
    sink = reduction.sink_index
    ckpt = set(int(i) for i in checkpointed)
    ckpt.discard(sink)
    total = 0.0
    non_ckpt_work = workflow.task(sink).weight
    for i in range(reduction.n_items):
        task = workflow.task(i)
        if i in ckpt:
            total += math.expm1(lam * (task.weight + task.checkpoint_cost))
        else:
            non_ckpt_work += task.weight
    total += math.expm1(lam * non_ckpt_work)
    return total


def certificate_is_valid(
    reduction: SubsetSumReduction, checkpointed: Iterable[int], *, tolerance: float = 1e-9
) -> bool:
    """Whether a checkpoint set meets the reduction's makespan bound.

    By Theorem 2 this holds iff the *non*-checkpointed items sum exactly to the
    SUBSET-SUM target.
    """
    value = scaled_expected_makespan(reduction, checkpointed)
    return value <= reduction.threshold * (1.0 + tolerance) + tolerance


def solve_subset_sum_by_reduction(
    weights: Sequence[float], target: float
) -> tuple[bool, frozenset[int]]:
    """Exhaustively solve a (small) SUBSET-SUM instance through the reduction.

    Enumerates every checkpoint set of the reduced join instance and checks the
    makespan bound; the non-checkpointed items of a valid certificate form the
    subset summing to ``target``.  Exponential — intended for tests and
    demonstrations with at most ~20 items.

    Returns
    -------
    (feasible, subset):
        ``feasible`` is True when some subset sums to ``target``; ``subset``
        contains the item indices of one such subset (empty when infeasible).
    """
    reduction = build_reduction(weights, target)
    items = range(reduction.n_items)
    for size in range(reduction.n_items + 1):
        for non_ckpt in itertools.combinations(items, size):
            checkpointed = [i for i in items if i not in non_ckpt]
            if certificate_is_valid(reduction, checkpointed):
                return True, frozenset(non_ckpt)
    return False, frozenset()
