"""Join DAGs: structure of optimal schedules (Section 4.1.2 of the paper).

A *join* DAG has ``n`` source tasks :math:`T_1 \\dots T_n` and a single sink
:math:`T_{sink}` that depends on all of them.  ``DAG-ChkptSched`` is
NP-complete for joins (Theorem 2, see :mod:`repro.theory.npcomplete`), but the
paper proves strong structural results that this module implements:

* **Lemma 1** — in an optimal schedule the checkpointed sources are executed
  before the non-checkpointed ones, and after a failure the recoveries of
  already-executed checkpointed sources are deferred until after the last
  checkpointed source.
* **Lemma 2** — given the partition (``ICkpt``, ``INCkpt``), the optimal order
  of the checkpointed sources is by non-increasing

  .. math::

     g(i) = e^{-\\lambda (w_i + c_i + r_i)} + e^{-\\lambda r_i}
            - e^{-\\lambda (w_i + c_i)}

  and the resulting expected makespan has the closed form of Equation (2).
* **Corollary 1** — when every task has the same checkpoint cost ``c`` and the
  same recovery cost ``r``, the problem becomes polynomial: sort the sources by
  non-increasing weight and try every prefix size as the checkpointed set.
* **Corollary 2** — when all recovery costs are zero the ordering does not
  matter and the expected makespan is Equation (3).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.dag import Workflow
from ..core.expectation import expected_execution_time
from ..core.platform import Platform
from ..core.schedule import Schedule

__all__ = [
    "JoinSolution",
    "g_priority",
    "join_expected_makespan",
    "optimal_join_order",
    "solve_join_equal_costs",
    "join_schedule",
]


@dataclass(frozen=True)
class JoinSolution:
    """A join schedule together with its (analytical) expected makespan."""

    schedule: Schedule
    expected_makespan: float
    checkpointed_sources: frozenset[int]


def _join_parts(workflow: Workflow) -> tuple[tuple[int, ...], int]:
    """Return (sources, sink) after validating the join shape."""
    if not workflow.is_join():
        raise ValueError(
            "workflow is not a join DAG (one sink, all other tasks are sources "
            "feeding only into it)"
        )
    sink = workflow.sinks[0]
    sources = tuple(i for i in range(workflow.n_tasks) if i != sink)
    return sources, sink


def g_priority(workflow: Workflow, task_index: int, platform: Platform) -> float:
    """The ordering priority ``g(i)`` of Lemma 2 (higher executes earlier)."""
    task = workflow.task(task_index)
    lam = platform.failure_rate
    return (
        math.exp(-lam * (task.weight + task.checkpoint_cost + task.recovery_cost))
        + math.exp(-lam * task.recovery_cost)
        - math.exp(-lam * (task.weight + task.checkpoint_cost))
    )


def optimal_join_order(
    workflow: Workflow,
    platform: Platform,
    checkpointed: Iterable[int],
) -> tuple[int, ...]:
    """Optimal linearization for a join given its checkpointed set (Lemmas 1-2).

    Checkpointed sources come first, ordered by non-increasing ``g``; then the
    non-checkpointed sources (their order is irrelevant — index order is used);
    the sink comes last.
    """
    sources, sink = _join_parts(workflow)
    ckpt = set(int(i) for i in checkpointed)
    if sink in ckpt:
        # Checkpointing the sink never helps (nothing runs after it); tolerate
        # but ignore it for ordering purposes.
        ckpt.discard(sink)
    unknown = ckpt.difference(sources)
    if unknown:
        raise ValueError(f"checkpointed tasks {sorted(unknown)} are not sources of the join")
    ckpt_sorted = sorted(
        (i for i in sources if i in ckpt),
        key=lambda i: (-g_priority(workflow, i, platform), i),
    )
    plain = [i for i in sources if i not in ckpt]
    return tuple(ckpt_sorted + plain + [sink])


def join_schedule(
    workflow: Workflow,
    platform: Platform,
    checkpointed: Iterable[int],
) -> Schedule:
    """Build the Lemma-1/Lemma-2 schedule for a given checkpointed set."""
    ckpt = frozenset(int(i) for i in checkpointed)
    order = optimal_join_order(workflow, platform, ckpt)
    sink = workflow.sinks[0]
    return Schedule(workflow, order, ckpt - {sink})


def join_expected_makespan(
    workflow: Workflow,
    platform: Platform,
    checkpointed: Iterable[int],
    order: Sequence[int] | None = None,
) -> float:
    """Expected makespan of a join schedule via Equation (2) of the paper.

    Parameters
    ----------
    workflow:
        A join DAG.
    platform:
        Failure-prone platform (rate :math:`\\lambda`, downtime ``D``).
    checkpointed:
        The checkpointed sources ``ICkpt``.
    order:
        Execution order of the checkpointed sources (a sequence of task
        indices).  Defaults to the optimal non-increasing ``g`` order.  The
        non-checkpointed sources' order is irrelevant (Lemma 2's proof).

    Notes
    -----
    In the failure-free case the result is simply the total work plus the
    checkpoint costs of ``ICkpt``.
    """
    sources, sink = _join_parts(workflow)
    lam = platform.failure_rate
    downtime = platform.downtime
    ckpt = [i for i in (order if order is not None else sources) if i in set(checkpointed)]
    ckpt_set = set(ckpt)
    if order is None:
        ckpt = [
            i
            for i in optimal_join_order(workflow, platform, ckpt_set)
            if i in ckpt_set
        ]
    non_ckpt = [i for i in sources if i not in ckpt_set]

    w = {i: workflow.task(i).weight for i in range(workflow.n_tasks)}
    c = {i: workflow.task(i).checkpoint_cost for i in range(workflow.n_tasks)}
    r = {i: workflow.task(i).recovery_cost for i in range(workflow.n_tasks)}

    work_nckpt = sum(w[i] for i in non_ckpt) + w[sink]

    if lam == 0.0:
        return sum(w[i] + c[i] for i in ckpt) + work_nckpt

    # Phase 1: each checkpointed source (with its checkpoint) is an independent
    # renewal segment.
    phase1 = sum(
        expected_execution_time(w[i], c[i], 0.0, lam, downtime) for i in ckpt
    )

    if not ckpt:
        # No checkpointed source: the whole remaining work must complete
        # without failure, restarting from scratch after each failure.
        return phase1 + expected_execution_time(work_nckpt, 0.0, 0.0, lam, downtime)

    # Phase 2: expected time to run the non-checkpointed sources, the needed
    # recoveries and the sink, conditioned on when the last failure of phase 1
    # occurred (events E_1 .. E_m in the paper's proof of Lemma 2).
    m = len(ckpt)
    total_recovery = sum(r[i] for i in ckpt)
    t0 = (1.0 / lam + downtime) * math.expm1(min(lam * (work_nckpt + total_recovery), 700.0))

    # q[k] (1-based k): probability that the last failure of phase 1 happened
    # while executing the k-th checkpointed source (q[1] also absorbs the
    # "no failure at all" case, which likewise requires no recovery).
    phase2 = 0.0
    for k in range(1, m + 1):
        if k == 1:
            suffix = sum(w[ckpt[j]] + c[ckpt[j]] for j in range(1, m))
            q_k = math.exp(-lam * suffix)
        else:
            own = w[ckpt[k - 1]] + c[ckpt[k - 1]]
            suffix = sum(w[ckpt[j]] + c[ckpt[j]] for j in range(k, m))
            q_k = (1.0 - math.exp(-lam * own)) * math.exp(-lam * suffix)
        prior_recoveries = sum(r[ckpt[j]] for j in range(0, k - 1))
        p_k = math.exp(-lam * (work_nckpt + prior_recoveries))
        # t_k = p_k * A + (1 - p_k) * (E[t_lost(A)] + D + t0) with
        # A = work_nckpt + prior_recoveries, which algebraically simplifies to
        # (1 - p_k) * (1/lambda + D + t0)  (the paper's closed form).
        phase2 += q_k * (1.0 - p_k) * (1.0 / lam + downtime + t0)

    return phase1 + phase2


def solve_join_equal_costs(workflow: Workflow, platform: Platform) -> JoinSolution:
    """Optimal join schedule when all ``c_i`` are equal and all ``r_i`` are equal.

    Implements Corollary 1: sort the sources by non-increasing weight, evaluate
    the expected makespan for every prefix size ``0 .. n`` as the checkpointed
    set, and keep the best.
    """
    sources, sink = _join_parts(workflow)
    costs = {(workflow.task(i).checkpoint_cost, workflow.task(i).recovery_cost) for i in sources}
    if len(costs) > 1:
        raise ValueError(
            "Corollary 1 requires identical checkpoint and recovery costs across "
            f"all sources; found {len(costs)} distinct pairs"
        )
    ordered = sorted(sources, key=lambda i: (-workflow.task(i).weight, i))
    best_value = math.inf
    best_set: frozenset[int] = frozenset()
    for prefix in range(0, len(ordered) + 1):
        candidate = frozenset(ordered[:prefix])
        value = join_expected_makespan(workflow, platform, candidate)
        if value < best_value:
            best_value = value
            best_set = candidate
    schedule = join_schedule(workflow, platform, best_set)
    return JoinSolution(
        schedule=schedule,
        expected_makespan=best_value,
        checkpointed_sources=best_set,
    )
