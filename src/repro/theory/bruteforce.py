"""Exhaustive optimal schedules for tiny instances.

These routines enumerate every linearization and every checkpoint set of a
workflow and evaluate each candidate with the Theorem-3 evaluator.  They are
exponential in the number of tasks and exist purely as *test oracles*: the
fork / join / chain closed forms, and the heuristics, are validated against
them on small randomized instances.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..core.dag import Workflow
from ..core.evaluator import evaluate_schedule
from ..core.platform import Platform
from ..core.schedule import Schedule

__all__ = [
    "BruteForceResult",
    "all_linearizations",
    "iter_schedules",
    "optimal_schedule",
    "optimal_checkpoints_for_order",
]

#: Safety bound: enumerating schedules beyond this many tasks is refused.
MAX_BRUTEFORCE_TASKS = 12


@dataclass(frozen=True)
class BruteForceResult:
    """Optimal schedule found by exhaustive search."""

    schedule: Schedule
    expected_makespan: float
    candidates_evaluated: int


def all_linearizations(workflow: Workflow) -> Iterator[tuple[int, ...]]:
    """Yield every topological order of the workflow (lexicographic by index).

    Uses the classical recursive generation over the "ready set"; the number of
    linearizations can be factorial in ``n``.
    """
    if workflow.n_tasks > MAX_BRUTEFORCE_TASKS:
        raise ValueError(
            f"refusing to enumerate linearizations of a {workflow.n_tasks}-task workflow "
            f"(limit {MAX_BRUTEFORCE_TASKS})"
        )
    n = workflow.n_tasks
    in_deg = [workflow.in_degree(i) for i in range(n)]
    order: list[int] = []

    def backtrack() -> Iterator[tuple[int, ...]]:
        if len(order) == n:
            yield tuple(order)
            return
        for node in range(n):
            if in_deg[node] == 0:
                in_deg[node] = -1
                for succ in workflow.successors(node):
                    in_deg[succ] -= 1
                order.append(node)
                yield from backtrack()
                order.pop()
                for succ in workflow.successors(node):
                    in_deg[succ] += 1
                in_deg[node] = 0

    yield from backtrack()


def iter_schedules(
    workflow: Workflow, *, checkpoint_candidates: Sequence[int] | None = None
) -> Iterator[Schedule]:
    """Yield every (linearization, checkpoint set) pair of the workflow."""
    candidates = (
        tuple(range(workflow.n_tasks))
        if checkpoint_candidates is None
        else tuple(checkpoint_candidates)
    )
    for order in all_linearizations(workflow):
        for size in range(len(candidates) + 1):
            for subset in itertools.combinations(candidates, size):
                yield Schedule(workflow, order, subset)


def optimal_schedule(
    workflow: Workflow,
    platform: Platform,
    *,
    checkpoint_candidates: Sequence[int] | None = None,
) -> BruteForceResult:
    """Exhaustively find the schedule with the minimum expected makespan."""
    best: Schedule | None = None
    best_value = math.inf
    count = 0
    for schedule in iter_schedules(workflow, checkpoint_candidates=checkpoint_candidates):
        count += 1
        value = evaluate_schedule(schedule, platform).expected_makespan
        if value < best_value:
            best_value = value
            best = schedule
    if best is None:
        raise ValueError("workflow has no task")
    return BruteForceResult(schedule=best, expected_makespan=best_value, candidates_evaluated=count)


def optimal_checkpoints_for_order(
    workflow: Workflow,
    platform: Platform,
    order: Sequence[int],
) -> BruteForceResult:
    """Exhaustively find the best checkpoint set for a *fixed* linearization."""
    if workflow.n_tasks > MAX_BRUTEFORCE_TASKS + 4:
        raise ValueError("workflow too large for exhaustive checkpoint search")
    best: Schedule | None = None
    best_value = math.inf
    count = 0
    indices = tuple(range(workflow.n_tasks))
    for size in range(workflow.n_tasks + 1):
        for subset in itertools.combinations(indices, size):
            schedule = Schedule(workflow, order, subset)
            count += 1
            value = evaluate_schedule(schedule, platform).expected_makespan
            if value < best_value:
                best_value = value
                best = schedule
    assert best is not None
    return BruteForceResult(schedule=best, expected_makespan=best_value, candidates_evaluated=count)
