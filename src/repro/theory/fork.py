"""Optimal scheduling of fork DAGs (Theorem 1 of the paper).

A *fork* DAG has one source task :math:`T_{src}` and ``n`` sink tasks
:math:`T_1 \\dots T_n` that each depend only on the source.  Theorem 1 shows
that ``DAG-ChkptSched`` is solvable in linear time for forks:

* the ordering of the sink tasks does not matter (failures are memoryless and
  each sink only needs the source's output, which is either in memory or
  recovered before re-execution);
* only the source may usefully be checkpointed, and the decision reduces to
  comparing two closed-form expectations:

  - checkpoint the source:
    :math:`E[t(w_{src}; c_{src}; 0)] + \\sum_i E[t(w_i; 0; r_{src})]`
  - do not checkpoint the source (equivalent to :math:`c_{src}=0`,
    :math:`r_{src}=w_{src}`):
    :math:`E[t(w_{src}; 0; 0)] + \\sum_i E[t(w_i; 0; w_{src})]`

Checkpointing the sinks themselves is never useful: a sink has no successor so
its output is never needed again (makespan is measured at its completion), and
the checkpoint only adds failure-exposed time.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.dag import Workflow
from ..core.expectation import expected_execution_time
from ..core.platform import Platform
from ..core.schedule import Schedule

__all__ = ["ForkSolution", "fork_expected_makespan", "solve_fork"]


@dataclass(frozen=True)
class ForkSolution:
    """Optimal fork schedule and the two candidate expectations."""

    schedule: Schedule
    expected_makespan: float
    checkpoint_source: bool
    makespan_with_checkpoint: float
    makespan_without_checkpoint: float


def _fork_source(workflow: Workflow) -> int:
    if not workflow.is_fork():
        raise ValueError(
            "workflow is not a fork DAG (one source, all other tasks are sinks "
            "depending only on it)"
        )
    return workflow.sources[0]


def fork_expected_makespan(
    workflow: Workflow, platform: Platform, *, checkpoint_source: bool
) -> float:
    """Expected makespan of a fork when the source is / is not checkpointed.

    The expression follows the proof of Theorem 1: the execution decomposes
    into :math:`X_0` (source, possibly checkpointed) followed by one
    :math:`X_i` per sink whose recovery, after a failure, is the recovery of
    the source's output (its checkpoint if checkpointed, its re-execution
    otherwise).
    """
    src = _fork_source(workflow)
    source = workflow.task(src)
    lam = platform.failure_rate
    downtime = platform.downtime
    if checkpoint_source:
        c_src = source.checkpoint_cost
        r_src = source.recovery_cost
    else:
        c_src = 0.0
        r_src = source.weight
    total = expected_execution_time(source.weight, c_src, 0.0, lam, downtime)
    for task in workflow.tasks:
        if task.index == src:
            continue
        total += expected_execution_time(task.weight, 0.0, r_src, lam, downtime)
    return total


def solve_fork(workflow: Workflow, platform: Platform) -> ForkSolution:
    """Optimal schedule for a fork DAG (Theorem 1), in linear time.

    Returns
    -------
    ForkSolution
        The optimal schedule (source first, sinks in index order — any order is
        optimal), whether the source should be checkpointed, and the two
        candidate expected makespans.
    """
    src = _fork_source(workflow)
    with_ckpt = fork_expected_makespan(workflow, platform, checkpoint_source=True)
    without_ckpt = fork_expected_makespan(workflow, platform, checkpoint_source=False)
    checkpoint_source = with_ckpt < without_ckpt
    order = [src] + [i for i in range(workflow.n_tasks) if i != src]
    schedule = Schedule(workflow, order, {src} if checkpoint_source else ())
    return ForkSolution(
        schedule=schedule,
        expected_makespan=min(with_ckpt, without_ckpt),
        checkpoint_source=checkpoint_source,
        makespan_with_checkpoint=with_ckpt,
        makespan_without_checkpoint=without_ckpt,
    )
