"""Optimal checkpointing of a linear chain (Toueg–Babaoğlu baseline).

For a linear chain the linearization is forced, so ``DAG-ChkptSched`` reduces
to the classical "which tasks to checkpoint" question solved optimally by a
dynamic program (Toueg and Babaoğlu, SIAM J. Comput. 1984 — reference [13] of
the paper).  This module provides that baseline, adapted to the paper's
failure model (Equation (1): failures may also strike during checkpoints and
recoveries, constant downtime ``D``).

The dynamic program works over *segments*: if task ``j`` is the most recent
checkpointed task before task ``i`` (``j = 0`` denotes the virtual start of the
execution, with zero recovery cost), then tasks ``j+1 .. i`` form a segment
that must execute consecutively without failure and whose expected duration is
``E[t(w_{j+1} + ... + w_i ; c_i ; r_j)]``.

The expected makespan of a chain schedule is exactly the sum of its segment
expectations — a fact the test-suite cross-checks against the general
evaluator of Theorem 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.dag import Workflow
from ..core.expectation import expected_execution_time
from ..core.platform import Platform
from ..core.schedule import Schedule

__all__ = [
    "ChainSolution",
    "chain_order",
    "chain_expected_makespan",
    "solve_chain",
]


@dataclass(frozen=True)
class ChainSolution:
    """Optimal chain schedule and its expected makespan."""

    schedule: Schedule
    expected_makespan: float
    checkpointed: frozenset[int]


def chain_order(workflow: Workflow) -> tuple[int, ...]:
    """Return the forced linearization of a chain workflow."""
    if not workflow.is_chain():
        raise ValueError("workflow is not a linear chain")
    start = workflow.sources[0]
    order = [start]
    current = start
    while workflow.successors(current):
        current = workflow.successors(current)[0]
        order.append(current)
    return tuple(order)


def chain_expected_makespan(
    workflow: Workflow,
    platform: Platform,
    checkpointed: Iterable[int],
    *,
    order: Sequence[int] | None = None,
) -> float:
    """Expected makespan of a chain with the given checkpointed tasks.

    Computed as the sum of segment expectations (see module docstring).  The
    last segment never pays a checkpoint cost for the final task unless the
    final task is explicitly checkpointed.
    """
    if order is None:
        order = chain_order(workflow)
    order = tuple(order)
    ckpt = set(int(i) for i in checkpointed)
    lam = platform.failure_rate
    downtime = platform.downtime

    total = 0.0
    segment_work = 0.0
    last_recovery = 0.0  # virtual entry point: recovery cost 0 (restart from scratch)
    for task_index in order:
        task = workflow.task(task_index)
        segment_work += task.weight
        if task_index in ckpt:
            total += expected_execution_time(
                segment_work, task.checkpoint_cost, last_recovery, lam, downtime
            )
            segment_work = 0.0
            last_recovery = task.recovery_cost
    if segment_work > 0.0:
        total += expected_execution_time(segment_work, 0.0, last_recovery, lam, downtime)
    return total


def solve_chain(workflow: Workflow, platform: Platform) -> ChainSolution:
    """Optimal checkpoint placement on a linear chain via dynamic programming.

    ``dp[i]`` is the minimal expected time to complete tasks ``1 .. i`` (1-based
    positions along the chain) *and* checkpoint task ``i``.  The answer closes
    the recursion with a final, non-checkpointed segment.  Complexity
    :math:`O(n^2)`.
    """
    order = chain_order(workflow)
    n = len(order)
    lam = platform.failure_rate
    downtime = platform.downtime
    weights = [workflow.task(t).weight for t in order]
    ckpt_costs = [workflow.task(t).checkpoint_cost for t in order]
    rec_costs = [workflow.task(t).recovery_cost for t in order]

    # prefix[i] = w_1 + ... + w_i  (1-based, prefix[0] = 0)
    prefix = [0.0] * (n + 1)
    for i in range(1, n + 1):
        prefix[i] = prefix[i - 1] + weights[i - 1]

    def recovery_of(j: int) -> float:
        return 0.0 if j == 0 else rec_costs[j - 1]

    dp = [math.inf] * (n + 1)
    choice = [0] * (n + 1)
    dp[0] = 0.0
    for i in range(1, n + 1):
        for j in range(0, i):
            if math.isinf(dp[j]):
                continue
            cost = dp[j] + expected_execution_time(
                prefix[i] - prefix[j], ckpt_costs[i - 1], recovery_of(j), lam, downtime
            )
            if cost < dp[i]:
                dp[i] = cost
                choice[i] = j

    best_value = math.inf
    best_last_ckpt = 0
    for j in range(0, n + 1):
        if math.isinf(dp[j]):
            continue
        tail = (
            0.0
            if j == n
            else expected_execution_time(prefix[n] - prefix[j], 0.0, recovery_of(j), lam, downtime)
        )
        value = dp[j] + tail
        if value < best_value:
            best_value = value
            best_last_ckpt = j

    # Reconstruct the checkpointed positions by walking the choice pointers.
    checkpointed_positions: list[int] = []
    j = best_last_ckpt
    while j > 0:
        checkpointed_positions.append(j)
        j = choice[j]
    checkpointed = frozenset(order[pos - 1] for pos in checkpointed_positions)

    schedule = Schedule(workflow, order, checkpointed)
    return ChainSolution(
        schedule=schedule,
        expected_makespan=best_value,
        checkpointed=checkpointed,
    )
