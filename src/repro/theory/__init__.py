"""Theoretical results of the paper: special-case optimal algorithms.

* :mod:`repro.theory.fork` — Theorem 1 (fork DAGs, linear time).
* :mod:`repro.theory.join` — Lemmas 1–2, Corollaries 1–2 (join DAGs).
* :mod:`repro.theory.chain` — Toueg–Babaoğlu dynamic program for linear chains.
* :mod:`repro.theory.npcomplete` — Theorem 2 (SUBSET-SUM reduction).
* :mod:`repro.theory.bruteforce` — exponential test oracles.
"""

from .bruteforce import (
    BruteForceResult,
    all_linearizations,
    iter_schedules,
    optimal_checkpoints_for_order,
    optimal_schedule,
)
from .chain import ChainSolution, chain_expected_makespan, chain_order, solve_chain
from .fork import ForkSolution, fork_expected_makespan, solve_fork
from .join import (
    JoinSolution,
    g_priority,
    join_expected_makespan,
    join_schedule,
    optimal_join_order,
    solve_join_equal_costs,
)
from .npcomplete import (
    SubsetSumReduction,
    build_reduction,
    certificate_is_valid,
    scaled_expected_makespan,
    solve_subset_sum_by_reduction,
)

__all__ = [
    "BruteForceResult",
    "ChainSolution",
    "ForkSolution",
    "JoinSolution",
    "SubsetSumReduction",
    "all_linearizations",
    "build_reduction",
    "certificate_is_valid",
    "chain_expected_makespan",
    "chain_order",
    "fork_expected_makespan",
    "g_priority",
    "iter_schedules",
    "join_expected_makespan",
    "join_schedule",
    "optimal_checkpoints_for_order",
    "optimal_join_order",
    "optimal_schedule",
    "scaled_expected_makespan",
    "solve_chain",
    "solve_fork",
    "solve_join_equal_costs",
    "solve_subset_sum_by_reduction",
]
