"""Schedule analysis: where does the expected time go?

The evaluator of Theorem 3 returns a single number; when tuning a schedule it
is often more useful to know *why* it is what it is.  This module decomposes a
schedule's expected makespan into interpretable pieces:

* per-task expected time versus its failure-free duration (the per-task
  *overhead*);
* total time spent on productive work, on checkpoints, and on
  failure-induced waste (re-execution, recovery, downtime) in expectation;
* per-checkpoint *utility*: how much larger the expected makespan would be if
  that single checkpoint were dropped (positive utility = the checkpoint pays
  for itself), computed exactly with the evaluator.

These quantities drive the reports printed by the examples and give downstream
users a principled way to audit a schedule before running it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.evaluator import evaluate_schedule
from ..core.platform import Platform
from ..core.schedule import Schedule

__all__ = [
    "TaskBreakdown",
    "CheckpointUtility",
    "ScheduleBreakdown",
    "analyse_schedule",
    "checkpoint_utilities",
]


@dataclass(frozen=True)
class TaskBreakdown:
    """Expected time attributed to one scheduled task."""

    task_index: int
    position: int
    weight: float
    checkpointed: bool
    checkpoint_cost: float
    expected_time: float

    @property
    def failure_free_time(self) -> float:
        """Duration of this task (plus checkpoint) in a failure-free run."""
        return self.weight + (self.checkpoint_cost if self.checkpointed else 0.0)

    @property
    def expected_overhead(self) -> float:
        """Expected extra time caused by failures for this task's interval."""
        return max(0.0, self.expected_time - self.failure_free_time)

    @property
    def overhead_ratio(self) -> float:
        """Expected time over failure-free time for this task's interval."""
        if self.failure_free_time == 0.0:
            return 1.0 if self.expected_time == 0.0 else float("inf")
        return self.expected_time / self.failure_free_time


@dataclass(frozen=True)
class CheckpointUtility:
    """Exact value of one checkpoint: expected time saved by keeping it."""

    task_index: int
    expected_makespan_with: float
    expected_makespan_without: float

    @property
    def utility(self) -> float:
        """Expected seconds saved by this checkpoint (negative = it hurts)."""
        return self.expected_makespan_without - self.expected_makespan_with


@dataclass(frozen=True)
class ScheduleBreakdown:
    """Full decomposition of a schedule's expected makespan."""

    schedule: Schedule
    platform: Platform
    expected_makespan: float
    useful_work: float
    checkpoint_time: float
    expected_waste: float
    per_task: tuple[TaskBreakdown, ...]

    @property
    def waste_fraction(self) -> float:
        """Fraction of the expected makespan lost to failures (0 when failure-free)."""
        if self.expected_makespan == 0.0:
            return 0.0
        return self.expected_waste / self.expected_makespan

    def worst_tasks(self, count: int = 5) -> tuple[TaskBreakdown, ...]:
        """The tasks with the largest expected overhead (the tuning targets)."""
        ranked = sorted(self.per_task, key=lambda t: t.expected_overhead, reverse=True)
        return tuple(ranked[:count])

    def render(self, *, top: int = 5) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"expected makespan : {self.expected_makespan:.2f}s",
            f"  useful work     : {self.useful_work:.2f}s",
            f"  checkpoints     : {self.checkpoint_time:.2f}s",
            f"  expected waste  : {self.expected_waste:.2f}s "
            f"({100.0 * self.waste_fraction:.1f}% of the makespan)",
            f"top {top} tasks by expected overhead:",
        ]
        for entry in self.worst_tasks(top):
            task = self.schedule.workflow.task(entry.task_index)
            lines.append(
                f"  {task.name:<16} position {entry.position:<4} "
                f"E[time] {entry.expected_time:8.2f}s "
                f"(overhead {entry.expected_overhead:7.2f}s, x{entry.overhead_ratio:.2f})"
            )
        return "\n".join(lines)


def analyse_schedule(
    schedule: Schedule, platform: Platform, *, backend: str | None = None
) -> ScheduleBreakdown:
    """Decompose the expected makespan of a schedule.

    The per-task expected times are the :math:`E[X_i]` of the evaluator; the
    "waste" aggregate is the expected makespan minus the failure-free work and
    the checkpoints actually taken.
    """
    evaluation = evaluate_schedule(schedule, platform, backend=backend)
    workflow = schedule.workflow
    per_task = []
    for position, task_index in enumerate(schedule.order):
        task = workflow.task(task_index)
        per_task.append(
            TaskBreakdown(
                task_index=task_index,
                position=position,
                weight=task.weight,
                checkpointed=schedule.is_checkpointed(task_index),
                checkpoint_cost=task.checkpoint_cost,
                expected_time=evaluation.expected_task_times[position],
            )
        )
    useful = workflow.total_weight
    checkpoint_time = schedule.total_checkpoint_cost
    waste = max(0.0, evaluation.expected_makespan - useful - checkpoint_time)
    return ScheduleBreakdown(
        schedule=schedule,
        platform=platform,
        expected_makespan=evaluation.expected_makespan,
        useful_work=useful,
        checkpoint_time=checkpoint_time,
        expected_waste=waste,
        per_task=tuple(per_task),
    )


def checkpoint_utilities(
    schedule: Schedule, platform: Platform, *, backend: str | None = None
) -> tuple[CheckpointUtility, ...]:
    """Exact marginal value of every checkpoint in the schedule.

    For each checkpointed task, the schedule is re-evaluated with that single
    checkpoint removed; the difference is the expected time the checkpoint
    saves.  Checkpoints with negative utility actively hurt and are the first
    candidates for removal (see
    :func:`repro.heuristics.refinement.local_search_checkpoints`).
    """
    base = evaluate_schedule(schedule, platform, backend=backend).expected_makespan
    # One incremental sweep over the shared linearization: each candidate set
    # is the current one minus a single checkpoint, so consecutive candidates
    # differ by two toggles.  Probing in descending *position* order makes
    # the freshly dropped checkpoint the lower of the two, so each probe
    # re-prices only the suffix behind it (the utilities are still returned
    # in ascending task-index order).
    from ..core.evaluator_np import batch_evaluate

    position = {task: pos for pos, task in enumerate(schedule.order)}
    probed = sorted(schedule.checkpointed, key=lambda task: -position[task])
    evaluations = batch_evaluate(
        schedule.workflow,
        schedule.order,
        [schedule.checkpointed - {task_index} for task_index in probed],
        platform,
        backend=backend,
        keep_task_times=False,
    )
    without = {
        task_index: evaluation.expected_makespan
        for task_index, evaluation in zip(probed, evaluations)
    }
    return tuple(
        CheckpointUtility(
            task_index=task_index,
            expected_makespan_with=base,
            expected_makespan_without=without[task_index],
        )
        for task_index in sorted(schedule.checkpointed)
    )
