"""Side-by-side comparison of schedules and robustness analysis.

Complements :mod:`repro.analysis.breakdown` with two user-facing questions:

* *Which of these schedules should I run?* — :func:`compare_schedules` ranks a
  set of named schedules on the same platform and renders a small report.
* *How sensitive is my schedule to the failure-rate estimate?* —
  :func:`failure_rate_sensitivity` sweeps the platform failure rate around its
  nominal value and reports how the expected makespan (and the gap to a
  re-optimised competitor) evolves, since MTBFs are never known exactly in
  practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.evaluator import evaluate_schedule
from ..core.platform import Platform
from ..core.schedule import Schedule

__all__ = [
    "ScheduleComparison",
    "SensitivityPoint",
    "compare_schedules",
    "failure_rate_sensitivity",
]


@dataclass(frozen=True)
class ScheduleComparison:
    """Ranking of named schedules on one platform."""

    platform: Platform
    expected_makespans: dict[str, float]

    @property
    def best_name(self) -> str:
        """Name of the schedule with the lowest expected makespan."""
        return min(self.expected_makespans, key=self.expected_makespans.get)

    def gap_to_best(self, name: str) -> float:
        """Relative distance of one schedule to the best one (0 for the best)."""
        best = self.expected_makespans[self.best_name]
        if best == 0.0:
            return 0.0
        return self.expected_makespans[name] / best - 1.0

    def render(self) -> str:
        """Markdown-ish table sorted by expected makespan."""
        lines = [f"{'schedule':<24} {'E[makespan]':>14} {'vs best':>9}"]
        for name, value in sorted(self.expected_makespans.items(), key=lambda kv: kv[1]):
            lines.append(f"{name:<24} {value:>13.2f}s {100 * self.gap_to_best(name):>+8.2f}%")
        return "\n".join(lines)


def compare_schedules(
    schedules: Mapping[str, Schedule], platform: Platform
) -> ScheduleComparison:
    """Evaluate several schedules of the same workflow on one platform."""
    if not schedules:
        raise ValueError("no schedule to compare")
    workflows = {id(s.workflow) for s in schedules.values()}
    if len(workflows) > 1:
        # Different Workflow objects are allowed as long as they are equal;
        # comparing schedules of genuinely different workflows is a user error.
        distinct = {s.workflow for s in schedules.values()}
        if len(distinct) > 1:
            raise ValueError("schedules must all belong to the same workflow")
    values = {
        name: evaluate_schedule(schedule, platform).expected_makespan
        for name, schedule in schedules.items()
    }
    return ScheduleComparison(platform=platform, expected_makespans=values)


@dataclass(frozen=True)
class SensitivityPoint:
    """Expected makespan of a fixed schedule at one assumed failure rate."""

    failure_rate: float
    expected_makespan: float
    overhead_ratio: float


def failure_rate_sensitivity(
    schedule: Schedule,
    nominal: Platform,
    *,
    factors: Sequence[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> tuple[SensitivityPoint, ...]:
    """Expected makespan of a fixed schedule under mis-estimated failure rates.

    Parameters
    ----------
    schedule:
        The schedule whose robustness is being probed (it is *not* re-optimised).
    nominal:
        The platform used when the schedule was built.
    factors:
        Multiplicative perturbations of the nominal failure rate.

    Returns
    -------
    tuple[SensitivityPoint, ...]
        One point per factor, ordered as given.
    """
    if not factors:
        raise ValueError("factors must be non-empty")
    points = []
    for factor in factors:
        if factor < 0:
            raise ValueError("factors must be non-negative")
        platform = nominal.scaled(factor)
        evaluation = evaluate_schedule(schedule, platform)
        points.append(
            SensitivityPoint(
                failure_rate=platform.failure_rate,
                expected_makespan=evaluation.expected_makespan,
                overhead_ratio=evaluation.overhead_ratio,
            )
        )
    return tuple(points)
