"""Schedule analysis utilities (expected-time breakdown, comparisons, sensitivity)."""

from .breakdown import (
    CheckpointUtility,
    ScheduleBreakdown,
    TaskBreakdown,
    analyse_schedule,
    checkpoint_utilities,
)
from .comparison import (
    ScheduleComparison,
    SensitivityPoint,
    compare_schedules,
    failure_rate_sensitivity,
)

__all__ = [
    "CheckpointUtility",
    "ScheduleBreakdown",
    "ScheduleComparison",
    "SensitivityPoint",
    "TaskBreakdown",
    "analyse_schedule",
    "checkpoint_utilities",
    "compare_schedules",
    "failure_rate_sensitivity",
]
