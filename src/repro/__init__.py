"""repro — Scheduling computational workflows on failure-prone platforms.

A from-scratch Python reproduction of

    Guillaume Aupy, Anne Benoit, Henri Casanova, Yves Robert.
    "Scheduling computational workflows on failure-prone platforms."
    INRIA RR-8609 / IPDPS 2015 workshops.

The package provides:

* the workflow / platform / schedule model of the paper (:mod:`repro.core`);
* the polynomial-time expected-makespan evaluator of Theorem 3
  (:func:`repro.evaluate_schedule`);
* the theoretical special cases — fork, join, linear chain, NP-completeness
  reduction (:mod:`repro.theory`);
* the fourteen scheduling heuristics of Section 5 (:mod:`repro.heuristics`);
* a Monte-Carlo fault-injection simulator that cross-validates the analytical
  evaluator (:mod:`repro.simulation`);
* synthetic generators for the four Pegasus workflow families used in the
  paper's evaluation (:mod:`repro.workflows`);
* an experiment harness that regenerates every figure of Section 6
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import Platform, solve_heuristic
>>> from repro.workflows import pegasus
>>> wf = pegasus.montage(50, seed=1).with_checkpoint_costs(mode="proportional", factor=0.1)
>>> platform = Platform.from_platform_rate(1e-3)
>>> result = solve_heuristic(wf, platform, "DF-CkptW")
>>> round(result.evaluation.overhead_ratio, 3) >= 1.0
True
"""

from .core import (
    BACKEND_REGISTRY,
    EVAL_BACKENDS,
    Backend,
    BackendRegistry,
    BackendSpec,
    CycleError,
    LostWork,
    MakespanEvaluation,
    Platform,
    PlatformSpec,
    Schedule,
    SweepState,
    SweepStats,
    Task,
    Workflow,
    WorkflowStructure,
    batch_evaluate,
    compute_lost_work,
    evaluate_schedule,
    expected_execution_time,
    expected_makespan,
    expected_time_lost,
    resolve_backend,
    success_probability,
)
from .heuristics import (
    HEURISTIC_NAMES,
    HeuristicResult,
    linearize,
    solve_all_heuristics,
    solve_heuristic,
)
from .simulation import MonteCarloSummary, SimulationResult, run_monte_carlo, simulate_schedule

# Resolved from the installed package metadata so `repro --version` can
# never drift from pyproject; the literal fallback covers source-tree runs
# (PYTHONPATH=src) where the distribution is not installed.
try:  # pragma: no cover - depends on how the package is run
    from importlib.metadata import version as _distribution_version

    __version__ = _distribution_version("repro-workflows")
except Exception:  # pragma: no cover - uninstalled source tree
    __version__ = "1.3.0"

__all__ = [
    "BACKEND_REGISTRY",
    "Backend",
    "BackendRegistry",
    "BackendSpec",
    "CycleError",
    "EVAL_BACKENDS",
    "HEURISTIC_NAMES",
    "HeuristicResult",
    "LostWork",
    "MakespanEvaluation",
    "MonteCarloSummary",
    "Platform",
    "PlatformSpec",
    "Schedule",
    "SimulationResult",
    "SweepState",
    "SweepStats",
    "Task",
    "Workflow",
    "WorkflowStructure",
    "__version__",
    "batch_evaluate",
    "compute_lost_work",
    "evaluate_schedule",
    "expected_execution_time",
    "expected_makespan",
    "expected_time_lost",
    "linearize",
    "resolve_backend",
    "run_monte_carlo",
    "simulate_schedule",
    "solve_all_heuristics",
    "solve_heuristic",
    "success_probability",
]
