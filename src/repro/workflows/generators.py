"""Generic synthetic DAG generators.

These produce the structured shapes used by the paper's theoretical sections
(chains, forks, joins) plus a few classical families (fork-join, diamond,
layered random DAGs, in/out-trees) used by the test-suite, the property-based
tests and the ablation benchmarks.  The Pegasus-like scientific workflows of
the experimental section live in :mod:`repro.workflows.pegasus`.

All generators are deterministic given their ``seed`` / explicit weights and
return :class:`~repro.core.dag.Workflow` instances with zero checkpoint /
recovery costs — call :meth:`Workflow.with_checkpoint_costs` to assign them.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.dag import Workflow
from ..core.task import Task

__all__ = [
    "chain_workflow",
    "fork_workflow",
    "join_workflow",
    "fork_join_workflow",
    "diamond_workflow",
    "layered_workflow",
    "random_dag_workflow",
    "out_tree_workflow",
    "in_tree_workflow",
    "paper_example_workflow",
    "single_task_workflow",
]


def _weights(
    n: int,
    weights: Sequence[float] | None,
    rng: np.random.Generator,
    *,
    mean: float = 10.0,
    spread: float = 0.5,
) -> list[float]:
    """Resolve an explicit weight list or draw one from a gamma distribution."""
    if weights is not None:
        weights = [float(w) for w in weights]
        if len(weights) != n:
            raise ValueError(f"expected {n} weights, got {len(weights)}")
        return weights
    if mean <= 0:
        raise ValueError("mean weight must be positive")
    spread = min(max(spread, 0.0), 0.99)
    if spread == 0.0:
        return [mean] * n
    shape = 1.0 / (spread * spread)
    scale = mean / shape
    return [float(max(1e-9, rng.gamma(shape, scale))) for _ in range(n)]


def _tasks(weights: Sequence[float], category: str) -> list[Task]:
    return [
        Task(index=i, weight=w, name=f"T{i}", category=category)
        for i, w in enumerate(weights)
    ]


def single_task_workflow(weight: float = 10.0) -> Workflow:
    """A workflow with a single task (smallest meaningful instance)."""
    return Workflow([Task(index=0, weight=weight)], [], name="single")


def chain_workflow(
    n: int,
    *,
    weights: Sequence[float] | None = None,
    seed: int | None = None,
    mean_weight: float = 10.0,
) -> Workflow:
    """A linear chain ``T0 -> T1 -> ... -> T(n-1)``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = np.random.default_rng(seed)
    w = _weights(n, weights, rng, mean=mean_weight)
    edges = [(i, i + 1) for i in range(n - 1)]
    return Workflow(_tasks(w, "chain"), edges, name=f"chain-{n}")


def fork_workflow(
    n_sinks: int,
    *,
    source_weight: float = 10.0,
    sink_weights: Sequence[float] | None = None,
    seed: int | None = None,
    mean_weight: float = 10.0,
) -> Workflow:
    """A fork: one source feeding ``n_sinks`` independent sinks (Theorem 1)."""
    if n_sinks < 1:
        raise ValueError("n_sinks must be >= 1")
    rng = np.random.default_rng(seed)
    sink_w = _weights(n_sinks, sink_weights, rng, mean=mean_weight)
    weights = [float(source_weight)] + sink_w
    edges = [(0, i) for i in range(1, n_sinks + 1)]
    return Workflow(_tasks(weights, "fork"), edges, name=f"fork-{n_sinks}")


def join_workflow(
    n_sources: int,
    *,
    sink_weight: float = 10.0,
    source_weights: Sequence[float] | None = None,
    seed: int | None = None,
    mean_weight: float = 10.0,
) -> Workflow:
    """A join: ``n_sources`` independent sources feeding one sink (Theorem 2)."""
    if n_sources < 1:
        raise ValueError("n_sources must be >= 1")
    rng = np.random.default_rng(seed)
    src_w = _weights(n_sources, source_weights, rng, mean=mean_weight)
    weights = src_w + [float(sink_weight)]
    sink = n_sources
    edges = [(i, sink) for i in range(n_sources)]
    return Workflow(_tasks(weights, "join"), edges, name=f"join-{n_sources}")


def fork_join_workflow(
    width: int,
    *,
    source_weight: float = 10.0,
    sink_weight: float = 10.0,
    branch_weights: Sequence[float] | None = None,
    seed: int | None = None,
    mean_weight: float = 10.0,
) -> Workflow:
    """A fork-join (bulge): source -> ``width`` parallel tasks -> sink."""
    if width < 1:
        raise ValueError("width must be >= 1")
    rng = np.random.default_rng(seed)
    branch_w = _weights(width, branch_weights, rng, mean=mean_weight)
    weights = [float(source_weight)] + branch_w + [float(sink_weight)]
    sink = width + 1
    edges = [(0, i) for i in range(1, width + 1)] + [(i, sink) for i in range(1, width + 1)]
    return Workflow(_tasks(weights, "fork-join"), edges, name=f"fork-join-{width}")


def diamond_workflow(
    *, weights: Sequence[float] | None = None, seed: int | None = None
) -> Workflow:
    """The 4-task diamond: ``T0 -> {T1, T2} -> T3``."""
    rng = np.random.default_rng(seed)
    w = _weights(4, weights, rng)
    edges = [(0, 1), (0, 2), (1, 3), (2, 3)]
    return Workflow(_tasks(w, "diamond"), edges, name="diamond")


def layered_workflow(
    n_layers: int,
    layer_width: int,
    *,
    density: float = 0.5,
    seed: int | None = None,
    mean_weight: float = 10.0,
) -> Workflow:
    """A layered random DAG: each task depends on a random subset of the previous layer.

    Every task of layer ``l > 0`` gets at least one predecessor in layer
    ``l - 1`` so the DAG stays connected layer-to-layer.
    """
    if n_layers < 1 or layer_width < 1:
        raise ValueError("n_layers and layer_width must be >= 1")
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    n = n_layers * layer_width
    weights = _weights(n, None, rng, mean=mean_weight)
    tasks = _tasks(weights, "layered")
    edges: list[tuple[int, int]] = []
    for layer in range(1, n_layers):
        for j in range(layer_width):
            node = layer * layer_width + j
            prev_layer = [(layer - 1) * layer_width + k for k in range(layer_width)]
            chosen = [p for p in prev_layer if rng.random() < density]
            if not chosen:
                chosen = [prev_layer[int(rng.integers(layer_width))]]
            edges.extend((p, node) for p in chosen)
    return Workflow(tasks, edges, name=f"layered-{n_layers}x{layer_width}")


def random_dag_workflow(
    n: int,
    *,
    edge_probability: float = 0.2,
    seed: int | None = None,
    mean_weight: float = 10.0,
) -> Workflow:
    """An Erdős–Rényi-style random DAG on ``n`` tasks.

    Each pair ``(i, j)`` with ``i < j`` is connected with probability
    ``edge_probability`` (edges always point from lower to higher index, which
    guarantees acyclicity).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    weights = _weights(n, None, rng, mean=mean_weight)
    edges = [
        (i, j)
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_probability
    ]
    return Workflow(_tasks(weights, "random"), edges, name=f"random-{n}")


def out_tree_workflow(
    n: int,
    *,
    fanout: int = 2,
    seed: int | None = None,
    mean_weight: float = 10.0,
) -> Workflow:
    """A complete-ish out-tree (each task feeds up to ``fanout`` children)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if fanout < 1:
        raise ValueError("fanout must be >= 1")
    rng = np.random.default_rng(seed)
    weights = _weights(n, None, rng, mean=mean_weight)
    edges = [((i - 1) // fanout, i) for i in range(1, n)]
    return Workflow(_tasks(weights, "out-tree"), edges, name=f"out-tree-{n}")


def in_tree_workflow(
    n: int,
    *,
    fanin: int = 2,
    seed: int | None = None,
    mean_weight: float = 10.0,
) -> Workflow:
    """An in-tree (reduction tree): each task feeds its parent, the root is last."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if fanin < 1:
        raise ValueError("fanin must be >= 1")
    rng = np.random.default_rng(seed)
    weights = _weights(n, None, rng, mean=mean_weight)
    # Mirror of the out-tree: node i (in out-tree numbering) becomes n-1-i.
    edges = [(n - 1 - i, n - 1 - (i - 1) // fanin) for i in range(1, n)]
    return Workflow(_tasks(weights, "in-tree"), edges, name=f"in-tree-{n}")


def paper_example_workflow() -> Workflow:
    """The 8-task example DAG of Figure 1 of the paper.

    Tasks ``T3`` and ``T4`` are the ones whose output is checkpointed in the
    paper's walk-through; the linearization discussed there is
    ``T0 T3 T1 T2 T4 T5 T6 T7``.  The edge set below is the one consistent with
    the recovery narrative of Section 3:

    * a failure during ``T5`` requires recovering ``T3``'s checkpoint
      (``T3 -> T5``);
    * executing ``T6`` requires recovering ``T4`` and using ``T5``'s output
      (``T4 -> T6``, ``T5 -> T6``);
    * ``T7`` needs ``T2`` (itself needing the entry task ``T1``) and ``T6``
      (``T1 -> T2``, ``T2 -> T7``, ``T6 -> T7``);
    * ``T0`` is the entry task feeding ``T3`` and ``T4``.
    """
    weights = [10.0, 8.0, 12.0, 20.0, 15.0, 9.0, 11.0, 7.0]
    tasks = [
        Task(index=i, weight=w, name=f"T{i}", category="paper-example")
        for i, w in enumerate(weights)
    ]
    edges = [
        (0, 3),
        (0, 4),
        (1, 2),
        (3, 5),
        (4, 6),
        (5, 6),
        (2, 7),
        (6, 7),
    ]
    return Workflow(tasks, edges, name="paper-example")
