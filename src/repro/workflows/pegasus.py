"""Synthetic generators for the four Pegasus workflow families of the paper.

The paper's evaluation (Section 6) uses DAGs produced by the Pegasus Workflow
Generator for four scientific applications — Montage, CyberShake, LIGO's
Inspiral analysis and the USC Epigenomics (Genome) pipeline — with 50 to 700
tasks and average task weights of roughly 10 s, 25 s, 220 s and more than
1000 s respectively.

The original generator is a Java tool backed by execution traces that are not
redistributable; this module is the documented substitution (see DESIGN.md):
structural generators that follow the published characterizations of these
workflows (Bharathi et al., "Characterization of scientific workflows", WORKS
2008; Juve et al., "Characterizing and profiling scientific workflows", FGCS
2013).  Each generator reproduces

* the level structure and fan-in/fan-out pattern of the real workflow,
* per-level task runtime distributions whose overall mean matches the average
  task weight quoted in the paper,

which are the only DAG properties the scheduling study depends on.

All generators accept the *total* number of tasks ``n`` and a ``seed``; they
return workflows whose checkpoint / recovery costs are still zero (assign them
with :meth:`~repro.core.dag.Workflow.with_checkpoint_costs`, e.g.
``c_i = 0.1 w_i`` as in the paper's main experiments).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from ..core.dag import Workflow
from ..core.task import Task

__all__ = [
    "WORKFLOW_FAMILIES",
    "AVERAGE_TASK_WEIGHTS",
    "montage",
    "cybershake",
    "ligo",
    "epigenomics",
    "genome",
    "generate",
]

#: Family names accepted by :func:`generate`.
WORKFLOW_FAMILIES = ("montage", "cybershake", "ligo", "genome")

#: Average task weight (seconds) per family, as quoted in Section 6.1.
AVERAGE_TASK_WEIGHTS: dict[str, float] = {
    "montage": 10.0,
    "cybershake": 25.0,
    "ligo": 220.0,
    "genome": 1200.0,
}


class _Builder:
    """Incremental workflow builder used by the family generators."""

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self.tasks: list[Task] = []
        self.edges: list[tuple[int, int]] = []

    def add(self, category: str, weight: float, predecessors: "list[int] | tuple[int, ...]" = ()) -> int:
        weight = float(weight)
        # A non-positive or non-finite runtime is a generator bug; masking
        # it (the old behavior clamped to 1e-6) would silently skew the
        # family's weight distribution and every downstream result.
        if not math.isfinite(weight) or weight <= 0.0:
            raise ValueError(
                f"workflow generator produced an invalid weight {weight!r} for "
                f"category {category!r}; task runtimes must be finite and positive"
            )
        index = len(self.tasks)
        self.tasks.append(
            Task(index=index, weight=weight, name=f"{category}_{index}", category=category)
        )
        self.edges.extend((int(p), index) for p in predecessors)
        return index

    def draw(self, mean: float, cv: float = 0.4) -> float:
        """Draw a runtime from a gamma distribution with the given mean and CV."""
        if mean <= 0:
            return 1e-6
        cv = min(max(cv, 0.01), 2.0)
        shape = 1.0 / (cv * cv)
        scale = mean / shape
        return float(self.rng.gamma(shape, scale))

    def build(self, name: str, target_mean: float) -> Workflow:
        """Finalize: rescale weights so the mean task weight hits ``target_mean``."""
        current_mean = sum(t.weight for t in self.tasks) / max(1, len(self.tasks))
        factor = target_mean / current_mean if current_mean > 0 else 1.0
        tasks = [t.with_costs(weight=t.weight * factor) for t in self.tasks]
        return Workflow(tasks, self.edges, name=name)


def _check_n(n_tasks: int, minimum: int) -> int:
    if not isinstance(n_tasks, int) or isinstance(n_tasks, bool):
        raise TypeError("n_tasks must be an int")
    if n_tasks < minimum:
        raise ValueError(f"this family needs at least {minimum} tasks, got {n_tasks}")
    return n_tasks


# ----------------------------------------------------------------------
# Montage
# ----------------------------------------------------------------------
def montage(n_tasks: int, *, seed: int | None = None) -> Workflow:
    """NASA/IPAC Montage: builds sky mosaics from input images.

    Structure (Bharathi et al. 2008): a wide ``mProjectPP`` level, an even wider
    ``mDiffFit`` level whose tasks each consume two overlapping projections, a
    sequential ``mConcatFit``/``mBgModel`` bottleneck, a wide ``mBackground``
    level (one task per projection, all reading the background model), then the
    sequential tail ``mImgtbl`` → ``mAdd`` → ``mShrink`` → ``mJPEG``.
    Average task weight ≈ 10 s.
    """
    n_tasks = _check_n(n_tasks, 10)
    rng = np.random.default_rng(seed)
    b = _Builder(rng)

    tail = 6  # mConcatFit, mBgModel, mImgtbl, mAdd, mShrink, mJPEG
    remaining = n_tasks - tail
    # Split the remaining tasks between projections (x), diffs (~1.5x) and
    # backgrounds (x): 3.5x ≈ remaining.
    n_project = max(2, int(round(remaining / 3.5)))
    n_background = n_project
    n_diff = remaining - n_project - n_background
    if n_diff < 1:
        n_diff = 1
        n_project = max(2, (remaining - n_diff) // 2)
        n_background = remaining - n_diff - n_project

    projections = [b.add("mProjectPP", b.draw(13.0)) for _ in range(n_project)]
    diffs = []
    for d in range(n_diff):
        first = projections[d % n_project]
        second = projections[(d + 1) % n_project]
        preds = [first] if first == second else [first, second]
        diffs.append(b.add("mDiffFit", b.draw(10.0), preds))
    concat = b.add("mConcatFit", b.draw(45.0), diffs)
    bg_model = b.add("mBgModel", b.draw(60.0), [concat])
    backgrounds = [
        b.add("mBackground", b.draw(10.0), [bg_model, projections[i % n_project]])
        for i in range(n_background)
    ]
    imgtbl = b.add("mImgtbl", b.draw(25.0), backgrounds)
    madd = b.add("mAdd", b.draw(80.0), [imgtbl])
    shrink = b.add("mShrink", b.draw(15.0), [madd])
    b.add("mJPEG", b.draw(5.0), [shrink])

    return b.build(f"montage-{n_tasks}", AVERAGE_TASK_WEIGHTS["montage"])


# ----------------------------------------------------------------------
# CyberShake
# ----------------------------------------------------------------------
def cybershake(n_tasks: int, *, seed: int | None = None) -> Workflow:
    """SCEC CyberShake: probabilistic seismic hazard curves for a site.

    Structure: two ``ExtractSGT`` tasks (strain Green tensor extraction), a wide
    ``SeismogramSynthesis`` level (each synthesis reads one SGT), one
    ``ZipSeismograms`` collector, a ``PeakValCalcOkaya`` task per seismogram and
    a final ``ZipPSA`` collector.  Average task weight ≈ 25 s.
    """
    n_tasks = _check_n(n_tasks, 8)
    rng = np.random.default_rng(seed)
    b = _Builder(rng)

    n_extract = 2
    fixed = n_extract + 2  # the two zip collectors
    n_pairs = max(1, (n_tasks - fixed) // 2)
    n_synthesis = n_pairs
    n_peak = n_tasks - fixed - n_synthesis

    extracts = [b.add("ExtractSGT", b.draw(110.0)) for _ in range(n_extract)]
    syntheses = [
        b.add("SeismogramSynthesis", b.draw(24.0), [extracts[i % n_extract]])
        for i in range(n_synthesis)
    ]
    zip_seis = b.add("ZipSeismograms", b.draw(40.0), syntheses)
    peaks = [
        b.add("PeakValCalcOkaya", b.draw(1.0), [syntheses[i % n_synthesis]])
        for i in range(n_peak)
    ]
    b.add("ZipPSA", b.draw(30.0), peaks if peaks else [zip_seis])

    return b.build(f"cybershake-{n_tasks}", AVERAGE_TASK_WEIGHTS["cybershake"])


# ----------------------------------------------------------------------
# LIGO Inspiral
# ----------------------------------------------------------------------
def ligo(n_tasks: int, *, seed: int | None = None) -> Workflow:
    """LIGO Inspiral analysis: gravitational-wave candidate detection.

    Structure: several independent groups; within each group a ``TmpltBank``
    level feeds a first ``Inspiral`` level, coalesced by a ``Thinca`` task, then
    a ``TrigBank`` level feeds a second ``Inspiral`` level coalesced by a final
    ``Thinca``.  Average task weight ≈ 220 s.
    """
    n_tasks = _check_n(n_tasks, 9)
    rng = np.random.default_rng(seed)
    b = _Builder(rng)

    # Each group of width m uses 4m + 2 tasks (TmpltBank, Inspiral1, TrigBank,
    # Inspiral2 levels of width m plus two Thinca tasks).
    group_width = 5
    group_size = 4 * group_width + 2
    n_groups = max(1, n_tasks // group_size)
    budget = n_tasks

    for g in range(n_groups):
        remaining_groups = n_groups - g
        group_budget = budget // remaining_groups
        width = max(1, (group_budget - 2) // 4)
        extra = max(0, group_budget - 2 - 4 * width)

        tmplt = [b.add("TmpltBank", b.draw(300.0)) for _ in range(width)]
        inspiral1 = [b.add("Inspiral", b.draw(460.0), [tmplt[i]]) for i in range(width)]
        thinca1 = b.add("Thinca", b.draw(5.0), inspiral1)
        trig = [b.add("TrigBank", b.draw(5.0), [thinca1]) for _ in range(width)]
        # Extra second-stage inspirals (when the budget is not a multiple of the
        # group size) read an arbitrary trigger bank of the group.
        inspiral2 = [
            b.add("Inspiral", b.draw(220.0), [trig[i % width]])
            for i in range(width + extra)
        ]
        b.add("Thinca", b.draw(5.0), inspiral2)
        budget -= 2 + 4 * width + extra

    return b.build(f"ligo-{n_tasks}", AVERAGE_TASK_WEIGHTS["ligo"])


# ----------------------------------------------------------------------
# Epigenomics (Genome)
# ----------------------------------------------------------------------
def epigenomics(n_tasks: int, *, seed: int | None = None) -> Workflow:
    """USC Epigenome Center genome-sequencing pipeline ("Genome" in the paper).

    Structure: several independent lanes, each a ``fastQSplit`` task fanning out
    to parallel per-chunk pipelines ``filterContams`` → ``sol2sanger`` →
    ``fastq2bfq`` → ``map``, merged by a per-lane ``mapMerge``; the lane merges
    feed a global ``mapMerge`` → ``maqIndex`` → ``pileup`` tail.  Average task
    weight > 1000 s (the heaviest family in the paper).
    """
    n_tasks = _check_n(n_tasks, 10)
    rng = np.random.default_rng(seed)
    b = _Builder(rng)

    tail = 3  # global mapMerge, maqIndex, pileup
    n_lanes = max(1, min(4, (n_tasks - tail) // 12))
    budget = n_tasks - tail
    lane_merges = []
    for lane in range(n_lanes):
        remaining_lanes = n_lanes - lane
        lane_budget = budget // remaining_lanes
        # Each lane: 1 split + 4 * chunks + 1 merge.
        chunks = max(1, (lane_budget - 2) // 4)
        split = b.add("fastQSplit", b.draw(400.0))
        maps = []
        for _ in range(chunks):
            filt = b.add("filterContams", b.draw(300.0), [split])
            sol = b.add("sol2sanger", b.draw(250.0), [filt])
            bfq = b.add("fastq2bfq", b.draw(150.0), [sol])
            maps.append(b.add("map", b.draw(2000.0), [bfq]))
        lane_merges.append(b.add("mapMerge", b.draw(500.0), maps))
        budget -= 2 + 4 * chunks

    global_merge = b.add("mapMergeGlobal", b.draw(800.0), lane_merges)
    index = b.add("maqIndex", b.draw(300.0), [global_merge])
    b.add("pileup", b.draw(400.0), [index])

    return b.build(f"genome-{n_tasks}", AVERAGE_TASK_WEIGHTS["genome"])


#: Alias matching the paper's name for the Epigenomics family.
genome = epigenomics


_GENERATORS: dict[str, Callable[..., Workflow]] = {
    "montage": montage,
    "cybershake": cybershake,
    "ligo": ligo,
    "genome": epigenomics,
    "epigenomics": epigenomics,
}


def generate(family: str, n_tasks: int, *, seed: int | None = None) -> Workflow:
    """Generate a workflow of the given family (case-insensitive name)."""
    key = family.strip().lower()
    if key not in _GENERATORS:
        raise ValueError(
            f"unknown workflow family {family!r}; expected one of {WORKFLOW_FAMILIES}"
        )
    return _GENERATORS[key](n_tasks, seed=seed)
