"""JSON serialization of workflows and schedules.

The experiment harness writes out the instances it generated (so that any run
can be reproduced exactly) and the schedules the heuristics selected.  The
format is a small, documented JSON dialect — not the Pegasus DAX format, which
carries execution-site information that is irrelevant to this study.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from ..core.dag import Workflow
from ..core.schedule import Schedule
from ..core.task import Task

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_workflow",
    "load_workflow",
    "save_schedule",
    "load_schedule",
]

FORMAT_VERSION = 1


def workflow_to_dict(workflow: Workflow) -> dict[str, Any]:
    """Serialize a workflow to a plain dictionary."""
    return {
        "format": "repro-workflow",
        "version": FORMAT_VERSION,
        "name": workflow.name,
        "tasks": [
            {
                "index": task.index,
                "name": task.name,
                "category": task.category,
                "weight": task.weight,
                "checkpoint_cost": task.checkpoint_cost,
                "recovery_cost": task.recovery_cost,
            }
            for task in workflow.tasks
        ],
        "edges": [[u, v] for u, v in workflow.edges],
    }


def workflow_from_dict(data: Mapping[str, Any]) -> Workflow:
    """Rebuild a workflow from :func:`workflow_to_dict` output."""
    if data.get("format") != "repro-workflow":
        raise ValueError("not a serialized repro workflow")
    if int(data.get("version", -1)) != FORMAT_VERSION:
        raise ValueError(f"unsupported workflow format version {data.get('version')!r}")
    tasks = [
        Task(
            index=int(entry["index"]),
            weight=float(entry["weight"]),
            checkpoint_cost=float(entry.get("checkpoint_cost", 0.0)),
            recovery_cost=float(entry.get("recovery_cost", 0.0)),
            name=str(entry.get("name", "")),
            category=str(entry.get("category", "")),
        )
        for entry in sorted(data["tasks"], key=lambda e: int(e["index"]))
    ]
    edges = [(int(u), int(v)) for u, v in data.get("edges", [])]
    return Workflow(tasks, edges, name=str(data.get("name", "workflow")))


def schedule_to_dict(schedule: Schedule, *, include_workflow: bool = True) -> dict[str, Any]:
    """Serialize a schedule (and, by default, its workflow) to a dictionary."""
    payload: dict[str, Any] = {
        "format": "repro-schedule",
        "version": FORMAT_VERSION,
        "order": list(schedule.order),
        "checkpointed": sorted(schedule.checkpointed),
    }
    if include_workflow:
        payload["workflow"] = workflow_to_dict(schedule.workflow)
    return payload


def schedule_from_dict(
    data: Mapping[str, Any], *, workflow: Workflow | None = None
) -> Schedule:
    """Rebuild a schedule; the workflow may be embedded or supplied explicitly."""
    if data.get("format") != "repro-schedule":
        raise ValueError("not a serialized repro schedule")
    if int(data.get("version", -1)) != FORMAT_VERSION:
        raise ValueError(f"unsupported schedule format version {data.get('version')!r}")
    if workflow is None:
        embedded = data.get("workflow")
        if embedded is None:
            raise ValueError("no workflow embedded in the payload and none supplied")
        workflow = workflow_from_dict(embedded)
    return Schedule(workflow, [int(i) for i in data["order"]], data.get("checkpointed", ()))


def save_workflow(workflow: Workflow, path: str | Path) -> Path:
    """Write a workflow to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(workflow_to_dict(workflow), indent=2))
    return path


def load_workflow(path: str | Path) -> Workflow:
    """Read a workflow from a JSON file."""
    return workflow_from_dict(json.loads(Path(path).read_text()))


def save_schedule(schedule: Schedule, path: str | Path, *, include_workflow: bool = True) -> Path:
    """Write a schedule to a JSON file; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(schedule_to_dict(schedule, include_workflow=include_workflow), indent=2))
    return path


def load_schedule(path: str | Path, *, workflow: Workflow | None = None) -> Schedule:
    """Read a schedule from a JSON file."""
    return schedule_from_dict(json.loads(Path(path).read_text()), workflow=workflow)
