"""Workflow generators and serialization.

* :mod:`repro.workflows.generators` — generic shapes (chain, fork, join, ...).
* :mod:`repro.workflows.pegasus` — the four scientific families of the paper.
* :mod:`repro.workflows.serialization` — JSON import/export.
"""

from . import generators, pegasus
from .generators import (
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    fork_workflow,
    in_tree_workflow,
    join_workflow,
    layered_workflow,
    out_tree_workflow,
    paper_example_workflow,
    random_dag_workflow,
    single_task_workflow,
)
from .pegasus import (
    AVERAGE_TASK_WEIGHTS,
    WORKFLOW_FAMILIES,
    cybershake,
    epigenomics,
    generate,
    genome,
    ligo,
    montage,
)
from .serialization import (
    load_schedule,
    load_workflow,
    save_schedule,
    save_workflow,
    schedule_from_dict,
    schedule_to_dict,
    workflow_from_dict,
    workflow_to_dict,
)

__all__ = [
    "AVERAGE_TASK_WEIGHTS",
    "WORKFLOW_FAMILIES",
    "chain_workflow",
    "cybershake",
    "diamond_workflow",
    "epigenomics",
    "fork_join_workflow",
    "fork_workflow",
    "generate",
    "generators",
    "genome",
    "in_tree_workflow",
    "join_workflow",
    "layered_workflow",
    "ligo",
    "load_schedule",
    "load_workflow",
    "montage",
    "out_tree_workflow",
    "paper_example_workflow",
    "pegasus",
    "random_dag_workflow",
    "save_schedule",
    "save_workflow",
    "schedule_from_dict",
    "schedule_to_dict",
    "single_task_workflow",
    "workflow_from_dict",
    "workflow_to_dict",
]
