"""Monte-Carlo fault-injection simulation of workflow schedules."""

from .engine import (
    MonteCarloSummary,
    SimulationDiverged,
    SimulationResult,
    run_monte_carlo,
    simulate_schedule,
)
from .failures import (
    ExponentialFailures,
    FailureModel,
    LogNormalFailures,
    NoFailures,
    ScriptedFailures,
    WeibullFailures,
    failure_model_for,
)
from .trace import EventKind, ExecutionTrace, TraceEvent

__all__ = [
    "EventKind",
    "ExecutionTrace",
    "ExponentialFailures",
    "FailureModel",
    "LogNormalFailures",
    "MonteCarloSummary",
    "NoFailures",
    "ScriptedFailures",
    "SimulationDiverged",
    "SimulationResult",
    "TraceEvent",
    "WeibullFailures",
    "failure_model_for",
    "run_monte_carlo",
    "simulate_schedule",
]
