"""Monte-Carlo fault-injection simulation of workflow schedules."""

from .engine import (
    MonteCarloSummary,
    SimulationDiverged,
    SimulationResult,
    replica_generators,
    run_monte_carlo,
    simulate_schedule,
)
from .engine_np import attempt_matrix, simulate_batch
from .failures import (
    ExponentialFailures,
    FailureModel,
    LogNormalFailures,
    NoFailures,
    ScriptedFailures,
    WeibullFailures,
    failure_model_for,
    failure_model_from_spec,
)
from .trace import EventKind, ExecutionTrace, TraceEvent

__all__ = [
    "EventKind",
    "ExecutionTrace",
    "ExponentialFailures",
    "FailureModel",
    "LogNormalFailures",
    "MonteCarloSummary",
    "NoFailures",
    "ScriptedFailures",
    "SimulationDiverged",
    "SimulationResult",
    "TraceEvent",
    "WeibullFailures",
    "attempt_matrix",
    "failure_model_for",
    "failure_model_from_spec",
    "replica_generators",
    "run_monte_carlo",
    "simulate_batch",
    "simulate_schedule",
]
