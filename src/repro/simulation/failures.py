"""Failure processes for the Monte-Carlo execution engine.

The paper's analytical results assume i.i.d. exponentially distributed
inter-arrival times (memoryless platform failures of rate
:math:`\\lambda = p \\lambda_{proc}`).  The Monte-Carlo engine accepts any
:class:`FailureModel`, which lets the library explore the robustness of the
heuristics to non-memoryless failure laws (Weibull, LogNormal — the classical
alternatives in the checkpointing literature) and to replay *scripted* failure
scenarios such as the Figure-1 walk-through of the paper.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from ..core.platform import Platform

__all__ = [
    "FailureModel",
    "ExponentialFailures",
    "WeibullFailures",
    "LogNormalFailures",
    "ScriptedFailures",
    "NoFailures",
    "failure_model_for",
    "failure_model_from_spec",
]


class FailureModel(ABC):
    """Generates successive times-to-next-failure (seconds)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw the time until the next failure, measured from *now*."""

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` successive inter-arrival times as a float64 array.

        The contract — relied upon for the bit-for-bit equivalence of the
        Monte-Carlo backends — is that one batched call advances the model
        and generator state exactly like ``size`` successive :meth:`sample`
        calls, producing the identical values.  NumPy's ``Generator``
        distributions fill arrays from the same bit stream as repeated
        scalar draws, so the built-in overrides satisfy this for free; this
        fallback keeps any user-defined subclass correct (if slow).
        """
        return np.array([self.sample(rng) for _ in range(size)], dtype=np.float64)

    @property
    @abstractmethod
    def mean_time_between_failures(self) -> float:
        """Expected inter-arrival time (``inf`` when failures never happen)."""

    @abstractmethod
    def spec(self) -> dict:
        """Declarative, JSON-able description of the law and its parameters.

        Specs serve two purposes: they are the content that enters
        Monte-Carlo cache keys (:func:`repro.runtime.keys.monte_carlo_key`),
        and they let worker processes rebuild the model via
        :func:`failure_model_from_spec` without pickling model objects.
        """

    def batch_hint(self) -> int | None:
        """Minimum useful first-batch size, or ``None`` for "any".

        Stateful models whose sequence cannot be re-entered mid-stream
        (:class:`ScriptedFailures`) use this to ask the vectorized engine to
        pre-sample their whole script per replica in one batch.
        """
        return None

    def reset(self) -> None:  # pragma: no cover - default is stateless
        """Reset internal state (only meaningful for scripted models)."""


class NoFailures(FailureModel):
    """A platform that never fails."""

    def sample(self, rng: np.random.Generator) -> float:
        return math.inf

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, math.inf, dtype=np.float64)

    @property
    def mean_time_between_failures(self) -> float:
        return math.inf

    def spec(self) -> dict:
        return {"law": "none"}

    def __repr__(self) -> str:  # pragma: no cover
        return "NoFailures()"


class ExponentialFailures(FailureModel):
    """Memoryless failures with rate :math:`\\lambda` (the paper's model)."""

    def __init__(self, rate: float) -> None:
        rate = float(rate)
        if rate < 0 or not math.isfinite(rate):
            raise ValueError("rate must be finite and >= 0")
        self.rate = rate

    def sample(self, rng: np.random.Generator) -> float:
        if self.rate == 0.0:
            return math.inf
        return float(rng.exponential(1.0 / self.rate))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self.rate == 0.0:
            return np.full(size, math.inf, dtype=np.float64)
        return rng.exponential(1.0 / self.rate, size)

    @property
    def mean_time_between_failures(self) -> float:
        return math.inf if self.rate == 0.0 else 1.0 / self.rate

    def spec(self) -> dict:
        return {"law": "exponential", "rate": self.rate}

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExponentialFailures(rate={self.rate:g})"


class WeibullFailures(FailureModel):
    """Weibull-distributed inter-arrival times.

    Parameters
    ----------
    scale:
        Weibull scale parameter (seconds).
    shape:
        Weibull shape parameter ``k``; ``k < 1`` models infant mortality
        (the empirically observed regime on large platforms), ``k = 1`` recovers
        the exponential law.
    """

    def __init__(self, scale: float, shape: float = 0.7) -> None:
        if scale <= 0 or shape <= 0:
            raise ValueError("scale and shape must be positive")
        self.scale = float(scale)
        self.shape = float(shape)

    @classmethod
    def from_mtbf(cls, mtbf: float, shape: float = 0.7) -> "WeibullFailures":
        """Choose the scale so the mean inter-arrival time equals ``mtbf``."""
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        scale = mtbf / math.gamma(1.0 + 1.0 / shape)
        return cls(scale=scale, shape=shape)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size)

    @property
    def mean_time_between_failures(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def spec(self) -> dict:
        return {"law": "weibull", "scale": self.scale, "shape": self.shape}

    def __repr__(self) -> str:  # pragma: no cover
        return f"WeibullFailures(scale={self.scale:g}, shape={self.shape:g})"


class LogNormalFailures(FailureModel):
    """Log-normally distributed inter-arrival times."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mtbf(cls, mtbf: float, sigma: float = 1.0) -> "LogNormalFailures":
        """Choose ``mu`` so the mean inter-arrival time equals ``mtbf``."""
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        mu = math.log(mtbf) - sigma * sigma / 2.0
        return cls(mu=mu, sigma=sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size)

    @property
    def mean_time_between_failures(self) -> float:
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def spec(self) -> dict:
        return {"law": "lognormal", "mu": self.mu, "sigma": self.sigma}

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogNormalFailures(mu={self.mu:g}, sigma={self.sigma:g})"


class ScriptedFailures(FailureModel):
    """Deterministic failure scenario: a fixed list of inter-arrival times.

    Each call to :meth:`sample` consumes the next scripted value; once the list
    is exhausted, no further failure occurs.  Used by the tests to replay the
    paper's Figure-1 narrative and to exercise specific recovery paths.
    """

    def __init__(self, inter_arrival_times: Sequence[float] | Iterable[float]) -> None:
        times = [float(t) for t in inter_arrival_times]
        if any(t < 0 for t in times):
            raise ValueError("inter-arrival times must be non-negative")
        self._times = tuple(times)
        self._cursor = 0

    def sample(self, rng: np.random.Generator) -> float:
        if self._cursor >= len(self._times):
            return math.inf
        value = self._times[self._cursor]
        self._cursor += 1
        return value

    def sample_batch(self, rng: np.random.Generator, size: int) -> np.ndarray:
        batch = np.full(size, math.inf, dtype=np.float64)
        available = self._times[self._cursor : self._cursor + size]
        batch[: len(available)] = available
        self._cursor += len(available)
        return batch

    def batch_hint(self) -> int | None:
        # The script cannot be re-entered mid-stream once another replica
        # has consumed from it, so the vectorized engine must take the whole
        # remaining script (plus one inf terminator) in its first batch.
        return len(self._times) + 1

    def spec(self) -> dict:
        return {"law": "scripted", "times": list(self._times)}

    def reset(self) -> None:
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Number of scripted failures not yet consumed."""
        return len(self._times) - self._cursor

    @property
    def mean_time_between_failures(self) -> float:
        if not self._times:
            return math.inf
        return sum(self._times) / len(self._times)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ScriptedFailures({list(self._times)!r})"


def failure_model_for(platform: Platform) -> FailureModel:
    """The paper's failure model for a platform: exponential at the platform rate."""
    if platform.is_failure_free:
        return NoFailures()
    return ExponentialFailures(platform.failure_rate)


def failure_model_from_spec(spec: dict) -> FailureModel:
    """Rebuild a failure model from its :meth:`FailureModel.spec` payload.

    The inverse of ``model.spec()`` for every built-in law; used by the
    campaign runtime to ship failure laws to worker processes as plain JSON
    (the same payload that enters the Monte-Carlo cache keys).
    """
    if not isinstance(spec, dict) or "law" not in spec:
        raise ValueError(f"failure spec must be a dict with a 'law' entry, got {spec!r}")
    law = spec["law"]
    params = {key: value for key, value in spec.items() if key != "law"}
    try:
        if law == "none":
            return NoFailures(**params)
        if law == "exponential":
            return ExponentialFailures(**params)
        if law == "weibull":
            return WeibullFailures(**params)
        if law == "lognormal":
            return LogNormalFailures(**params)
        if law == "scripted":
            return ScriptedFailures(params.pop("times"), **params)
    except (TypeError, KeyError) as exc:
        raise ValueError(f"invalid parameters for failure law {law!r}: {params!r}") from exc
    raise ValueError(
        f"unknown failure law {law!r}; expected one of "
        "'none', 'exponential', 'weibull', 'lognormal', 'scripted'"
    )
