"""Failure processes for the Monte-Carlo execution engine.

The paper's analytical results assume i.i.d. exponentially distributed
inter-arrival times (memoryless platform failures of rate
:math:`\\lambda = p \\lambda_{proc}`).  The Monte-Carlo engine accepts any
:class:`FailureModel`, which lets the library explore the robustness of the
heuristics to non-memoryless failure laws (Weibull, LogNormal — the classical
alternatives in the checkpointing literature) and to replay *scripted* failure
scenarios such as the Figure-1 walk-through of the paper.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence

import numpy as np

from ..core.platform import Platform

__all__ = [
    "FailureModel",
    "ExponentialFailures",
    "WeibullFailures",
    "LogNormalFailures",
    "ScriptedFailures",
    "NoFailures",
    "failure_model_for",
]


class FailureModel(ABC):
    """Generates successive times-to-next-failure (seconds)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw the time until the next failure, measured from *now*."""

    @property
    @abstractmethod
    def mean_time_between_failures(self) -> float:
        """Expected inter-arrival time (``inf`` when failures never happen)."""

    def reset(self) -> None:  # pragma: no cover - default is stateless
        """Reset internal state (only meaningful for scripted models)."""


class NoFailures(FailureModel):
    """A platform that never fails."""

    def sample(self, rng: np.random.Generator) -> float:
        return math.inf

    @property
    def mean_time_between_failures(self) -> float:
        return math.inf

    def __repr__(self) -> str:  # pragma: no cover
        return "NoFailures()"


class ExponentialFailures(FailureModel):
    """Memoryless failures with rate :math:`\\lambda` (the paper's model)."""

    def __init__(self, rate: float) -> None:
        rate = float(rate)
        if rate < 0 or not math.isfinite(rate):
            raise ValueError("rate must be finite and >= 0")
        self.rate = rate

    def sample(self, rng: np.random.Generator) -> float:
        if self.rate == 0.0:
            return math.inf
        return float(rng.exponential(1.0 / self.rate))

    @property
    def mean_time_between_failures(self) -> float:
        return math.inf if self.rate == 0.0 else 1.0 / self.rate

    def __repr__(self) -> str:  # pragma: no cover
        return f"ExponentialFailures(rate={self.rate:g})"


class WeibullFailures(FailureModel):
    """Weibull-distributed inter-arrival times.

    Parameters
    ----------
    scale:
        Weibull scale parameter (seconds).
    shape:
        Weibull shape parameter ``k``; ``k < 1`` models infant mortality
        (the empirically observed regime on large platforms), ``k = 1`` recovers
        the exponential law.
    """

    def __init__(self, scale: float, shape: float = 0.7) -> None:
        if scale <= 0 or shape <= 0:
            raise ValueError("scale and shape must be positive")
        self.scale = float(scale)
        self.shape = float(shape)

    @classmethod
    def from_mtbf(cls, mtbf: float, shape: float = 0.7) -> "WeibullFailures":
        """Choose the scale so the mean inter-arrival time equals ``mtbf``."""
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        scale = mtbf / math.gamma(1.0 + 1.0 / shape)
        return cls(scale=scale, shape=shape)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    @property
    def mean_time_between_failures(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def __repr__(self) -> str:  # pragma: no cover
        return f"WeibullFailures(scale={self.scale:g}, shape={self.shape:g})"


class LogNormalFailures(FailureModel):
    """Log-normally distributed inter-arrival times."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mtbf(cls, mtbf: float, sigma: float = 1.0) -> "LogNormalFailures":
        """Choose ``mu`` so the mean inter-arrival time equals ``mtbf``."""
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        mu = math.log(mtbf) - sigma * sigma / 2.0
        return cls(mu=mu, sigma=sigma)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    @property
    def mean_time_between_failures(self) -> float:
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogNormalFailures(mu={self.mu:g}, sigma={self.sigma:g})"


class ScriptedFailures(FailureModel):
    """Deterministic failure scenario: a fixed list of inter-arrival times.

    Each call to :meth:`sample` consumes the next scripted value; once the list
    is exhausted, no further failure occurs.  Used by the tests to replay the
    paper's Figure-1 narrative and to exercise specific recovery paths.
    """

    def __init__(self, inter_arrival_times: Sequence[float] | Iterable[float]) -> None:
        times = [float(t) for t in inter_arrival_times]
        if any(t < 0 for t in times):
            raise ValueError("inter-arrival times must be non-negative")
        self._times = tuple(times)
        self._cursor = 0

    def sample(self, rng: np.random.Generator) -> float:
        if self._cursor >= len(self._times):
            return math.inf
        value = self._times[self._cursor]
        self._cursor += 1
        return value

    def reset(self) -> None:
        self._cursor = 0

    @property
    def remaining(self) -> int:
        """Number of scripted failures not yet consumed."""
        return len(self._times) - self._cursor

    @property
    def mean_time_between_failures(self) -> float:
        if not self._times:
            return math.inf
        return sum(self._times) / len(self._times)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ScriptedFailures({list(self._times)!r})"


def failure_model_for(platform: Platform) -> FailureModel:
    """The paper's failure model for a platform: exponential at the platform rate."""
    if platform.is_failure_free:
        return NoFailures()
    return ExponentialFailures(platform.failure_rate)
