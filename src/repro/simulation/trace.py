"""Execution traces produced by the Monte-Carlo engine.

Every simulated run can optionally record a timeline of events: task attempts,
recoveries, re-executions, failures, downtimes, checkpoints and completions.
Traces serve three purposes: debugging schedules, validating the engine against
hand-computed scenarios (e.g. the paper's Figure-1 narrative), and producing
human-readable execution reports in the examples.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["EventKind", "TraceEvent", "ExecutionTrace"]


class EventKind(enum.Enum):
    """Kinds of events recorded by the simulator."""

    ATTEMPT_START = "attempt_start"
    RECOVERY = "recovery"
    RE_EXECUTION = "re_execution"
    COMPUTE = "compute"
    CHECKPOINT = "checkpoint"
    FAILURE = "failure"
    DOWNTIME = "downtime"
    TASK_COMPLETE = "task_complete"
    WORKFLOW_COMPLETE = "workflow_complete"


@dataclass(frozen=True)
class TraceEvent:
    """A single timeline entry.

    Attributes
    ----------
    kind:
        Event type.
    time:
        Simulation clock (seconds) at which the event *starts*.
    duration:
        Length of the event (0 for instantaneous markers such as failures).
    task:
        Index of the task concerned (``-1`` for platform-level events).
    note:
        Free-form annotation (e.g. which task is being recovered).
    """

    kind: EventKind
    time: float
    duration: float = 0.0
    task: int = -1
    note: str = ""

    @property
    def end_time(self) -> float:
        """Clock value at which the event finishes."""
        return self.time + self.duration


@dataclass
class ExecutionTrace:
    """Ordered list of :class:`TraceEvent` for one simulated execution."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(
        self,
        kind: EventKind,
        time: float,
        *,
        duration: float = 0.0,
        task: int = -1,
        note: str = "",
    ) -> None:
        """Append an event to the trace."""
        self.events.append(TraceEvent(kind=kind, time=time, duration=duration, task=task, note=note))

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        """All events of a given kind, in chronological order."""
        return [event for event in self.events if event.kind is kind]

    @property
    def n_failures(self) -> int:
        """Number of failures that struck during the execution."""
        return len(self.of_kind(EventKind.FAILURE))

    @property
    def makespan(self) -> float:
        """Completion time of the workflow (end of the last event)."""
        if not self.events:
            return 0.0
        return max(event.end_time for event in self.events)

    def total_duration(self, kind: EventKind) -> float:
        """Summed duration of all events of a given kind."""
        return sum(event.duration for event in self.of_kind(kind))

    @property
    def wasted_time(self) -> float:
        """Time spent on work that had to be redone, plus downtime and recoveries.

        Defined as the makespan minus the useful work (the weight of each task,
        counted once) and minus the checkpoints that were eventually committed.
        """
        useful = self.total_duration(EventKind.COMPUTE)
        checkpoints = self.total_duration(EventKind.CHECKPOINT)
        return max(0.0, self.makespan - useful - checkpoints)

    def tasks_completed(self) -> list[int]:
        """Indices of tasks whose completion was recorded, in completion order."""
        return [event.task for event in self.of_kind(EventKind.TASK_COMPLETE)]

    def validate_monotonic(self) -> bool:
        """Whether event start times are non-decreasing (sanity check)."""
        clock = 0.0
        for event in self.events:
            if event.time + 1e-9 < clock:
                return False
            clock = max(clock, event.time)
        return True

    def render(self, *, limit: int | None = None) -> str:
        """Human readable multi-line rendering of the trace."""
        lines = []
        for event in self.events[: limit if limit is not None else len(self.events)]:
            label = f"[{event.time:12.3f}s] {event.kind.value:<18}"
            if event.task >= 0:
                label += f" task={event.task:<4}"
            if event.duration:
                label += f" dur={event.duration:.3f}s"
            if event.note:
                label += f" ({event.note})"
            lines.append(label)
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
