"""Monte-Carlo fault-injection execution of a schedule.

The engine replays a schedule (linearization + checkpoint set) on a platform
whose failures are drawn from a :class:`~repro.simulation.failures.FailureModel`,
following the execution model of Section 3 of the paper:

* tasks run one after the other on the whole platform;
* a failure wipes the memory contents (every task output that was not
  checkpointed to stable storage is lost) and is followed by a constant
  downtime ``D``;
* before (re-)executing a task, the engine recovers the most recent checkpoints
  on every reverse path from the task and re-executes all non-checkpointed
  ancestors whose output was lost — the "lost and needed" closure of
  :func:`repro.core.lost_work.lost_and_needed_tasks`;
* failures may also strike during recoveries and checkpoints.

The engine exists to cross-validate the analytical evaluator of Theorem 3
(``tests/test_evaluator_montecarlo.py``) and to study extensions the analytical
formula does not cover: non-exponential failure laws and partially overlapped
("non-blocking") checkpoints, the paper's future-work direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.backend import BACKEND_REGISTRY
from ..core.lost_work import lost_and_needed_tasks
from ..core.platform import Platform
from ..core.schedule import Schedule
from .failures import FailureModel, failure_model_for
from .trace import EventKind, ExecutionTrace

__all__ = [
    "SimulationDiverged",
    "SimulationResult",
    "MonteCarloSummary",
    "simulate_schedule",
    "run_monte_carlo",
    "replica_generators",
]


class SimulationDiverged(RuntimeError):
    """Raised when a simulated execution exceeds the failure budget.

    This happens when the expected time between failures is much smaller than
    the work that must complete between two checkpoints: the execution is
    practically unable to finish and simulating it forever would hang.
    """


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated execution."""

    makespan: float
    n_failures: int
    total_downtime: float
    total_recovery_time: float
    total_reexecution_time: float
    trace: ExecutionTrace | None = None


@dataclass(frozen=True)
class MonteCarloSummary:
    """Aggregated statistics over many simulated executions.

    The 95% confidence interval is the usual normal approximation
    ``mean ± 1.96 · sem``; ``sem`` is the standard error of the mean.
    """

    n_runs: int
    mean_makespan: float
    std_makespan: float
    min_makespan: float
    max_makespan: float
    mean_failures: float
    samples: tuple[float, ...] = ()

    @property
    def sem(self) -> float:
        """Standard error of the mean makespan."""
        if self.n_runs <= 1:
            return math.inf if self.n_runs == 0 else 0.0
        return self.std_makespan / math.sqrt(self.n_runs)

    @property
    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval on the mean makespan."""
        half = 1.96 * self.sem
        return (self.mean_makespan - half, self.mean_makespan + half)

    def contains(self, value: float, *, widen: float = 1.0) -> bool:
        """Whether ``value`` lies within the (optionally widened) 95% CI."""
        low, high = self.ci95
        center = self.mean_makespan
        return (center - (center - low) * widen) <= value <= (center + (high - center) * widen)


def simulate_schedule(
    schedule: Schedule,
    platform: Platform,
    *,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    collect_trace: bool = False,
    max_failures: int = 1_000_000,
    checkpoint_overlap: float = 0.0,
) -> SimulationResult:
    """Simulate one execution of a schedule under injected failures.

    Parameters
    ----------
    schedule:
        The schedule to execute.
    platform:
        Provides the downtime ``D`` and, when ``failure_model`` is not given,
        the exponential failure rate.
    rng:
        Seed or numpy generator driving the failure process.
    failure_model:
        Failure inter-arrival law; defaults to the platform's exponential law.
    collect_trace:
        Record a full :class:`~repro.simulation.trace.ExecutionTrace`.
    max_failures:
        Abort (raising :class:`SimulationDiverged`) after this many failures.
    checkpoint_overlap:
        Fraction of each checkpoint that is overlapped with subsequent
        computation (``0`` reproduces the paper's blocking checkpoints, ``1``
        makes checkpoints free).  This models the "non-blocking checkpointing"
        future-work direction of Section 7 at the level of the timeline only.

    Returns
    -------
    SimulationResult
    """
    if not 0.0 <= checkpoint_overlap <= 1.0:
        raise ValueError("checkpoint_overlap must lie in [0, 1]")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    model = failure_model if failure_model is not None else failure_model_for(platform)
    model.reset()
    downtime = platform.downtime

    workflow = schedule.workflow
    order = schedule.order
    n = len(order)
    trace = ExecutionTrace() if collect_trace else None

    clock = 0.0
    n_failures = 0
    total_downtime = 0.0
    total_recovery = 0.0
    total_reexec = 0.0

    # Positions (1-based) whose output currently resides in memory, and the
    # positions whose checkpoint has been committed to stable storage.
    in_memory: set[int] = set()
    next_failure = model.sample(rng)

    def fail_here() -> None:
        nonlocal clock, n_failures, total_downtime, next_failure
        n_failures += 1
        if n_failures > max_failures:
            raise SimulationDiverged(
                f"simulation exceeded {max_failures} failures at t={clock:.3g}s; "
                "the schedule cannot realistically complete on this platform"
            )
        if trace is not None:
            trace.record(EventKind.FAILURE, clock, task=-1)
        in_memory.clear()
        if downtime > 0.0:
            if trace is not None:
                trace.record(EventKind.DOWNTIME, clock, duration=downtime, task=-1)
            clock += downtime
            total_downtime += downtime
        next_failure = clock + model.sample(rng)

    def run_segment(duration: float, kind: EventKind, task_index: int, note: str = "") -> bool:
        """Advance the clock by ``duration``; return False if a failure interrupts."""
        nonlocal clock
        if duration < 0:
            raise ValueError("segment duration must be non-negative")
        if clock + duration > next_failure:
            # The failure strikes strictly inside (or exactly at the end of)
            # the segment: the segment's work is lost.
            wasted = max(0.0, next_failure - clock)
            if trace is not None and wasted > 0.0:
                trace.record(kind, clock, duration=wasted, task=task_index, note=note + " (interrupted)")
            clock = next_failure
            fail_here()
            return False
        if duration > 0.0 and trace is not None:
            trace.record(kind, clock, duration=duration, task=task_index, note=note)
        clock += duration
        return True

    for position_zero, task_index in enumerate(order):
        position = position_zero + 1
        task = workflow.task(task_index)
        is_ckpt = schedule.is_checkpointed(task_index)
        ckpt_duration = task.checkpoint_cost * (1.0 - checkpoint_overlap) if is_ckpt else 0.0

        while True:
            # Build the recovery plan from the current memory state.
            plan, _, _ = lost_and_needed_tasks(schedule, position, frozenset(in_memory))
            if trace is not None:
                trace.record(
                    EventKind.ATTEMPT_START,
                    clock,
                    task=task_index,
                    note=f"plan={len(plan)} predecessor(s) to restore",
                )
            interrupted = False
            # The clock advances segment by segment (failure detection and
            # trace timestamps need the intermediate values), but a completed
            # attempt *snaps* the clock to ``attempt_start + attempt_total``,
            # with the total accumulated one segment at a time.  The batched
            # NumPy engine advances whole attempts with the identically
            # ordered sum, so both engines produce bit-for-bit equal clocks.
            attempt_start = clock
            attempt_total = 0.0

            for plan_position in plan:
                plan_task_index = order[plan_position - 1]
                plan_task = workflow.task(plan_task_index)
                if schedule.is_checkpointed(plan_task_index):
                    ok = run_segment(
                        plan_task.recovery_cost,
                        EventKind.RECOVERY,
                        plan_task_index,
                        note=f"recover for T{task_index}",
                    )
                    if ok:
                        total_recovery += plan_task.recovery_cost
                        attempt_total += plan_task.recovery_cost
                else:
                    ok = run_segment(
                        plan_task.weight,
                        EventKind.RE_EXECUTION,
                        plan_task_index,
                        note=f"re-execute for T{task_index}",
                    )
                    if ok:
                        total_reexec += plan_task.weight
                        attempt_total += plan_task.weight
                if not ok:
                    interrupted = True
                    break
                in_memory.add(plan_position)
            if interrupted:
                continue

            # The task's own computation.
            if not run_segment(task.weight, EventKind.COMPUTE, task_index):
                continue
            in_memory.add(position)
            attempt_total += task.weight

            # Its checkpoint (possibly shortened by the overlap extension).
            if is_ckpt:
                if not run_segment(ckpt_duration, EventKind.CHECKPOINT, task_index):
                    # The checkpoint did not commit and the computed output was
                    # wiped with the rest of the memory: retry the task.
                    continue
            attempt_total += ckpt_duration
            clock = attempt_start + attempt_total
            if trace is not None:
                trace.record(EventKind.TASK_COMPLETE, clock, task=task_index)
            break

    if trace is not None:
        trace.record(EventKind.WORKFLOW_COMPLETE, clock, task=-1)
    return SimulationResult(
        makespan=clock,
        n_failures=n_failures,
        total_downtime=total_downtime,
        total_recovery_time=total_recovery,
        total_reexecution_time=total_reexec,
        trace=trace,
    )


def replica_generators(
    rng: np.random.Generator | int | None, n_runs: int
) -> list[np.random.Generator]:
    """One independent child generator per Monte-Carlo replica.

    Replica streams are spawned from the seed (or generator) rather than
    shared sequentially, so replica ``r`` consumes the same values no matter
    how many draws the replicas before it made — the property that lets the
    batched NumPy engine pre-sample failures per replica and still be
    bit-for-bit identical to the sequential reference engine.
    """
    if isinstance(rng, np.random.Generator):
        try:
            return list(rng.spawn(n_runs))
        except AttributeError:  # pragma: no cover - numpy < 1.25
            seeds = rng.integers(0, 2**63, size=n_runs)
            return [np.random.default_rng(int(seed)) for seed in seeds]
    return [np.random.default_rng(seq) for seq in np.random.SeedSequence(rng).spawn(n_runs)]


def run_monte_carlo(
    schedule: Schedule,
    platform: Platform,
    *,
    n_runs: int = 1000,
    rng: np.random.Generator | int | None = None,
    failure_model: FailureModel | None = None,
    max_failures: int = 1_000_000,
    checkpoint_overlap: float = 0.0,
    keep_samples: bool = False,
    backend: str | None = None,
) -> MonteCarloSummary:
    """Estimate the expected makespan of a schedule by repeated simulation.

    Parameters
    ----------
    n_runs:
        Number of independent simulated executions.
    keep_samples:
        Attach the individual makespans to the summary (useful for plotting
        or for distribution-level tests).
    backend:
        ``"python"`` replays the replicas one by one through
        :func:`simulate_schedule`; ``"numpy"`` simulates all replicas at
        once (:mod:`repro.simulation.engine_np`); ``"auto"``/``None`` picks
        NumPy for batches large enough to amortize the attempt-matrix
        precomputation.  Resolution requires the ``monte_carlo``
        capability, so backends without a simulator (e.g. ``native``)
        fall back to the best capable one instead of erroring.  Both
        engines produce bit-for-bit identical samples for the same
        ``rng``, so the backend is a pure performance knob.

    Returns
    -------
    MonteCarloSummary
    """
    if n_runs <= 0:
        raise ValueError("n_runs must be positive")
    # The "instance size" that decides whether vectorization pays off is the
    # replica count, so it (not the task count) feeds the auto rule.
    resolved = BACKEND_REGISTRY.resolve(
        backend, n_tasks=n_runs, require="monte_carlo"
    ).name
    generators = replica_generators(rng, n_runs)

    if resolved == "numpy":
        from .engine_np import simulate_batch

        makespans, failure_counts = simulate_batch(
            schedule,
            platform,
            generators,
            failure_model=failure_model,
            max_failures=max_failures,
            checkpoint_overlap=checkpoint_overlap,
        )
        failures = failure_counts.astype(float)
    else:
        makespans = np.empty(n_runs, dtype=float)
        failures = np.empty(n_runs, dtype=float)
        for run in range(n_runs):
            result = simulate_schedule(
                schedule,
                platform,
                rng=generators[run],
                failure_model=failure_model,
                collect_trace=False,
                max_failures=max_failures,
                checkpoint_overlap=checkpoint_overlap,
            )
            makespans[run] = result.makespan
            failures[run] = result.n_failures
    return MonteCarloSummary(
        n_runs=n_runs,
        mean_makespan=float(np.mean(makespans)),
        std_makespan=float(np.std(makespans, ddof=1)) if n_runs > 1 else 0.0,
        min_makespan=float(np.min(makespans)),
        max_makespan=float(np.max(makespans)),
        mean_failures=float(np.mean(failures)),
        samples=tuple(float(x) for x in makespans) if keep_samples else (),
    )
