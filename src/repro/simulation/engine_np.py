"""Batched NumPy Monte-Carlo engine: simulate every replica simultaneously.

The reference engine of :mod:`repro.simulation.engine` replays one execution
at a time with an interpreted event loop; statistically meaningful robustness
studies need 10^4-10^5 replicas per scenario point, which that loop cannot
sustain.  This module simulates *all* replicas of one schedule at once and is
bit-for-bit identical to the reference engine for a shared seed (the
equivalence tests in ``tests/test_engine_np.py`` pin this exactly, not within
a tolerance).

The vectorization rests on one structural observation about the blocking
execution model of Section 3: **between two failures, execution is
deterministic**.  A failure wipes the memory, so the execution state of a
replica collapses to the pair ``(s, i)`` where ``i`` is the position being
attempted and ``s`` is the position whose processing the *last* failure
interrupted (``s = 1`` covers the never-failed prefix, whose memory state
equals the restart-at-1 trajectory).  Given ``s``, the memory contents upon
reaching any later position ``i`` — and therefore the recovery plan and the
duration of the attempt at ``i`` — are fixed by the schedule alone:

* ``T[s, i]`` — the *attempt matrix* — is the total duration of one attempt
  of position ``i`` in restart state ``s``: recoveries and re-executions of
  the lost-and-needed closure, the task's own weight, and its (possibly
  overlap-shortened) checkpoint;
* an attempt either completes (``clock += T[s, i]``, move to ``i + 1``,
  state ``s`` unchanged) or is interrupted by the next failure
  (``clock = failure time + downtime``, state becomes ``(i, i)``).

The matrix costs O(n^2) memory and one Algorithm-1-style traversal sweep to
fill, paid once per schedule and amortized over every replica.  The replica
loop then advances one *event* (completed attempt or failure) per iteration
for every still-active replica with pure array operations.

Randomness: each replica owns a spawned child generator (see
``run_monte_carlo``), and inter-arrival times are drawn through
``FailureModel.sample_batch``, whose contract guarantees the same values as
the reference engine's lazy scalar draws.
"""

from __future__ import annotations

import numpy as np

from ..core.platform import Platform
from ..core.schedule import Schedule
from .engine import SimulationDiverged
from .failures import FailureModel, failure_model_for

__all__ = ["attempt_matrix", "simulate_batch"]

#: Inter-arrival times pre-sampled per replica and per refill.  Large enough
#: that failure-heavy runs amortize the per-replica refill calls, small
#: enough that failure-free runs do not oversample.
DEFAULT_BATCH = 64


def attempt_matrix(schedule: Schedule, *, checkpoint_overlap: float = 0.0) -> np.ndarray:
    """The ``(n + 2, n + 2)`` attempt-duration matrix ``T[s, i]`` of a schedule.

    ``T[s, i]`` (1-based positions, ``1 <= s <= i <= n``) is the duration of
    one failure-free attempt of position ``i`` when the last failure struck
    while position ``s`` was being processed; row ``s = 1`` doubles as the
    never-failed trajectory.  Entries outside ``s <= i`` are zero.  The extra
    trailing row/column lets the replica loop index ``T[i, i]`` after a
    failure at ``i = n`` without clamping.
    """
    if not 0.0 <= checkpoint_overlap <= 1.0:
        raise ValueError("checkpoint_overlap must lie in [0, 1]")
    workflow = schedule.workflow
    order = schedule.order
    n = len(order)

    # 1-based per-position tables, as in repro.core.lost_work.
    weight = [0.0] * (n + 1)
    ckpt_duration = [0.0] * (n + 1)  # (possibly overlap-shortened) checkpoint
    segment_cost = [0.0] * (n + 1)  # recovery if checkpointed, re-execution otherwise
    checkpointed = [False] * (n + 1)
    predecessors: list[tuple[int, ...]] = [()] * (n + 1)
    position = {task: pos + 1 for pos, task in enumerate(order)}
    for pos_zero, task_index in enumerate(order):
        pos = pos_zero + 1
        task = workflow.task(task_index)
        weight[pos] = task.weight
        checkpointed[pos] = schedule.is_checkpointed(task_index)
        segment_cost[pos] = task.recovery_cost if checkpointed[pos] else task.weight
        if checkpointed[pos]:
            ckpt_duration[pos] = task.checkpoint_cost * (1.0 - checkpoint_overlap)
        predecessors[pos] = tuple(position[p] for p in workflow.predecessors(task_index))

    matrix = np.zeros((n + 2, n + 2), dtype=np.float64)
    for s in range(1, n + 1):
        # Walk the deterministic restart-s trajectory: memory starts empty
        # (the failure wiped it) and accumulates every recovered,
        # re-executed, or completed position.  The traversal below is the
        # lost-and-needed closure of repro.core.lost_work, with membership
        # recorded directly into the trajectory's memory state.
        in_memory = bytearray(n + 1)
        for i in range(s, n + 1):
            plan: list[int] = []
            stack = [j for j in predecessors[i] if not in_memory[j]]
            while stack:
                j = stack.pop()
                if in_memory[j]:
                    continue
                in_memory[j] = 1
                plan.append(j)
                if not checkpointed[j]:
                    stack.extend(p for p in predecessors[j] if not in_memory[p])
            # Accumulate in the exact order the reference engine executes
            # the attempt — sorted plan positions, own weight, checkpoint —
            # with one scalar addition per segment, so the two engines'
            # floating-point results are identical to the last bit.
            total = 0.0
            for j in sorted(plan):
                total += segment_cost[j]
            total += weight[i]
            total += ckpt_duration[i]
            matrix[s, i] = total
            in_memory[i] = 1
    return matrix


class _InterArrivalStreams:
    """Per-replica buffers of pre-sampled failure inter-arrival times.

    Each replica draws from its own spawned generator through
    ``FailureModel.sample_batch``; the model is ``reset()`` before each
    replica's first batch, so every replica sees the model's sequence from
    the start (this is what the reference engine's per-run ``reset`` does).
    Refills replace a replica's exhausted row; stateful scripted models
    request their whole script in the first batch via ``batch_hint``.
    """

    def __init__(
        self,
        model: FailureModel,
        generators: list[np.random.Generator],
        batch: int = DEFAULT_BATCH,
    ) -> None:
        hint = model.batch_hint()
        self._batch = max(batch, hint if hint is not None else 0)
        self._model = model
        self._generators = generators
        n = len(generators)
        self._buffer = np.empty((n, self._batch), dtype=np.float64)
        for replica, generator in enumerate(generators):
            model.reset()
            self._buffer[replica] = model.sample_batch(generator, self._batch)
        self._cursor = np.zeros(n, dtype=np.intp)

    def take(self, replicas: np.ndarray) -> np.ndarray:
        """Next inter-arrival time for each replica index in ``replicas``."""
        exhausted = replicas[self._cursor[replicas] >= self._batch]
        for replica in exhausted:
            self._buffer[replica] = self._model.sample_batch(
                self._generators[replica], self._batch
            )
            self._cursor[replica] = 0
        values = self._buffer[replicas, self._cursor[replicas]]
        self._cursor[replicas] += 1
        return values


def simulate_batch(
    schedule: Schedule,
    platform: Platform,
    generators: list[np.random.Generator],
    *,
    failure_model: FailureModel | None = None,
    max_failures: int = 1_000_000,
    checkpoint_overlap: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Simulate one execution per generator; return (makespans, failure counts).

    Replica ``r`` consumes exactly the same inter-arrival values, in the same
    order, as ``simulate_schedule(schedule, platform, rng=generators[r],
    failure_model=failure_model, ...)`` — the two engines produce bit-for-bit
    identical makespans.
    """
    model = failure_model if failure_model is not None else failure_model_for(platform)
    matrix = attempt_matrix(schedule, checkpoint_overlap=checkpoint_overlap)
    n = len(schedule.order)
    downtime = platform.downtime
    n_replicas = len(generators)

    streams = _InterArrivalStreams(model, generators)
    all_replicas = np.arange(n_replicas, dtype=np.intp)

    clock = np.zeros(n_replicas, dtype=np.float64)
    failures = np.zeros(n_replicas, dtype=np.int64)
    restart = np.ones(n_replicas, dtype=np.intp)  # state s (last interrupted position)
    current = np.ones(n_replicas, dtype=np.intp)  # position i being attempted
    next_failure = streams.take(all_replicas)
    active = all_replicas.copy() if n > 0 else all_replicas[:0]

    while active.size:
        duration = matrix[restart[active], current[active]]
        interrupted = clock[active] + duration > next_failure[active]

        completed = active[~interrupted]
        if completed.size:
            clock[completed] += duration[~interrupted]
            current[completed] += 1

        failed = active[interrupted]
        if failed.size:
            failures[failed] += 1
            worst = int(failures[failed].max())
            if worst > max_failures:
                replica = int(failed[np.argmax(failures[failed])])
                raise SimulationDiverged(
                    f"simulation exceeded {max_failures} failures at "
                    f"t={float(next_failure[replica]):.3g}s (replica {replica}); "
                    "the schedule cannot realistically complete on this platform"
                )
            clock[failed] = next_failure[failed] + downtime
            restart[failed] = current[failed]
            next_failure[failed] = clock[failed] + streams.take(failed)

        active = active[current[active] <= n]

    return clock, failures
