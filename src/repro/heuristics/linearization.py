"""DAG linearization strategies (Section 5 of the paper).

Three strategies are proposed by the paper to turn the DAG into a sequence of
tasks (all tasks run on the whole platform, so they execute one after the
other):

* **DF** (depth-first): after a task completes, prefer executing one of the
  tasks it just made ready — "if some work can be done that depends on the most
  recently completed work then it should be done", which limits the amount of
  un-checkpointed work at risk.
* **BF** (breadth-first): process the DAG level by level.
* **RF** (random-first): pick any ready task uniformly at random.

For DF and BF, ready tasks are prioritised by **decreasing outweight** (the sum
of the weights of their direct successors): tasks with "heavy" subtrees should
be executed first.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from ..core.dag import Workflow

__all__ = ["LINEARIZATION_STRATEGIES", "linearize", "linearize_all"]

#: Names of the supported strategies, in the paper's notation.
LINEARIZATION_STRATEGIES = ("DF", "BF", "RF")


def _priorities(workflow: Workflow) -> list[float]:
    """Outweight of every task (the DF/BF priority)."""
    return [workflow.outweight(i) for i in range(workflow.n_tasks)]


def _check_complete(order: list[int], workflow: Workflow) -> tuple[int, ...]:
    if len(order) != workflow.n_tasks:
        raise RuntimeError(
            "internal error: linearization did not cover every task "
            f"({len(order)}/{workflow.n_tasks})"
        )
    return tuple(order)


def _linearize_depth_first(workflow: Workflow, priorities: Sequence[float]) -> tuple[int, ...]:
    """Depth-first linearization with outweight priorities.

    A stack of ready tasks is maintained; when a task completes, its successors
    that become ready are pushed in increasing priority order so that the
    highest-priority one is popped (and hence executed) first.  This always
    yields a valid topological order and follows the most recently opened
    branch as deeply as possible.
    """
    n = workflow.n_tasks
    in_deg = [workflow.in_degree(i) for i in range(n)]
    # Initial ready tasks (sources), pushed so that the highest priority is on top.
    sources = sorted(
        (i for i in range(n) if in_deg[i] == 0),
        key=lambda i: (priorities[i], -i),
    )
    stack: list[int] = list(sources)
    order: list[int] = []
    while stack:
        node = stack.pop()
        order.append(node)
        newly_ready = []
        for succ in workflow.successors(node):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                newly_ready.append(succ)
        newly_ready.sort(key=lambda i: (priorities[i], -i))
        stack.extend(newly_ready)
    return _check_complete(order, workflow)


def _linearize_breadth_first(workflow: Workflow, priorities: Sequence[float]) -> tuple[int, ...]:
    """Breadth-first linearization with outweight priorities.

    Ready tasks are consumed from a FIFO queue; tasks made ready by the same
    completion are enqueued by decreasing priority.
    """
    n = workflow.n_tasks
    in_deg = [workflow.in_degree(i) for i in range(n)]
    initial = sorted(
        (i for i in range(n) if in_deg[i] == 0),
        key=lambda i: (-priorities[i], i),
    )
    queue: deque[int] = deque(initial)
    order: list[int] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        newly_ready = []
        for succ in workflow.successors(node):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                newly_ready.append(succ)
        newly_ready.sort(key=lambda i: (-priorities[i], i))
        queue.extend(newly_ready)
    return _check_complete(order, workflow)


def _linearize_random(workflow: Workflow, rng: np.random.Generator) -> tuple[int, ...]:
    """Random linearization: pick uniformly among the ready tasks."""
    n = workflow.n_tasks
    in_deg = [workflow.in_degree(i) for i in range(n)]
    ready = [i for i in range(n) if in_deg[i] == 0]
    order: list[int] = []
    while ready:
        pick = int(rng.integers(len(ready)))
        node = ready.pop(pick)
        order.append(node)
        for succ in workflow.successors(node):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                ready.append(succ)
    return _check_complete(order, workflow)


def linearize(
    workflow: Workflow,
    strategy: str = "DF",
    *,
    rng: np.random.Generator | int | None = None,
) -> tuple[int, ...]:
    """Linearize a workflow with one of the paper's strategies.

    Parameters
    ----------
    workflow:
        The DAG to linearize.
    strategy:
        ``"DF"``, ``"BF"`` or ``"RF"`` (case-insensitive).
    rng:
        Random generator or seed, only used by ``"RF"``.

    Returns
    -------
    tuple[int, ...]
        A valid topological order of all task indices.
    """
    strategy = strategy.upper()
    if strategy not in LINEARIZATION_STRATEGIES:
        raise ValueError(
            f"unknown linearization strategy {strategy!r}; "
            f"expected one of {LINEARIZATION_STRATEGIES}"
        )
    if workflow.n_tasks == 0:
        return ()
    if strategy == "RF":
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        return _linearize_random(workflow, rng)
    priorities = _priorities(workflow)
    if strategy == "DF":
        return _linearize_depth_first(workflow, priorities)
    return _linearize_breadth_first(workflow, priorities)


def linearize_all(
    workflow: Workflow, *, rng: np.random.Generator | int | None = None
) -> dict[str, tuple[int, ...]]:
    """Convenience helper returning one linearization per strategy."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return {
        strategy: linearize(workflow, strategy, rng=rng)
        for strategy in LINEARIZATION_STRATEGIES
    }
