"""The fourteen named heuristics of the paper and a convenience solver.

Heuristic names concatenate a linearization strategy and a checkpointing
strategy, e.g. ``"DF-CkptW"`` or ``"RF-CkptC"``.  Following Section 5:

* ``CkptNvr`` and ``CkptAlws`` are only combined with ``DF`` (2 heuristics);
* ``CkptW``, ``CkptC``, ``CkptD`` and ``CkptPer`` are combined with each of
  ``DF``, ``BF``, ``RF`` (12 heuristics);

for a total of 14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.backend import BackendSpec
from ..core.dag import Workflow
from ..core.evaluator import MakespanEvaluation, evaluate_schedule
from ..core.platform import Platform
from ..core.schedule import Schedule
from .checkpointing import (
    CHECKPOINT_STRATEGIES,
    PARAMETERISED_STRATEGIES,
    get_selector,
)
from ..core.hashing import stable_seed_words
from .linearization import LINEARIZATION_STRATEGIES, linearize
from .search import search_checkpoint_count

__all__ = [
    "HEURISTIC_NAMES",
    "HeuristicResult",
    "heuristic_rng",
    "parse_heuristic_name",
    "solve_heuristic",
    "solve_all_heuristics",
    "best_heuristic",
]


def _build_names() -> tuple[str, ...]:
    names = ["DF-CkptNvr", "DF-CkptAlws"]
    for linearization in LINEARIZATION_STRATEGIES:
        for strategy in PARAMETERISED_STRATEGIES:
            names.append(f"{linearization}-{strategy}")
    return tuple(names)


#: The fourteen heuristic names used throughout the paper's Section 6.
HEURISTIC_NAMES: tuple[str, ...] = _build_names()


@dataclass(frozen=True)
class HeuristicResult:
    """Schedule produced by a heuristic, with its analytical evaluation."""

    heuristic: str
    linearization: str
    checkpoint_strategy: str
    schedule: Schedule
    evaluation: MakespanEvaluation
    checkpoint_count: int

    @property
    def expected_makespan(self) -> float:
        """Expected makespan (seconds) of the produced schedule."""
        return self.evaluation.expected_makespan

    @property
    def overhead_ratio(self) -> float:
        """The paper's ``T / T_inf`` metric for the produced schedule."""
        return self.evaluation.overhead_ratio


def parse_heuristic_name(name: str) -> tuple[str, str]:
    """Split ``"DF-CkptW"`` into ``("DF", "CkptW")`` with validation."""
    try:
        linearization, strategy = name.split("-", maxsplit=1)
    except ValueError as exc:
        raise ValueError(
            f"heuristic name {name!r} must look like '<linearization>-<strategy>'"
        ) from exc
    if linearization not in LINEARIZATION_STRATEGIES:
        raise ValueError(
            f"unknown linearization {linearization!r} in heuristic {name!r}; "
            f"expected one of {LINEARIZATION_STRATEGIES}"
        )
    if strategy not in CHECKPOINT_STRATEGIES:
        raise ValueError(
            f"unknown checkpointing strategy {strategy!r} in heuristic {name!r}; "
            f"expected one of {CHECKPOINT_STRATEGIES}"
        )
    return linearization, strategy


def heuristic_rng(seed: int, heuristic: str) -> np.random.Generator:
    """Independent random stream for one ``(seed, heuristic)`` pair.

    Sharing one generator across heuristics makes an RF result depend on how
    many random draws happened *before* it — i.e. on which other heuristics
    ran, and in which order.  Deriving each stream from a stable hash of the
    pair removes that coupling: any process (a serial loop, a pool worker, a
    future session) reproduces the exact same stream, which is what lets a
    parallel campaign match the serial one bit-for-bit.
    """
    words = stable_seed_words("heuristic-rng", int(seed), str(heuristic))
    return np.random.default_rng(np.random.SeedSequence(words))


def solve_heuristic(
    workflow: Workflow,
    platform: Platform,
    heuristic: str = "DF-CkptW",
    *,
    rng: np.random.Generator | int | None = None,
    counts: "list[int] | tuple[int, ...] | None" = None,
    backend: str | BackendSpec | None = None,
    sweep_evaluator=None,
) -> HeuristicResult:
    """Run one named heuristic end to end.

    Parameters
    ----------
    workflow:
        The workflow to schedule (checkpoint / recovery costs must already be
        assigned, e.g. via :meth:`Workflow.with_checkpoint_costs`).
    platform:
        The failure-prone platform.
    heuristic:
        One of :data:`HEURISTIC_NAMES` (other valid combinations such as
        ``"BF-CkptNvr"`` are accepted too, for ablation purposes).
    rng:
        Seed or generator used by the ``RF`` linearization.  An integer
        seed derives the per-``(seed, heuristic)`` stream of
        :func:`heuristic_rng`, so the result matches what a campaign run
        with the same seed produces for this heuristic; pass an explicit
        generator for a raw shared stream.
    counts:
        Candidate checkpoint counts for the parameterised strategies;
        defaults to the paper's exhaustive ``1 .. n-1`` search.
    backend:
        Backend name (``"auto"`` / ``"python"`` / ``"numpy"`` /
        ``"native"``) or :class:`~repro.core.backend.BackendSpec` used for
        every schedule scoring; see
        :meth:`repro.core.backend.BackendRegistry.resolve`.
    sweep_evaluator:
        Optional shared candidate-set evaluator forwarded to
        :func:`~repro.heuristics.search.search_checkpoint_count` (the
        service layer's cross-request batching hook).  Ignored by the
        search-free strategies ``CkptNvr`` / ``CkptAlws``.  Equivalent to
        the ``evaluator`` field of a :class:`BackendSpec` passed as
        ``backend`` (the explicit argument wins when both are given).

    Returns
    -------
    HeuristicResult
    """
    spec = BackendSpec.coerce(backend)
    if sweep_evaluator is None:
        sweep_evaluator = spec.evaluator
    backend = spec.backend
    linearization, strategy = parse_heuristic_name(heuristic)
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        rng = heuristic_rng(int(rng), heuristic)
    order = linearize(workflow, linearization, rng=rng)

    if strategy in ("CkptNvr", "CkptAlws"):
        selected = (
            frozenset()
            if strategy == "CkptNvr"
            else frozenset(range(workflow.n_tasks))
        )
        schedule = Schedule(workflow, order, selected)
        evaluation = evaluate_schedule(schedule, platform, backend=backend)
        return HeuristicResult(
            heuristic=heuristic,
            linearization=linearization,
            checkpoint_strategy=strategy,
            schedule=schedule,
            evaluation=evaluation,
            checkpoint_count=len(selected),
        )

    selector = get_selector(strategy)
    search = search_checkpoint_count(
        workflow, order, platform, selector, counts=counts, backend=backend,
        evaluator=sweep_evaluator,
    )
    return HeuristicResult(
        heuristic=heuristic,
        linearization=linearization,
        checkpoint_strategy=strategy,
        schedule=search.best_schedule,
        evaluation=search.best_evaluation,
        checkpoint_count=len(search.best_schedule.checkpointed),
    )


def solve_all_heuristics(
    workflow: Workflow,
    platform: Platform,
    *,
    heuristics: "tuple[str, ...] | list[str] | None" = None,
    rng: np.random.Generator | int | None = None,
    counts: "list[int] | tuple[int, ...] | None" = None,
    backend: str | BackendSpec | None = None,
) -> dict[str, HeuristicResult]:
    """Run several heuristics and return their results keyed by name.

    When ``rng`` is an integer seed, every heuristic draws from its own
    :func:`heuristic_rng` stream, so each result is independent of which
    other heuristics run alongside it.  Any other value (``None``, a
    :class:`numpy.random.Generator`, a ``SeedSequence``, ...) keeps the
    historical behavior of one shared ``np.random.default_rng(rng)``
    stream.
    """
    if heuristics is None:
        heuristics = HEURISTIC_NAMES
    if isinstance(rng, (int, np.integer)) and not isinstance(rng, bool):
        seed = int(rng)  # solve_heuristic derives the per-heuristic stream
        return {
            name: solve_heuristic(
                workflow, platform, name, rng=seed, counts=counts, backend=backend
            )
            for name in heuristics
        }
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    return {
        name: solve_heuristic(
            workflow, platform, name, rng=rng, counts=counts, backend=backend
        )
        for name in heuristics
    }


def best_heuristic(
    workflow: Workflow,
    platform: Platform,
    *,
    heuristics: "tuple[str, ...] | list[str] | None" = None,
    rng: np.random.Generator | int | None = None,
    counts: "list[int] | tuple[int, ...] | None" = None,
    backend: str | BackendSpec | None = None,
) -> HeuristicResult:
    """Run several heuristics and return the one with the lowest expected makespan."""
    results = solve_all_heuristics(
        workflow, platform, heuristics=heuristics, rng=rng, counts=counts,
        backend=backend,
    )
    best: HeuristicResult | None = None
    best_value = math.inf
    for result in results.values():
        if result.expected_makespan < best_value:
            best_value = result.expected_makespan
            best = result
    if best is None:
        raise ValueError("no heuristic was evaluated")
    return best
