"""Schedule refinement: greedy construction and local search on checkpoint sets.

The paper's parameterised heuristics (CkptW, CkptC, CkptD, CkptPer) rank tasks
by a static criterion and only search over *how many* of them to checkpoint.
Because the Theorem-3 evaluator prices any schedule exactly, two natural
extensions become possible — both are listed as obvious follow-ups enabled by
the paper's main result and are used here as ablations:

* **Greedy construction** (:func:`greedy_checkpoint_selection`): start from the
  empty checkpoint set and repeatedly add the single checkpoint whose addition
  reduces the expected makespan the most, until no addition helps.  This is the
  classical marginal-gain heuristic, with the evaluator as the oracle.
* **Local search** (:func:`local_search_checkpoints`): starting from any
  schedule (typically the output of a paper heuristic), repeatedly toggle the
  single checkpoint (add or remove) that yields the best improvement, until a
  local optimum is reached.

Both are deterministic, anytime (they can be budget-limited), and can only
improve the expected makespan of the schedule they start from — properties the
test-suite asserts.  They cost ``O(n)`` evaluator calls per step, so they are
noticeably more expensive than the paper's heuristics; the ablation benchmark
``benchmarks/bench_refinement_ablation.py`` quantifies the accuracy/cost
trade-off.  On the numpy backend the calls are served by one persistent
:class:`~repro.core.sweep.SweepState`, so consecutive single-toggle probes
only recompute the suffix of the instance they can actually change
(``benchmarks/bench_sweep_incremental.py`` measures the saving).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..core.backend import BackendSpec
from ..core.dag import Workflow
from ..core.evaluator import MakespanEvaluation, evaluate_schedule
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.sweep import SweepState

__all__ = [
    "RefinementResult",
    "greedy_checkpoint_selection",
    "local_search_checkpoints",
    "refine_schedule",
]


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of a greedy construction or local search.

    Attributes
    ----------
    schedule:
        The final (possibly improved) schedule.
    evaluation:
        Its analytical evaluation.
    initial_expected_makespan:
        Expected makespan of the starting schedule.
    steps:
        Number of accepted moves (checkpoint additions / removals).
    evaluations:
        Number of evaluator calls spent.  Every probed candidate counts as
        exactly one call whether it was priced incrementally (the numpy
        sweep engine) or eagerly (the python reference), so the ablation
        benchmarks compare like for like across backends.
    """

    schedule: Schedule
    evaluation: MakespanEvaluation
    initial_expected_makespan: float
    steps: int
    evaluations: int

    @property
    def expected_makespan(self) -> float:
        """Expected makespan of the refined schedule."""
        return self.evaluation.expected_makespan

    @property
    def improvement(self) -> float:
        """Absolute reduction of the expected makespan (>= 0)."""
        return max(0.0, self.initial_expected_makespan - self.expected_makespan)

    @property
    def relative_improvement(self) -> float:
        """Relative reduction of the expected makespan (0 when already optimal)."""
        if self.initial_expected_makespan == 0.0:
            return 0.0
        return self.improvement / self.initial_expected_makespan


def _best_single_change(
    sweep: SweepState,
    current: frozenset[int],
    current_value: float,
    *,
    allow_add: bool,
    allow_remove: bool,
    candidates: Sequence[int] | None,
) -> tuple[frozenset[int] | None, float, int]:
    """Evaluate all single-checkpoint toggles; return the best improving one.

    The toggles are probed through the shared :class:`SweepState`:
    consecutive probes differ by two checkpoints (revert the previous toggle,
    apply the next), so each evaluation recomputes only the suffix behind the
    lower of the two positions.  Probing in *descending* position order makes
    that suffix the one behind the freshly applied toggle alone (the revert
    always sits higher), which keeps the total invalidated work of a round at
    its minimum.  Both backends probe in the same order, so tie-breaking is
    backend-independent.
    """
    pool = range(sweep.workflow.n_tasks) if candidates is None else candidates
    position = {task: pos for pos, task in enumerate(sweep.order)}
    moves: list[tuple[int, frozenset[int]]] = []
    for task in pool:
        if task in current:
            if not allow_remove:
                continue
            moves.append((position[task], current - {task}))
        else:
            if not allow_add:
                continue
            # Even a free checkpoint must be evaluated to know whether it
            # helps, so every allowed toggle enters the sweep.
            moves.append((position[task], current | {task}))
    if not moves:
        return None, current_value, 0
    moves.sort(key=lambda move: -move[0])
    best_set: frozenset[int] | None = None
    best_value = current_value
    for _, candidate in moves:
        value = sweep.evaluate(candidate, keep_task_times=False).expected_makespan
        if value < best_value - 1e-12:
            best_value = value
            best_set = candidate
    return best_set, best_value, len(moves)


def greedy_checkpoint_selection(
    workflow: Workflow,
    order: Sequence[int],
    platform: Platform,
    *,
    max_checkpoints: int | None = None,
    candidates: Sequence[int] | None = None,
    backend: "str | BackendSpec | None" = None,
) -> RefinementResult:
    """Greedy marginal-gain construction of a checkpoint set.

    Starting from the empty set, repeatedly add the checkpoint whose addition
    decreases the expected makespan the most; stop when no addition improves
    the makespan or when ``max_checkpoints`` have been placed.

    Parameters
    ----------
    workflow, order, platform:
        The instance; ``order`` must be a valid linearization.
    max_checkpoints:
        Optional budget on the number of checkpoints (``None`` = unbounded).
    candidates:
        Optional subset of tasks allowed to be checkpointed.
    backend:
        Backend name or :class:`~repro.core.backend.BackendSpec` for the
        toggle sweeps (see
        :meth:`repro.core.backend.BackendRegistry.resolve`).

    Returns
    -------
    RefinementResult
    """
    backend = BackendSpec.coerce(backend).backend
    order = tuple(order)
    current: frozenset[int] = frozenset()
    schedule = Schedule(workflow, order, current)
    evaluation = evaluate_schedule(schedule, platform, backend=backend)
    initial_value = evaluation.expected_makespan
    current_value = initial_value
    steps = 0
    total_evaluations = 1

    # One sweep state serves every round: the probes of round r differ from
    # the probes of round r-1 by a handful of toggles, so the incremental
    # engine keeps reusing its prefixes across the whole construction.
    sweep = SweepState(workflow, order, platform, backend=backend)
    budget = workflow.n_tasks if max_checkpoints is None else int(max_checkpoints)
    while steps < budget:
        best_set, best_value, n_evals = _best_single_change(
            sweep,
            current,
            current_value,
            allow_add=True,
            allow_remove=False,
            candidates=candidates,
        )
        total_evaluations += n_evals
        if best_set is None:
            break
        current = best_set
        current_value = best_value
        steps += 1

    schedule = Schedule(workflow, order, current)
    evaluation = evaluate_schedule(schedule, platform, backend=backend)
    return RefinementResult(
        schedule=schedule,
        evaluation=evaluation,
        initial_expected_makespan=initial_value,
        steps=steps,
        evaluations=total_evaluations,
    )


def local_search_checkpoints(
    schedule: Schedule,
    platform: Platform,
    *,
    max_steps: int | None = None,
    candidates: Sequence[int] | None = None,
    backend: "str | BackendSpec | None" = None,
) -> RefinementResult:
    """Hill-climb on the checkpoint set by single add/remove moves.

    Starting from ``schedule``, repeatedly apply the single checkpoint addition
    or removal that reduces the expected makespan the most; stop at a local
    optimum (no single toggle improves) or after ``max_steps`` accepted moves.
    The linearization is left untouched.

    Returns
    -------
    RefinementResult
        Never worse than the input schedule.
    """
    backend = BackendSpec.coerce(backend).backend
    workflow = schedule.workflow
    order = schedule.order
    current = schedule.checkpointed
    evaluation = evaluate_schedule(schedule, platform, backend=backend)
    initial_value = evaluation.expected_makespan
    current_value = initial_value
    steps = 0
    total_evaluations = 1
    limit = math.inf if max_steps is None else int(max_steps)

    sweep = SweepState(workflow, order, platform, backend=backend)
    while steps < limit:
        best_set, best_value, n_evals = _best_single_change(
            sweep,
            current,
            current_value,
            allow_add=True,
            allow_remove=True,
            candidates=candidates,
        )
        total_evaluations += n_evals
        if best_set is None:
            break
        current = best_set
        current_value = best_value
        steps += 1

    final = Schedule(workflow, order, current)
    final_eval = evaluate_schedule(final, platform, backend=backend)
    return RefinementResult(
        schedule=final,
        evaluation=final_eval,
        initial_expected_makespan=initial_value,
        steps=steps,
        evaluations=total_evaluations,
    )


def refine_schedule(
    schedule: Schedule,
    platform: Platform,
    *,
    max_steps: int | None = None,
    backend: "str | BackendSpec | None" = None,
) -> Schedule:
    """Convenience wrapper returning only the locally improved schedule."""
    return local_search_checkpoints(
        schedule, platform, max_steps=max_steps, backend=backend
    ).schedule
