"""Checkpoint-selection strategies (Section 5 of the paper).

Given a linearized workflow, a checkpointing strategy decides which task
outputs to save.  The paper proposes:

* **CkptNvr** — never checkpoint (baseline);
* **CkptAlws** — checkpoint every task (baseline);
* **CkptW** — checkpoint the ``N`` tasks with the largest weights
  (longest computations are the most expensive to lose);
* **CkptC** — checkpoint the ``N`` tasks with the smallest checkpoint costs;
* **CkptD** — checkpoint the ``N`` tasks with the largest total successor
  weight :math:`d_i` (heavy downstream work is most exposed to losing their
  input);
* **CkptPer** — "periodic" checkpointing: given the linearization and a
  failure-free execution, checkpoint the task that completes the earliest after
  time :math:`x \\cdot W / N` for ``x = 1 .. N-1`` where ``W`` is the total
  weight.  This ignores the DAG structure on purpose (it is the classical
  divisible-load policy) and the paper shows it behaves poorly.

For the parameterised strategies (W, C, D, Per), the number of checkpoints
``N`` is chosen by an exhaustive (or subsampled) search over ``1 .. n-1``
using the Theorem-3 evaluator — see :mod:`repro.heuristics.search`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.dag import Workflow

__all__ = [
    "CHECKPOINT_STRATEGIES",
    "PARAMETERISED_STRATEGIES",
    "checkpoint_never",
    "checkpoint_always",
    "checkpoint_by_weight",
    "checkpoint_by_cost",
    "checkpoint_by_descendant_weight",
    "checkpoint_periodic",
    "get_selector",
]

#: All checkpoint strategy names, in the paper's notation.
CHECKPOINT_STRATEGIES = (
    "CkptNvr",
    "CkptAlws",
    "CkptW",
    "CkptC",
    "CkptD",
    "CkptPer",
)

#: Strategies that take the number of checkpoints ``N`` as a parameter and
#: therefore require the search of :mod:`repro.heuristics.search`.
PARAMETERISED_STRATEGIES = ("CkptW", "CkptC", "CkptD", "CkptPer")

#: Type of a parameterised selector: (workflow, order, N) -> checkpoint set.
Selector = Callable[[Workflow, Sequence[int], int], frozenset[int]]


def _validate_count(workflow: Workflow, count: int) -> int:
    if not isinstance(count, int) or isinstance(count, bool):
        raise TypeError("checkpoint count must be an int")
    if count < 0:
        raise ValueError("checkpoint count must be >= 0")
    return min(count, workflow.n_tasks)


def checkpoint_never(workflow: Workflow, order: Sequence[int] = (), count: int = 0) -> frozenset[int]:
    """``CkptNvr``: checkpoint nothing."""
    return frozenset()


def checkpoint_always(
    workflow: Workflow, order: Sequence[int] = (), count: int = 0
) -> frozenset[int]:
    """``CkptAlws``: checkpoint every task."""
    return frozenset(range(workflow.n_tasks))


def checkpoint_by_weight(
    workflow: Workflow, order: Sequence[int], count: int
) -> frozenset[int]:
    """``CkptW``: checkpoint the ``count`` tasks with the largest weights."""
    count = _validate_count(workflow, count)
    ranked = sorted(range(workflow.n_tasks), key=lambda i: (-workflow.task(i).weight, i))
    return frozenset(ranked[:count])


def checkpoint_by_cost(
    workflow: Workflow, order: Sequence[int], count: int
) -> frozenset[int]:
    """``CkptC``: checkpoint the ``count`` tasks with the smallest checkpoint costs."""
    count = _validate_count(workflow, count)
    ranked = sorted(
        range(workflow.n_tasks), key=lambda i: (workflow.task(i).checkpoint_cost, i)
    )
    return frozenset(ranked[:count])


def checkpoint_by_descendant_weight(
    workflow: Workflow, order: Sequence[int], count: int
) -> frozenset[int]:
    """``CkptD``: checkpoint the ``count`` tasks with the heaviest direct successors.

    The priority is :math:`d_i`, the sum of the weights of the task's direct
    successors ("checkpoint first the tasks whose successors are more likely to
    fail", i.e. whose downstream work is the largest).
    """
    count = _validate_count(workflow, count)
    ranked = sorted(range(workflow.n_tasks), key=lambda i: (-workflow.outweight(i), i))
    return frozenset(ranked[:count])


def checkpoint_periodic(
    workflow: Workflow, order: Sequence[int], count: int
) -> frozenset[int]:
    """``CkptPer``: checkpoint the first task completing after each period boundary.

    With ``W`` the total weight of the workflow and a failure-free execution of
    the given linearization, the task completing the earliest after
    :math:`x \\cdot W / count` is checkpointed, for ``x = 1 .. count-1`` (so at
    most ``count - 1`` checkpoints are produced, exactly like slicing a
    divisible application into ``count`` chunks).
    """
    count = _validate_count(workflow, count)
    order = tuple(order)
    if sorted(order) != list(range(workflow.n_tasks)):
        raise ValueError("order must be a permutation of all task indices")
    if count <= 1 or workflow.n_tasks == 0:
        return frozenset()
    total = workflow.total_weight
    if total == 0.0:
        return frozenset()
    period = total / count

    # Failure-free completion time of every task along the linearization
    # (checkpoint costs are not included: the boundaries slice the *work*).
    completion = []
    clock = 0.0
    for task_index in order:
        clock += workflow.task(task_index).weight
        completion.append(clock)

    selected: set[int] = set()
    boundary_index = 1
    for position, finish in enumerate(completion):
        if boundary_index >= count:
            break
        if finish >= boundary_index * period - 1e-12:
            selected.add(order[position])
            # Several boundaries may fall within a single long task; they all
            # collapse onto that task (it is only checkpointed once).
            while boundary_index < count and finish >= boundary_index * period - 1e-12:
                boundary_index += 1
    return frozenset(selected)


_SELECTORS: dict[str, Selector] = {
    "CkptNvr": checkpoint_never,
    "CkptAlws": checkpoint_always,
    "CkptW": checkpoint_by_weight,
    "CkptC": checkpoint_by_cost,
    "CkptD": checkpoint_by_descendant_weight,
    "CkptPer": checkpoint_periodic,
}


def get_selector(strategy: str) -> Selector:
    """Return the selector callable for a strategy name (paper notation)."""
    try:
        return _SELECTORS[strategy]
    except KeyError as exc:
        raise ValueError(
            f"unknown checkpointing strategy {strategy!r}; expected one of "
            f"{CHECKPOINT_STRATEGIES}"
        ) from exc
