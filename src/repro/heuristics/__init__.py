"""Scheduling heuristics for general DAGs (Section 5 of the paper)."""

from .checkpointing import (
    CHECKPOINT_STRATEGIES,
    PARAMETERISED_STRATEGIES,
    checkpoint_always,
    checkpoint_by_cost,
    checkpoint_by_descendant_weight,
    checkpoint_by_weight,
    checkpoint_never,
    checkpoint_periodic,
    get_selector,
)
from .linearization import LINEARIZATION_STRATEGIES, linearize, linearize_all
from .refinement import (
    RefinementResult,
    greedy_checkpoint_selection,
    local_search_checkpoints,
    refine_schedule,
)
from .registry import (
    HEURISTIC_NAMES,
    HeuristicResult,
    best_heuristic,
    heuristic_rng,
    parse_heuristic_name,
    solve_all_heuristics,
    solve_heuristic,
)
from .search import (
    SEARCH_MODES,
    CheckpointCountSearch,
    candidate_counts,
    search_checkpoint_count,
)

__all__ = [
    "CHECKPOINT_STRATEGIES",
    "CheckpointCountSearch",
    "HEURISTIC_NAMES",
    "HeuristicResult",
    "LINEARIZATION_STRATEGIES",
    "PARAMETERISED_STRATEGIES",
    "RefinementResult",
    "SEARCH_MODES",
    "best_heuristic",
    "candidate_counts",
    "checkpoint_always",
    "checkpoint_by_cost",
    "checkpoint_by_descendant_weight",
    "checkpoint_by_weight",
    "checkpoint_never",
    "checkpoint_periodic",
    "get_selector",
    "greedy_checkpoint_selection",
    "heuristic_rng",
    "linearize",
    "linearize_all",
    "local_search_checkpoints",
    "parse_heuristic_name",
    "refine_schedule",
    "search_checkpoint_count",
    "solve_all_heuristics",
    "solve_heuristic",
]
