"""Search over the number of checkpoints ``N`` (Section 5 of the paper).

The parameterised checkpoint strategies (``CkptW``, ``CkptC``, ``CkptD``,
``CkptPer``) fix a total number of checkpoints ``N``, select ``N`` tasks
according to their criterion, and rely on an exhaustive search over
``N = 1 .. n-1`` — each candidate being scored with the polynomial-time
expected-makespan evaluator of Theorem 3 — to pick the best value.

Because the exhaustive search costs ``n - 1`` evaluator calls, this module also
supports *subsampled* searches (an explicit list of candidate counts, or a
geometric grid) which the benchmark harness uses for the largest instances; the
ablation benchmark ``benchmarks/bench_nsearch_ablation.py`` quantifies the
accuracy loss.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..core.backend import BackendSpec
from ..core.dag import Workflow
from ..core.evaluator import MakespanEvaluation, evaluate_schedule
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..core.sweep import SweepState
from .checkpointing import Selector

__all__ = ["SEARCH_MODES", "CheckpointCountSearch", "candidate_counts", "search_checkpoint_count"]


@dataclass(frozen=True)
class CheckpointCountSearch:
    """Outcome of the search over the number of checkpoints.

    Attributes
    ----------
    best_schedule:
        Schedule achieving the lowest expected makespan among the candidates.
    best_evaluation:
        Its :class:`~repro.core.evaluator.MakespanEvaluation`.
    best_count:
        The ``N`` value that was requested from the selector for the winner
        (note the selector may return fewer checkpoints, e.g. ``CkptPer``).
    evaluated:
        Mapping ``N -> expected makespan`` for every candidate evaluated.
    """

    best_schedule: Schedule
    best_evaluation: MakespanEvaluation
    best_count: int
    evaluated: dict[int, float]


#: Valid checkpoint-count search modes (see :func:`candidate_counts`).
SEARCH_MODES: tuple[str, ...] = ("exhaustive", "geometric")


def candidate_counts(
    n_tasks: int,
    *,
    mode: str = "exhaustive",
    max_candidates: int = 30,
) -> tuple[int, ...]:
    """Candidate values of ``N`` for the checkpoint-count search.

    Parameters
    ----------
    n_tasks:
        Number of tasks in the workflow.
    mode:
        ``"exhaustive"`` — every value ``1 .. n`` (the paper searches
        ``1 .. n-1``; including ``n`` — i.e. the CkptAlws set — costs one more
        evaluation and guarantees the parameterised strategies never lose to
        the checkpoint-everything baseline);
        ``"geometric"`` — at most ``max_candidates`` values spread geometrically
        over ``1 .. n`` (used to keep large benchmark sweeps affordable).
    max_candidates:
        Budget for the ``"geometric"`` mode.
    """
    if n_tasks <= 1:
        return (0,) if n_tasks == 1 else ()
    upper = n_tasks
    if mode == "exhaustive":
        return tuple(range(1, upper + 1))
    if mode != "geometric":
        raise ValueError(
            f"unknown candidate mode {mode!r}; expected one of {SEARCH_MODES}"
        )
    if max_candidates < 2:
        raise ValueError(
            f"max_candidates must be >= 2 for geometric mode, got {max_candidates}"
        )
    if upper <= max_candidates:
        return tuple(range(1, upper + 1))
    values: set[int] = {1, upper}
    ratio = (upper) ** (1.0 / (max_candidates - 1))
    current = 1.0
    while len(values) < max_candidates:
        current *= ratio
        values.add(min(upper, max(1, round(current))))
        if current >= upper:
            break
    return tuple(sorted(values))


def search_checkpoint_count(
    workflow: Workflow,
    order: Sequence[int],
    platform: Platform,
    selector: Selector,
    *,
    counts: Iterable[int] | None = None,
    include_zero: bool = True,
    backend: str | BackendSpec | None = None,
    evaluator: "Callable[[frozenset[int]], MakespanEvaluation] | None" = None,
) -> CheckpointCountSearch:
    """Find the checkpoint count minimising the expected makespan.

    Parameters
    ----------
    workflow, order, platform:
        The instance: workflow, linearization, and failure model.
    selector:
        A parameterised checkpoint selector ``(workflow, order, N) -> set``.
    counts:
        Candidate values of ``N``; defaults to the exhaustive ``1 .. n-1``.
    include_zero:
        Also evaluate the empty checkpoint set (``N = 0``).  The paper's search
        runs over ``1 .. n-1`` only, but including 0 makes the heuristics
        degrade gracefully on failure-free platforms; it adds a single extra
        evaluation.
    backend:
        Backend name or :class:`~repro.core.backend.BackendSpec` for the
        :class:`~repro.core.sweep.SweepState` that scores all distinct
        candidate sets over the shared linearization in one incremental
        sweep (the selectors' top-``N`` sets are nested, so consecutive
        candidates differ by single checkpoint additions and only the
        invalidated suffix is recomputed).  A spec's ``evaluator`` field
        plays the same role as the ``evaluator`` argument below.
    evaluator:
        Optional replacement for the private sweep: a callable
        ``frozenset -> MakespanEvaluation`` scoring a checkpoint set over
        *this* instance and linearization.  The service layer passes one
        shared :class:`~repro.service.planner.SharedSweepScorer` here so
        concurrent searches over the same linearization ride a single
        :class:`~repro.core.sweep.SweepState` (sweep evaluations are
        order-independent, so sharing cannot change any value).  When the
        callable exposes an ``order`` attribute it must match this search's
        linearization.  Equivalent to passing
        ``BackendSpec(evaluator=...)`` as ``backend`` (the explicit
        argument wins when both are given).

    Returns
    -------
    CheckpointCountSearch
    """
    spec = BackendSpec.coerce(backend)
    if evaluator is None:
        evaluator = spec.evaluator
    backend = spec.backend
    order = tuple(order)
    if evaluator is not None:
        evaluator_order = getattr(evaluator, "order", None)
        if evaluator_order is not None and tuple(evaluator_order) != order:
            raise ValueError(
                "shared evaluator was built for a different linearization "
                "than this search's order"
            )
    if counts is None:
        counts = candidate_counts(workflow.n_tasks, mode="exhaustive")
    counts = [int(c) for c in counts]
    if include_zero and 0 not in counts:
        counts = [0] + counts

    # Materialize the candidate sets first (deduplicated — e.g. CkptPer often
    # returns the same set for several N), then price every distinct set
    # through one incremental sweep over the shared linearization: in count
    # order, a nested selector's consecutive sets differ by one added
    # checkpoint, so each evaluation reuses everything below the insertion
    # point.  Only the makespans are needed to rank candidates; dropping the
    # per-position vectors keeps the sweep at O(n) retained floats.
    selected_sets: list[frozenset[int]] = []
    distinct: dict[frozenset[int], int] = {}
    for count in counts:
        if count < 0 or count > workflow.n_tasks:
            raise ValueError(f"invalid checkpoint count {count}")
        selected = frozenset() if count == 0 else frozenset(selector(workflow, order, count))
        selected_sets.append(selected)
        if selected not in distinct:
            distinct[selected] = len(distinct)
    if evaluator is None:
        sweep = SweepState(workflow, order, platform, backend=backend)
        evaluations = [
            sweep.evaluate(selected, keep_task_times=False) for selected in distinct
        ]
    else:
        evaluations = [evaluator(selected) for selected in distinct]

    best_selected: frozenset[int] | None = None
    best_count = -1
    best_value = math.inf
    evaluated: dict[int, float] = {}
    first_for_set: set[frozenset[int]] = set()

    for count, selected in zip(counts, selected_sets):
        value = evaluations[distinct[selected]].expected_makespan
        evaluated[count] = value
        if selected in first_for_set:
            continue  # duplicate set: keep the first count as the winner's N
        first_for_set.add(selected)
        if value < best_value:
            best_value = value
            best_selected = selected
            best_count = count

    if best_selected is None:
        raise ValueError("no candidate checkpoint count was evaluated")
    best_schedule = Schedule(workflow, order, best_selected)
    # One extra evaluation restores the winner's full per-position vector
    # (deterministic: it reproduces the batch value exactly).
    best_eval: MakespanEvaluation = evaluate_schedule(
        best_schedule, platform, backend=backend
    )
    return CheckpointCountSearch(
        best_schedule=best_schedule,
        best_evaluation=best_eval,
        best_count=best_count,
        evaluated=evaluated,
    )
