"""Expected-makespan evaluation of a schedule (Theorem 3 of the paper).

This is the paper's main theoretical contribution: a polynomial-time algorithm
that computes the *exact* expected makespan of a given schedule (linearization
plus checkpoint set) of an arbitrary DAG under exponentially distributed
failures with constant downtime.

Notation (Section 4.2)
----------------------
* :math:`X_i` — time elapsed between the completions of the ``(i-1)``-th and
  ``i``-th scheduled tasks; the expected makespan is
  :math:`E[\\sum_i X_i] = \\sum_i E[X_i]`.
* :math:`Z^i_k` — event "the last failure before the ``i``-th task completes
  its predecessors' interval happened during :math:`X_k`" (``k = 0`` means no
  failure at all since the execution started).  The :math:`Z^i_k`,
  ``0 <= k <= i-1`` partition the probability space, hence
  :math:`E[X_i] = \\sum_k P(Z^i_k) E[X_i | Z^i_k]`.
* :math:`W^i_k`, :math:`R^i_k` — re-execution work and recovery cost needed by
  the ``i``-th task when :math:`Z^i_k` holds (see
  :mod:`repro.core.lost_work`).

The three properties proved in the paper and implemented here are:

* **[A]** for ``0 <= k < i - 1``:
  :math:`P(Z^i_k) = e^{-\\lambda \\sum_{j=k+1}^{i-1}(W^j_k + R^j_k + w_j +
  \\delta_j c_j)} \\cdot P(Z^{k+1}_k)`;
* **[B]** :math:`P(Z^i_{i-1}) = 1 - \\sum_{k=0}^{i-2} P(Z^i_k)`;
* **[C]** :math:`E[X_i | Z^i_k] = E[t(W^i_k + R^i_k + w_i;\\ \\delta_i c_i;\\
  W^i_i + R^i_i - (W^i_k + R^i_k))]` using Equation (1).

Complexity: computing the lost-work arrays costs :math:`O(n |E|)` (see
:mod:`repro.core.lost_work`); the probability recursion below is :math:`O(n^2)`
thanks to running prefix sums, so a full evaluation is far cheaper than the
paper's conservative :math:`O(n^4)` bound while producing the same values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .backend import BACKEND_REGISTRY, BackendSpec
from .expectation import OVERFLOW_EXPONENT, expected_execution_time
from .lost_work import LostWork, compute_lost_work
from .platform import Platform
from .schedule import Schedule

__all__ = ["MakespanEvaluation", "evaluate_schedule", "expected_makespan"]


@dataclass(frozen=True)
class MakespanEvaluation:
    """Result of evaluating a schedule on a platform.

    Attributes
    ----------
    expected_makespan:
        :math:`E[\\sum_i X_i]`, the expected completion time of the whole
        workflow (seconds).
    expected_task_times:
        Per-position expectations :math:`E[X_i]` (1-based position ``i`` maps to
        ``expected_task_times[i - 1]``).
    failure_free_makespan:
        Makespan of the same schedule when no failure occurs (all work plus all
        checkpoints).
    failure_free_work:
        Total task weight :math:`\\sum_i w_i` (the paper's :math:`T_{inf}`,
        i.e. the makespan of a failure-free, checkpoint-free execution).
    event_probabilities:
        Optional list of tuples: ``event_probabilities[i - 1][k]`` is
        :math:`P(Z^i_k)`.  Only populated when ``keep_probabilities=True``.
    """

    expected_makespan: float
    expected_task_times: tuple[float, ...]
    failure_free_makespan: float
    failure_free_work: float
    event_probabilities: tuple[tuple[float, ...], ...] | None = None

    @property
    def overhead_ratio(self) -> float:
        """The paper's evaluation metric ``T / T_inf``.

        Ratio of the expected makespan over the failure-free, checkpoint-free
        makespan (lower is better, 1.0 is the unreachable ideal).
        """
        if self.failure_free_work == 0.0:
            return 1.0 if self.expected_makespan == 0.0 else math.inf
        return self.expected_makespan / self.failure_free_work

    @property
    def slowdown(self) -> float:
        """Expected makespan over the failure-free makespan *with* checkpoints."""
        if self.failure_free_makespan == 0.0:
            return 1.0 if self.expected_makespan == 0.0 else math.inf
        return self.expected_makespan / self.failure_free_makespan


def evaluate_schedule(
    schedule: Schedule,
    platform: Platform,
    *,
    lost_work: LostWork | None = None,
    keep_probabilities: bool = False,
    backend: str | BackendSpec | None = None,
) -> MakespanEvaluation:
    """Compute the expected makespan of ``schedule`` on ``platform``.

    Parameters
    ----------
    schedule:
        The schedule (linearization + checkpoint set) to evaluate.
    platform:
        The failure-prone platform (failure rate :math:`\\lambda`, downtime ``D``).
    lost_work:
        Pre-computed :class:`~repro.core.lost_work.LostWork` arrays for this
        schedule; useful when evaluating many platforms for one schedule.
    keep_probabilities:
        When true, the full :math:`P(Z^i_k)` table is attached to the result
        (quadratic memory).
    backend:
        A registered backend name (``"auto"`` / ``"python"`` / ``"numpy"``
        / ``"native"`` / ...), a :class:`~repro.core.backend.BackendSpec`,
        or ``None`` for ``"auto"`` — see
        :meth:`repro.core.backend.BackendRegistry.resolve`.  All backends
        compute the same quantity; the choice is a pure performance knob.

    Returns
    -------
    MakespanEvaluation
    """
    workflow = schedule.workflow
    order = schedule.order
    n = len(order)
    lam = platform.failure_rate
    downtime = platform.downtime

    # The trivial cases below are shared bookkeeping, so all backends are
    # bit-for-bit identical there; the recursion is where they diverge
    # (within floating-point noise — the property tests pin the bound).
    if n > 0 and lam != 0.0:
        resolved = BACKEND_REGISTRY.resolve(backend, n_tasks=n)
        if resolved.name != "python":
            return resolved.evaluate(
                schedule,
                platform,
                lost_work=lost_work,
                keep_probabilities=keep_probabilities,
            )

    weights = [workflow.task(t).weight for t in order]
    ckpt_costs = [
        workflow.task(t).checkpoint_cost if schedule.is_checkpointed(t) else 0.0
        for t in order
    ]
    failure_free_work = workflow.total_weight
    failure_free_makespan = schedule.failure_free_makespan

    if n == 0:
        return MakespanEvaluation(
            expected_makespan=0.0,
            expected_task_times=(),
            failure_free_makespan=0.0,
            failure_free_work=0.0,
            event_probabilities=() if keep_probabilities else None,
        )

    if lam == 0.0:
        per_task = tuple(w + c for w, c in zip(weights, ckpt_costs))
        probabilities = None
        if keep_probabilities:
            probabilities = tuple(
                tuple(1.0 if k == 0 else 0.0 for k in range(i)) for i in range(1, n + 1)
            )
        return MakespanEvaluation(
            expected_makespan=sum(per_task),
            expected_task_times=per_task,
            failure_free_makespan=failure_free_makespan,
            failure_free_work=failure_free_work,
            event_probabilities=probabilities,
        )

    lw = lost_work if lost_work is not None else compute_lost_work(schedule)
    work = lw.work
    recovery = lw.recovery

    # fault_prob[k] = P(F(X_k)) = P(Z^{k+1}_k): probability that at least one
    # failure strikes during X_k.  Filled in as the main loop advances
    # (property [B] applied to i = k + 1).
    fault_prob = [0.0] * (n + 1)

    # running_sum[k] = sum_{j=k+1}^{i-1} (W^j_k + R^j_k + w_j + delta_j c_j),
    # maintained incrementally as i grows (property [A]'s exponent).
    running_sum = [0.0] * (n + 1)

    expected_times: list[float] = []
    all_probabilities: list[tuple[float, ...]] = []
    total = 0.0

    for i in range(1, n + 1):
        w_i = weights[i - 1]
        c_i = ckpt_costs[i - 1]
        recovery_full = work[i][i] + recovery[i][i]

        probs: list[float] = []
        # Events Z^i_k for k = 0 .. i-2 via property [A].
        for k in range(0, i - 1):
            base = 1.0 if k == 0 else fault_prob[k]
            if base == 0.0:
                probs.append(0.0)
                continue
            exponent = lam * running_sum[k]
            # Saturate at the shared guard so both backends zero out the same
            # (astronomically unlikely) events.
            probs.append(
                math.exp(-exponent) * base if exponent <= OVERFLOW_EXPONENT else 0.0
            )
        # Property [B]: the last event takes the remaining probability mass.
        remaining = 1.0 - sum(probs)
        if remaining < 0.0:
            remaining = 0.0
        elif remaining > 1.0:
            remaining = 1.0
        probs.append(remaining)
        if i >= 2:
            fault_prob[i - 1] = remaining

        expected_xi = 0.0
        for k in range(0, i):
            p = probs[k]
            if p == 0.0:
                continue
            redo = work[k][i] + recovery[k][i]
            rec = recovery_full - redo
            if rec < 0.0:
                # Guard against floating point noise; the paper guarantees
                # T↓k_i ⊆ T↓i_i so the difference is mathematically >= 0.
                rec = 0.0
            expected_xi += p * expected_execution_time(
                redo + w_i, c_i, rec, lam, downtime
            )
        expected_times.append(expected_xi)
        total += expected_xi
        if keep_probabilities:
            all_probabilities.append(tuple(probs))

        # Advance the running prefix sums so that, at the next iteration,
        # running_sum[k] covers j = k+1 .. i.
        for k in range(0, i):
            running_sum[k] += work[k][i] + recovery[k][i] + w_i + c_i

    return MakespanEvaluation(
        expected_makespan=total,
        expected_task_times=tuple(expected_times),
        failure_free_makespan=failure_free_makespan,
        failure_free_work=failure_free_work,
        event_probabilities=tuple(all_probabilities) if keep_probabilities else None,
    )


def expected_makespan(schedule: Schedule, platform: Platform) -> float:
    """Convenience wrapper returning only the expected makespan (seconds)."""
    return evaluate_schedule(schedule, platform).expected_makespan
