"""Lost-work sets :math:`T^{\\downarrow k}_i` and the :math:`W^i_k / R^i_k` arrays.

This module implements Algorithm 1 (``FindWikRik``) from Section 4.2 of the
paper.  Given a schedule (a linearization of the DAG plus the set of
checkpointed tasks), it computes, for every pair of positions ``k <= i``:

* ``W[k][i]`` — total weight of the *non-checkpointed* tasks whose output was
  lost by a failure during :math:`X_k` (the interval that ends with the
  completion of the ``k``-th task) and is still needed to execute the ``i``-th
  task, i.e. those tasks must be re-executed;
* ``R[k][i]`` — total recovery cost of the *checkpointed* tasks in the same
  situation, i.e. those tasks must be recovered from their checkpoint.

A task ``T_j`` (position ``j < k``) belongs to :math:`T^{\\downarrow k}_i` when

1. it is a direct predecessor of the ``i``-th task, or a direct predecessor of
   a non-checkpointed member of :math:`T^{\\downarrow k}_i` (its output is
   needed, transitively, because a non-checkpointed intermediate must be
   re-executed), and
2. it does not belong to :math:`T^{\\downarrow k}_l` for any ``k <= l < i``
   (otherwise it was already recovered / re-executed while processing an
   earlier task after the failure, so its output is back in memory).

Positions are **1-based** in this module to match the paper's indices
(:math:`T_1 \\dots T_n`); the arrays have shape ``(n + 1) x (n + 1)`` and the
row ``k = 0`` is identically zero (no failure has occurred yet, nothing is
lost).

Two implementations are provided:

* :func:`compute_lost_work` — the production implementation, which keeps the
  exact visit semantics of Algorithm 1 but replaces the ``tab_k`` matrix (and
  its O(n) clearing loop) by a per-``k`` "already regenerated" set, making the
  whole computation ``O(n \\cdot |E|)`` for sparse DAGs instead of
  ``O(n^4)``;
* the reference transcription of Algorithm 1 used by the tests lives in
  ``tests/test_lost_work_reference.py`` and is checked to produce identical
  arrays on randomized workloads.

The membership sets :math:`T^{\\downarrow k}_i` are quadratic memory that only
tests and trace tooling read, so they are **opt-in**: pass
``keep_members=True`` to :func:`compute_lost_work` to populate
:attr:`LostWork.members`.  The NumPy evaluation backend reads the same data as
contiguous float64 matrices via :attr:`LostWork.work_array` /
:attr:`LostWork.recovery_array` (converted lazily and cached).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from .dag import Workflow
from .schedule import Schedule

__all__ = ["LostWork", "compute_lost_work", "lost_and_needed_tasks"]


@dataclass(frozen=True)
class LostWork:
    """The :math:`W^i_k` and :math:`R^i_k` arrays of a schedule.

    Attributes
    ----------
    work:
        ``work[k][i]`` is :math:`W^i_k` (1-based positions, row 0 all zeros).
    recovery:
        ``recovery[k][i]`` is :math:`R^i_k`.
    members:
        ``members[k][i]`` is the frozenset of *positions* ``j`` in
        :math:`T^{\\downarrow k}_i` (useful for tests, traces and debugging).
        ``None`` unless the arrays were computed with ``keep_members=True`` —
        the sets cost quadratic memory and nothing on the production paths
        reads them.
    """

    work: tuple[tuple[float, ...], ...]
    recovery: tuple[tuple[float, ...], ...]
    members: tuple[tuple[frozenset[int], ...], ...] | None = None

    @property
    def n_tasks(self) -> int:
        """Number of scheduled tasks."""
        return len(self.work) - 1

    def w(self, k: int, i: int) -> float:
        """:math:`W^i_k` using the paper's (k, i) order, 1-based positions."""
        return self.work[k][i]

    def r(self, k: int, i: int) -> float:
        """:math:`R^i_k` using the paper's (k, i) order, 1-based positions."""
        return self.recovery[k][i]

    def lost_set(self, k: int, i: int) -> frozenset[int]:
        """Positions of the members of :math:`T^{\\downarrow k}_i`."""
        if self.members is None:
            raise ValueError(
                "membership sets were not kept; use "
                "compute_lost_work(schedule, keep_members=True)"
            )
        return self.members[k][i]

    # ------------------------------------------------------------------
    # NumPy views (lazy, cached on the instance)
    # ------------------------------------------------------------------
    @property
    def work_array(self) -> Any:
        """``work`` as a contiguous ``(n+1, n+1)`` float64 NumPy matrix."""
        return self._arrays()[0]

    @property
    def recovery_array(self) -> Any:
        """``recovery`` as a contiguous ``(n+1, n+1)`` float64 NumPy matrix."""
        return self._arrays()[1]

    def _arrays(self) -> tuple[Any, Any]:
        cache = self.__dict__.get("_array_cache")
        if cache is None:
            import numpy as np

            cache = (
                np.asarray(self.work, dtype=np.float64),
                np.asarray(self.recovery, dtype=np.float64),
            )
            object.__setattr__(self, "_array_cache", cache)
        return cache


def _position_tables(
    workflow: Workflow, order: Sequence[int]
) -> tuple[dict[int, int], list[float], list[float], list[tuple[int, ...]]]:
    """Per-position weight / recovery-cost / predecessor tables (1-based).

    These depend only on the workflow and linearization — not on the
    checkpoint set — so batch callers (``repro.core.evaluator_np``) compute
    them once and reuse them across many checkpoint sets.
    """
    n = len(order)
    position = {task: pos + 1 for pos, task in enumerate(order)}
    weight = [0.0] * (n + 1)
    recovery_cost = [0.0] * (n + 1)
    predecessors: list[tuple[int, ...]] = [()] * (n + 1)
    # Indexed reads instead of the task()/predecessors() accessors: callers
    # hand in validated orders (Schedule / SweepState check them first), and
    # the per-index validation is measurable at the rate batch evaluation
    # constructs these tables.
    tasks = workflow.tasks
    preds = workflow._pred
    for pos_zero, task_index in enumerate(order):
        pos = pos_zero + 1
        task = tasks[task_index]
        weight[pos] = task.weight
        recovery_cost[pos] = task.recovery_cost
        predecessors[pos] = tuple(position[p] for p in preds[task_index])
    return position, weight, recovery_cost, predecessors


def _fill_rows(
    n: int,
    weight: Sequence[float],
    recovery_cost: Sequence[float],
    checkpointed: Sequence[bool],
    predecessors: Sequence[tuple[int, ...]],
    work_rows: Any,
    recovery_rows: Any,
    member_rows: Any = None,
) -> None:
    """Algorithm-1 fill of ``work_rows[k][i]`` / ``recovery_rows[k][i]``.

    All inputs are 1-based position tables; the row containers only need to
    support ``rows[k][i] = value`` (lists of lists and NumPy matrices both
    do).  ``member_rows`` is filled with frozensets when provided.
    """
    for k in range(1, n + 1):
        # ``regenerated[j]`` is True once position j (< k) has been placed in
        # some T↓k_l with l < current i: its output is back in memory and it
        # must not be charged again (this replaces the 0-markers of Algorithm 1).
        regenerated = [False] * (n + 1)
        for i in range(k, n + 1):
            lost_w = 0.0
            lost_r = 0.0
            members: list[int] | None = [] if member_rows is not None else None
            # Depth-first traversal from T_i through predecessors, stopping at
            # positions >= k (output recomputed after the failure, still in
            # memory), at already-regenerated positions, and below checkpointed
            # tasks (they are recovered, not re-executed, so their own inputs
            # are not needed).
            stack = list(predecessors[i])
            while stack:
                j = stack.pop()
                if j >= k:
                    continue  # executed after the failure: output in memory
                if regenerated[j]:
                    continue  # already recovered / re-executed for an earlier task
                regenerated[j] = True
                if members is not None:
                    members.append(j)
                if checkpointed[j]:
                    lost_r += recovery_cost[j]
                else:
                    lost_w += weight[j]
                    stack.extend(predecessors[j])
            work_rows[k][i] = lost_w
            recovery_rows[k][i] = lost_r
            if member_rows is not None:
                member_rows[k][i] = frozenset(members)


def compute_lost_work(schedule: Schedule, *, keep_members: bool = False) -> LostWork:
    """Compute all :math:`W^i_k`, :math:`R^i_k` values for a schedule.

    Parameters
    ----------
    schedule:
        The schedule (linearization + checkpoint set) to analyse.
    keep_members:
        Also record the membership sets :math:`T^{\\downarrow k}_i`
        (quadratic memory; read only by tests and trace tooling).

    Returns
    -------
    LostWork
        Arrays indexed by 1-based positions, ``work[k][i]`` / ``recovery[k][i]``
        defined for ``1 <= k <= i <= n`` (and zero elsewhere).
    """
    workflow = schedule.workflow
    order = schedule.order
    n = len(order)

    _, weight, recovery_cost, predecessors = _position_tables(workflow, order)
    checkpointed = [False] * (n + 1)
    for pos_zero, task_index in enumerate(order):
        checkpointed[pos_zero + 1] = schedule.is_checkpointed(task_index)

    work_rows: list[list[float]] = [[0.0] * (n + 1) for _ in range(n + 1)]
    recovery_rows: list[list[float]] = [[0.0] * (n + 1) for _ in range(n + 1)]
    member_rows: list[list[frozenset[int]]] | None = None
    if keep_members:
        member_rows = [[frozenset()] * (n + 1) for _ in range(n + 1)]

    _fill_rows(
        n, weight, recovery_cost, checkpointed, predecessors,
        work_rows, recovery_rows, member_rows,
    )

    return LostWork(
        work=tuple(tuple(row) for row in work_rows),
        recovery=tuple(tuple(row) for row in recovery_rows),
        members=(
            tuple(tuple(row) for row in member_rows) if member_rows is not None else None
        ),
    )


def lost_and_needed_tasks(
    schedule: Schedule,
    target_position: int,
    in_memory_positions: frozenset[int] | set[int],
) -> tuple[list[int], float, float]:
    """Dynamic variant of the T↓ closure used by the Monte-Carlo engine.

    Given the set of positions whose output currently sits in memory, return
    the positions that must be recovered or re-executed before the task at
    ``target_position`` (1-based) can run, together with the total re-execution
    weight and total recovery cost.  The returned list is in topological order
    (ancestors first) so the simulator can execute it as written.

    Unlike :func:`compute_lost_work`, this helper makes no assumption about
    *when* the last failure happened: it just inspects the memory state, which
    is what a runtime system would do.
    """
    workflow = schedule.workflow
    order = schedule.order
    n = len(order)
    if not 1 <= target_position <= n:
        raise ValueError(f"target_position must be within 1..{n}")
    position = {task: pos + 1 for pos, task in enumerate(order)}

    def preds_of(pos: int) -> tuple[int, ...]:
        return tuple(position[p] for p in workflow.predecessors(order[pos - 1]))

    # Iterative reachability: walk up from the target through predecessors whose
    # output is not in memory; stop below checkpointed tasks (they are recovered
    # from disk, so their own inputs are not needed).
    found: set[int] = set()
    stack = [j for j in preds_of(target_position) if j not in in_memory_positions]
    while stack:
        j = stack.pop()
        if j in found or j in in_memory_positions:
            continue
        found.add(j)
        if not schedule.is_checkpointed(order[j - 1]):
            stack.extend(
                p for p in preds_of(j) if p not in in_memory_positions and p not in found
            )

    # Positions form a valid topological order of the linearized DAG, so sorting
    # by position yields an executable recovery plan (ancestors first).
    needed = sorted(found)
    total_work = 0.0
    total_recovery = 0.0
    for j in needed:
        task_index = order[j - 1]
        task = workflow.task(task_index)
        if schedule.is_checkpointed(task_index):
            total_recovery += task.recovery_cost
        else:
            total_work += task.weight
    return needed, total_work, total_recovery
