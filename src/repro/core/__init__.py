"""Core data model and the expected-makespan evaluator.

This subpackage contains the paper's framework (Section 3) and main theoretical
result (Section 4.2): tasks, workflows, platforms, schedules, the closed-form
expectation of Equation (1), the lost-work arrays of Algorithm 1, and the
polynomial-time expected-makespan evaluator of Theorem 3.
"""

from .backend import (
    BACKEND_REGISTRY,
    EVAL_BACKENDS,
    Backend,
    BackendRegistry,
    BackendSpec,
    numpy_available,
    resolve_backend,
)
from .dag import CycleError, Workflow, WorkflowStructure
from .evaluator import MakespanEvaluation, evaluate_schedule, expected_makespan
from .evaluator_np import batch_evaluate
from .expectation import (
    expected_execution_time,
    expected_number_of_failures,
    expected_time_lost,
    success_probability,
)
from .lost_work import LostWork, compute_lost_work, lost_and_needed_tasks
from .platform import Platform, PlatformSpec
from .schedule import Schedule
from .sweep import SweepState, SweepStats
from .task import Task

__all__ = [
    "BACKEND_REGISTRY",
    "Backend",
    "BackendRegistry",
    "BackendSpec",
    "CycleError",
    "EVAL_BACKENDS",
    "LostWork",
    "MakespanEvaluation",
    "Platform",
    "PlatformSpec",
    "Schedule",
    "SweepState",
    "SweepStats",
    "Task",
    "Workflow",
    "WorkflowStructure",
    "batch_evaluate",
    "compute_lost_work",
    "evaluate_schedule",
    "expected_execution_time",
    "expected_makespan",
    "expected_number_of_failures",
    "expected_time_lost",
    "lost_and_needed_tasks",
    "numpy_available",
    "resolve_backend",
    "success_probability",
]
