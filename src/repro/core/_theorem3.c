/* Native Theorem-3 / Algorithm-1 kernels for the "native" evaluation backend.
 *
 * Compiled on first use by repro.core.evaluator_native (cc -O3 -shared) and
 * loaded through ctypes; no Python.h dependency, so any C toolchain works.
 *
 * Two entry points mirror the two phases of the incremental sweep engine
 * (repro.core.sweep.SweepState):
 *
 *   repro_fill_rows       - Algorithm-1 lost-work fill of a set of logical
 *                           rows, from the same per-position closure /
 *                           frontier bitmask words the numpy fill uses.
 *   repro_theorem3_kernel - the sequential Theorem-3 recursion (properties
 *                           [A]/[B]/[C] + Equation (1)), resumable from a
 *                           stored running-sum history exactly like the
 *                           numpy kernel.
 *
 * Determinism contract: both functions are pure functions of their inputs
 * with a fixed operation order (per-row ascending-bit charge sums, per-
 * position sequential reductions), so recomputing any suffix from the stored
 * history reproduces a from-scratch run bit for bit - the property the
 * sweep==one-shot tests pin.  Parallel row fills write disjoint outputs, so
 * thread count and scheduling cannot change any value.
 *
 * Overflow handling matches the shared canon: exponents are saturated at
 * OVERFLOW_EXPONENT (exp/expm1 arguments clipped to 700), conditional
 * expectations whose exponent guard trips become +inf, and zero-probability
 * events are skipped in the dot product so a saturated value can never turn
 * into 0 * inf = NaN.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

#ifdef _OPENMP
#include <omp.h>
#endif

#define OVERFLOW_EXPONENT 700.0
#define SMALL_EXPOSURE 1e-12

/* Bumped whenever an exported signature changes; the Python loader refuses
 * to use a cached shared object with a different version. */
int64_t repro_abi_version(void) { return 1; }

/* ------------------------------------------------------------------ */
/* Fast exp / expm1                                                    */
/* ------------------------------------------------------------------ */
/* Branch-free exp for arguments in [-OVERFLOW_EXPONENT, OVERFLOW_EXPONENT]
 * (callers clip first): 2^k * P(r) with |r| <= ln2/2 and a degree-13
 * Taylor polynomial.  Max observed relative error ~2e-16 over the domain -
 * far inside the 1e-9 equivalence bound.  The nearest integer k is
 * extracted with the shift-by-1.5*2^52 trick (the rounded value sits in
 * the low mantissa bits) rather than floor(): this keeps the body free of
 * libm calls and double->int conversions, which is what lets gcc vectorize
 * whole loops of calls (floor() alone defeats the loop vectorizer here). */
static inline double fast_exp(double x) {
    const double LOG2E = 1.4426950408889634074;
    const double LN2_HI = 6.93147180369123816490e-01;
    const double LN2_LO = 1.90821492927058770002e-10;
    const double MAGIC = 6755399441055744.0; /* 1.5 * 2^52 */
    double t = x * LOG2E + MAGIC;
    double k = t - MAGIC;
    double r = (x - k * LN2_HI) - k * LN2_LO;
    double p = 1.0 / 6227020800.0;
    p = p * r + 1.0 / 479001600.0;
    p = p * r + 1.0 / 39916800.0;
    p = p * r + 1.0 / 3628800.0;
    p = p * r + 1.0 / 362880.0;
    p = p * r + 1.0 / 40320.0;
    p = p * r + 1.0 / 5040.0;
    p = p * r + 1.0 / 720.0;
    p = p * r + 1.0 / 120.0;
    p = p * r + 1.0 / 24.0;
    p = p * r + 1.0 / 6.0;
    p = p * r + 0.5;
    p = p * r + 1.0;
    p = p * r + 1.0;
    /* t's low mantissa bits hold round(x * LOG2E) + 2^51; rebase to the
     * IEEE exponent field.  Arguments stay in [-1011, 1011], so the biased
     * exponent (k + 1023) never under- or overflows. */
    union { uint64_t u; double d; } tb, scale;
    tb.d = t;
    scale.u = ((tb.u & 0xFFFFFFFFFFFFFULL) - (1ULL << 51) + 1023) << 52;
    return p * scale.d;
}

/* expm1 for x in [0, OVERFLOW_EXPONENT].  Small arguments use the Taylor
 * series of e^x - 1 directly (no cancellation); past 0.5 the subtraction
 * loses at most one bit, so exp(x) - 1 is already fully accurate.  Both
 * sides are evaluated and blended with a select (each is finite over the
 * whole domain) so loops of calls stay branch-free and vectorize. */
static inline double fast_expm1(double x) {
    double big = fast_exp(x) - 1.0;
    double p = 1.0 / 87178291200.0;
    p = p * x + 1.0 / 6227020800.0;
    p = p * x + 1.0 / 479001600.0;
    p = p * x + 1.0 / 39916800.0;
    p = p * x + 1.0 / 3628800.0;
    p = p * x + 1.0 / 362880.0;
    p = p * x + 1.0 / 40320.0;
    p = p * x + 1.0 / 5040.0;
    p = p * x + 1.0 / 720.0;
    p = p * x + 1.0 / 120.0;
    p = p * x + 1.0 / 24.0;
    p = p * x + 1.0 / 6.0;
    p = p * x + 0.5;
    p = p * x + 1.0;
    return (x > 0.5) ? big : p * x;
}

/* ------------------------------------------------------------------ */
/* Algorithm-1 lost-work row fill                                      */
/* ------------------------------------------------------------------ */
/* One logical row k: walk the candidates in position order, accumulate the
 * regenerated set, and price each candidate's freshly visited positions by
 * an ascending-bit sum over the per-position charge table.  Nonzero values
 * are written into column k of loss_t and compacted into (out_cols,
 * out_vals) for the caller's row-content bookkeeping.  Returns the number
 * of entries written. */
static int64_t fill_one_row(
    int64_t k,
    int64_t words,
    const uint64_t *fwords,
    const uint64_t *cwords,
    const int64_t *cand_ptr,
    const int64_t *cand_idx,
    const int64_t *pred_ptr,
    const int64_t *pred_idx,
    const double *charges,
    double *loss_t,
    int64_t n1,
    int64_t *out_cols,
    double *out_vals,
    uint64_t *regen,   /* scratch, words entries */
    uint64_t *front)   /* scratch, words entries */
{
    memset(regen, 0, (size_t)words * sizeof(uint64_t));
    int64_t count = 0;
    for (int64_t t = cand_ptr[k]; t < cand_ptr[k + 1]; t++) {
        int64_t i = cand_idx[t];
        const uint64_t *frontier;
        int64_t pe = pred_ptr[i + 1];
        if (pred_idx[pe - 1] < k) {
            /* Every predecessor sits below k: the precomputed full
             * frontier applies verbatim. */
            frontier = fwords + (size_t)i * (size_t)words;
        } else {
            /* Predecessor list straddles k: the traversal only descends
             * through predecessors placed below k, so OR exactly their
             * closures (the truncated frontier). */
            memset(front, 0, (size_t)words * sizeof(uint64_t));
            for (int64_t q = pred_ptr[i]; q < pe; q++) {
                int64_t p = pred_idx[q];
                if (p >= k)
                    break;
                const uint64_t *cw = cwords + (size_t)p * (size_t)words;
                for (int64_t w = 0; w < words; w++)
                    front[w] |= cw[w];
            }
            frontier = front;
        }
        /* visited = frontier & ~regenerated; charge it and fold it in. */
        double value = 0.0;
        int64_t any = 0;
        for (int64_t w = 0; w < words; w++) {
            uint64_t visited = frontier[w] & ~regen[w];
            if (!visited)
                continue;
            any = 1;
            regen[w] |= visited;
            const double *charge_base = charges + (w << 6);
            do {
                int b = __builtin_ctzll(visited);
                value += charge_base[b];
                visited &= visited - 1;
            } while (visited);
        }
        if (any && value != 0.0) {
            loss_t[(size_t)i * (size_t)n1 + (size_t)k] = value;
            out_cols[count] = i;
            out_vals[count] = value;
            count++;
        }
    }
    return count;
}

/* Fill every row in `rows`.  Outputs land in per-row slices of out_cols /
 * out_vals starting at out_off[r]; out_counts[r] receives the number of
 * entries actually written.  Rows are independent, so the OpenMP split (when
 * compiled in and threads > 1) cannot change any value. */
void repro_fill_rows(
    int64_t n_rows,
    const int64_t *rows,
    int64_t words,
    const uint64_t *fwords,
    const uint64_t *cwords,
    const int64_t *cand_ptr,
    const int64_t *cand_idx,
    const int64_t *pred_ptr,
    const int64_t *pred_idx,
    const double *charges,
    double *loss_t,
    int64_t n1,
    int64_t *out_cols,
    double *out_vals,
    const int64_t *out_off,
    int64_t *out_counts,
    int64_t threads)
{
#ifdef _OPENMP
    if (threads > 1) {
        #pragma omp parallel num_threads((int)threads)
        {
            uint64_t *scratch = malloc((size_t)(2 * words) * sizeof(uint64_t));
            #pragma omp for schedule(dynamic, 16)
            for (int64_t r = 0; r < n_rows; r++) {
                out_counts[r] = fill_one_row(
                    rows[r], words, fwords, cwords, cand_ptr, cand_idx,
                    pred_ptr, pred_idx, charges, loss_t, n1,
                    out_cols + out_off[r], out_vals + out_off[r],
                    scratch, scratch + words);
            }
            free(scratch);
        }
        return;
    }
#else
    (void)threads;
#endif
    uint64_t *scratch = malloc((size_t)(2 * words) * sizeof(uint64_t));
    for (int64_t r = 0; r < n_rows; r++) {
        out_counts[r] = fill_one_row(
            rows[r], words, fwords, cwords, cand_ptr, cand_idx,
            pred_ptr, pred_idx, charges, loss_t, n1,
            out_cols + out_off[r], out_vals + out_off[r],
            scratch, scratch + words);
    }
    free(scratch);
}

/* ------------------------------------------------------------------ */
/* Theorem-3 recursion (resumable)                                     */
/* ------------------------------------------------------------------ */
/* Positions start..n are recomputed; everything below `start` is read from
 * the running-sum history / base / expected_times state of the previous run
 * (a full run is simply start = 1 over a zeroed history row 0).  Unlike the
 * numpy kernel there is no saturated-regime switch: zero-probability events
 * are always skipped in the dot product, which is bit-identical to adding
 * their +0.0 contribution in the unsaturated case and exactly the masked
 * form in the saturated one - so a stored prefix is *always* resumable. */
void repro_theorem3_kernel(
    int64_t n,
    int64_t start,
    const double *restrict loss_t, /* (n+1) x n1, loss_t[i*n1 + k] = W^i_k + R^i_k */
    int64_t n1,
    const double *restrict weights,    /* (n,) position order */
    const double *restrict ckpt_costs, /* (n,) zero where not checkpointed */
    double lam,
    double downtime,
    double *restrict running_hist, /* (n+1) x n1 running-sum history rows */
    double *restrict base,         /* (n,) P(Z^{k+1}_k); base[0] = 1 */
    double *restrict expected_times, /* (n,) E[X_i] outputs */
    double *restrict probs,          /* (n,) scratch */
    double *restrict values)         /* (n,) scratch */
{
    double inv_lam = 1.0 / lam;
    for (int64_t i = start; i <= n; i++) {
        int64_t m = i - 1;
        const double *restrict prev = running_hist + (size_t)m * (size_t)n1;
        const double *restrict lrow = loss_t + (size_t)i * (size_t)n1;
        double wc = weights[m] + ckpt_costs[m];
        double diag = lrow[i];

        /* Property [A]: P(Z^i_k) = exp(running[k]) * base[k], saturated to
         * zero past the shared overflow guard.  The sum is a separate pass
         * so the transcendental loop stays free of loop-carried
         * dependencies and vectorizes. */
        for (int64_t k = 0; k < m; k++) {
            double r = prev[k];
            probs[k] = (r < -OVERFLOW_EXPONENT) ? 0.0 : fast_exp(r) * base[k];
        }
        double psum = 0.0;
        for (int64_t k = 0; k < m; k++)
            psum += probs[k];
        /* Property [B]: the last event takes the remaining mass. */
        double remaining = 1.0 - psum;
        if (remaining < 0.0)
            remaining = 0.0;
        else if (remaining > 1.0)
            remaining = 1.0;
        probs[m] = remaining;
        if (i >= 2)
            base[m] = remaining;

        /* Property [C] via Equation (1), branchless so the loop vectorizes:
         * the overflow and tiny-exposure guards are applied as selects. */
        for (int64_t k = 0; k < i; k++) {
            double l = lrow[k];
            double exposure = lam * (l + wc);
            double rec = diag - l;
            rec = (rec > 0.0) ? rec : 0.0;
            double rec_exposure = lam * rec;
            double e1 = (exposure > OVERFLOW_EXPONENT) ? OVERFLOW_EXPONENT : exposure;
            double e2 = (rec_exposure > OVERFLOW_EXPONENT) ? OVERFLOW_EXPONENT : rec_exposure;
            double grown = fast_expm1(e1);
            double v = fast_exp(e2) * (grown * inv_lam + downtime * grown);
            v = (exposure > OVERFLOW_EXPONENT || rec_exposure > OVERFLOW_EXPONENT)
                    ? INFINITY : v;
            v = (exposure < SMALL_EXPOSURE) ? (l + wc) : v;
            values[k] = v;
        }

        /* Dot product, skipping zero-probability events (keeps saturated
         * inf values from producing 0 * inf). */
        double xi = 0.0;
        for (int64_t k = 0; k < i; k++) {
            double p = probs[k];
            xi += (p != 0.0) ? p * values[k] : 0.0;
        }
        expected_times[m] = xi;

        /* Advance the -lam-prescaled running sums into this iteration's own
         * history row (entries >= i stay zero, doubling as resume points). */
        double *restrict cur = running_hist + (size_t)i * (size_t)n1;
        double neg_wc = -lam * wc;
        double neg_lam = -lam;
        for (int64_t k = 0; k < i; k++)
            cur[k] = prev[k] + neg_lam * lrow[k] + neg_wc;
    }
}

/* Quick numeric self-test the loader runs once per build: exercises both
 * fast transcendentals across the saturation domain and returns the maximum
 * relative error against libm.  A miscompiled cache entry (e.g. a stale
 * object built for a different CPU would more likely SIGILL, but a wrong
 * -ffast-math rebuild would land here) is rejected by the loader. */
double repro_native_selftest(void) {
    double max_rel = 0.0;
    for (double x = -700.0; x <= 700.0; x += 0.73) {
        double a = exp(x);
        double b = fast_exp(x);
        double rel = fabs(a - b) / a;
        if (rel > max_rel)
            max_rel = rel;
    }
    for (double x = 0.0; x <= 700.0; x += 0.41) {
        double a = expm1(x);
        double b = fast_expm1(x);
        double rel = (a == 0.0) ? fabs(b) : fabs(a - b) / a;
        if (rel > max_rel)
            max_rel = rel;
    }
    return max_rel;
}
