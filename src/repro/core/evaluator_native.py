"""Native (compiled C) backend for the Theorem-3 / Algorithm-1 kernels.

The two hot loops of the evaluation pipeline — the Algorithm-1 lost-work
fill and the sequential Theorem-3 recursion — are implemented once more in
plain C (``_theorem3.c``, shipped next to this module) and compiled **on
first use** with whatever C compiler the machine has (``cc``/``gcc``/
``clang``; no ``Python.h`` needed, the library is loaded through
:mod:`ctypes`).  Compiled objects are cached on disk keyed by a hash of the
source, compiler and flags, so every later process start is a plain
``dlopen``.

Why compile at runtime instead of requiring numba/Cython at install time:
the package stays a pure-Python install, machines without a toolchain
degrade silently (``backend="auto"`` keeps the numpy path — see
:func:`repro.core.backend.resolve_backend`), and the kernel is compiled
with ``-O3 -march=native`` for the actual CPU it runs on.

Entry points
------------
* :func:`native_available` / :func:`native_unavailable_reason` — probe (and
  memoize) whether the kernel can be built and loaded here;
* :func:`load_kernels` — the ctypes bindings used by
  :class:`repro.core.sweep.SweepState` for its native fill / kernel phases;
* :func:`evaluate_schedule_native` — one-shot evaluation, routed through a
  fresh sweep state so one-shot and sweep results are bit-for-bit identical
  by construction.

Environment knobs
-----------------
``REPRO_NATIVE_CC``
    Compiler executable (default: ``cc``, then ``gcc``, then ``clang`` —
    first one found on ``PATH``).
``REPRO_NATIVE_CFLAGS``
    Optimization flags (default ``-O3 -march=native``); OpenMP is probed
    separately and dropped when unsupported.
``REPRO_NATIVE_CACHE``
    Directory for compiled objects (default
    ``~/.cache/repro-workflows/native``).
``REPRO_NATIVE_DISABLE``
    Any non-empty value marks the backend unavailable (useful to pin the
    numpy path, and to exercise the fallback in tests).
``REPRO_NATIVE_THREADS``
    Worker threads for bulk row fills (default: the CPU count; fills of a
    few rows always stay serial).  Thread count can never change a value —
    rows are priced independently.
``REPRO_NATIVE_SANITIZE``
    Comma-separated sanitizers to compile the kernel with: ``asan``,
    ``ubsan``, ``tsan`` (CI hardening; see the ``native-sanitize`` job).
    The sanitizer set is part of the object-cache key, so sanitized and
    plain builds never collide.  Caveats: an ASan-instrumented library
    only loads into CPython when the ASan runtime is preloaded
    (``LD_PRELOAD=$(cc -print-file-name=libasan.so)`` plus
    ``ASAN_OPTIONS=detect_leaks=0`` — CPython itself "leaks" arenas at
    exit); TSan's runtime cannot be preloaded into CPython at all, so
    thread-race coverage runs through a standalone compiled driver (see
    ``tests/test_native_sanitize.py``), not through ctypes.  ``asan`` and
    ``tsan`` are mutually exclusive.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform as _platform
import shutil
import subprocess
import tempfile
from pathlib import Path

from typing import TYPE_CHECKING

from .lost_work import LostWork
from .platform import Platform
from .schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .evaluator import MakespanEvaluation

__all__ = [
    "NativeBuildError",
    "evaluate_schedule_native",
    "load_kernels",
    "native_available",
    "native_unavailable_reason",
]

#: ABI version this module expects; must match ``repro_abi_version()`` in
#: the C source (bumped together whenever an exported signature changes).
_ABI_VERSION = 1

_SOURCE_PATH = Path(__file__).with_name("_theorem3.c")

#: Memoized build outcome: ``None`` = not probed yet, otherwise a tuple of
#: (kernels-or-None, failure-reason-or-None).
_STATE: tuple["NativeKernels | None", str | None] | None = None


class NativeBuildError(RuntimeError):
    """The native kernel could not be compiled or loaded on this machine."""


class NativeKernels:
    """ctypes bindings of the compiled kernel library.

    ``fill_rows`` and ``theorem3_kernel`` mirror the C signatures; callers
    pass raw data pointers (``ndarray.ctypes.data``) of C-contiguous arrays
    they own for the duration of the call.
    """

    def __init__(
        self,
        lib: ctypes.CDLL,
        path: Path,
        openmp: bool,
        sanitizers: tuple[str, ...] = (),
    ) -> None:
        self.path = path
        self.openmp = openmp
        self.sanitizers = sanitizers
        self.fill_rows = lib.repro_fill_rows
        self.fill_rows.restype = None
        self.fill_rows.argtypes = (
            [ctypes.c_int64, ctypes.c_void_p, ctypes.c_int64]
            + [ctypes.c_void_p] * 8  # fwords..charges, loss_t
            + [ctypes.c_int64]  # n1
            + [ctypes.c_void_p] * 4  # out_cols, out_vals, out_off, out_counts
            + [ctypes.c_int64]  # threads
        )
        self.theorem3_kernel = lib.repro_theorem3_kernel
        self.theorem3_kernel.restype = None
        self.theorem3_kernel.argtypes = [
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_void_p,
            ctypes.c_int64,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_double,
            ctypes.c_double,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
            ctypes.c_void_p,
        ]
        self.fill_threads = _fill_threads()


def _fill_threads() -> int:
    raw = os.environ.get("REPRO_NATIVE_THREADS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _compiler() -> str | None:
    override = os.environ.get("REPRO_NATIVE_CC", "").strip()
    if override:
        return override if shutil.which(override) else None
    for cc in ("cc", "gcc", "clang"):
        if shutil.which(cc):
            return cc
    return None


def _cflags() -> list[str]:
    raw = os.environ.get("REPRO_NATIVE_CFLAGS", "").strip()
    return raw.split() if raw else ["-O3", "-march=native"]


#: Sanitizer name -> compile/link flags.  ``-fno-sanitize-recover`` turns
#: every UBSan diagnostic into an abort so CI cannot scroll past one.
_SANITIZER_FLAGS: dict[str, tuple[str, ...]] = {
    "asan": ("-fsanitize=address",),
    "ubsan": ("-fsanitize=undefined", "-fno-sanitize-recover=undefined"),
    "tsan": ("-fsanitize=thread",),
}


def _sanitizers() -> tuple[str, ...]:
    """The validated ``REPRO_NATIVE_SANITIZE`` set (sorted, deduplicated)."""
    raw = os.environ.get("REPRO_NATIVE_SANITIZE", "").strip()
    if not raw:
        return ()
    names = sorted({part.strip().lower() for part in raw.split(",") if part.strip()})
    unknown = [name for name in names if name not in _SANITIZER_FLAGS]
    if unknown:
        known = ", ".join(sorted(_SANITIZER_FLAGS))
        raise NativeBuildError(
            f"REPRO_NATIVE_SANITIZE names unknown sanitizer(s) "
            f"{', '.join(unknown)}; known: {known}"
        )
    if "asan" in names and "tsan" in names:
        raise NativeBuildError(
            "REPRO_NATIVE_SANITIZE: asan and tsan cannot be combined "
            "(their runtimes are mutually exclusive)"
        )
    return tuple(names)


def _sanitizer_flags(sanitizers: tuple[str, ...]) -> list[str]:
    flags: list[str] = []
    for name in sanitizers:
        flags.extend(_SANITIZER_FLAGS[name])
    if sanitizers:
        flags.append("-g")  # line numbers in sanitizer reports
    return flags


def _asan_runtime_loaded() -> bool:
    """Whether the ASan runtime is already in this process.

    dlopen'ing an ASan-instrumented library without the runtime preloaded
    does not fail with a catchable ``OSError`` — the runtime's init
    *aborts the process*.  So the probe must refuse up front.
    """
    try:
        if "libasan" in Path("/proc/self/maps").read_text():
            return True
    except OSError:
        pass
    return "asan" in os.environ.get("LD_PRELOAD", "")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE", "").strip()
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-workflows" / "native"


def _build_key(
    cc: str, flags: list[str], source: bytes, sanitizers: tuple[str, ...] = ()
) -> str:
    payload = "\0".join(
        [
            cc,
            " ".join(flags),
            ",".join(sanitizers),
            _platform.machine(),
            str(_ABI_VERSION),
        ]
    ).encode() + source
    return hashlib.sha256(payload).hexdigest()[:16]


def _compile(cc: str, flags: list[str], output: Path) -> bool:
    """Compile the kernel to ``output``; returns whether OpenMP was linked.

    The OpenMP variant is tried first and silently dropped when the
    toolchain rejects ``-fopenmp`` — the parallel pragma compiles away and
    fills run serially, with identical values.  Concurrent builders (e.g.
    campaign workers on a cold cache) race benignly: each compiles to its
    own temporary file and the ``os.replace`` into place is atomic.
    """
    output.parent.mkdir(parents=True, exist_ok=True)
    base = ["-shared", "-fPIC", str(_SOURCE_PATH), "-lm"]
    for openmp in (True, False):
        fd, tmp = tempfile.mkstemp(suffix=".so", dir=output.parent)
        os.close(fd)
        cmd = [cc, *flags, *(["-fopenmp"] if openmp else []), *base, "-o", tmp]
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=120
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            os.unlink(tmp)
            raise NativeBuildError(f"compiler invocation failed: {exc}") from exc
        if proc.returncode == 0:
            os.replace(tmp, output)
            return openmp
        os.unlink(tmp)
        if not openmp:
            raise NativeBuildError(
                f"compilation failed ({' '.join(cmd[:-2])}): "
                f"{proc.stderr.strip()[:500]}"
            )
    raise NativeBuildError("unreachable")  # pragma: no cover


def _build_and_load() -> NativeKernels:
    if os.environ.get("REPRO_NATIVE_DISABLE", "").strip():
        raise NativeBuildError(
            "native backend disabled via REPRO_NATIVE_DISABLE"
        )
    cc = _compiler()
    if cc is None:
        raise NativeBuildError(
            "no C compiler found (looked for cc/gcc/clang on PATH; "
            "set REPRO_NATIVE_CC to override)"
        )
    if not _SOURCE_PATH.is_file():
        raise NativeBuildError(f"kernel source missing: {_SOURCE_PATH}")
    source = _SOURCE_PATH.read_bytes()
    sanitizers = _sanitizers()
    if "tsan" in sanitizers:
        raise NativeBuildError(
            "REPRO_NATIVE_SANITIZE=tsan: a TSan-instrumented kernel cannot "
            "be loaded into CPython (the TSan runtime must own the main "
            "executable); ThreadSanitizer coverage of the OpenMP fill runs "
            "through the standalone driver in tests/test_native_sanitize.py"
        )
    if "asan" in sanitizers and not _asan_runtime_loaded():
        raise NativeBuildError(
            "REPRO_NATIVE_SANITIZE=asan requires the ASan runtime to be "
            "preloaded (dlopen of an instrumented kernel aborts otherwise): "
            "run under LD_PRELOAD=$(cc -print-file-name=libasan.so) with "
            "ASAN_OPTIONS=detect_leaks=0"
        )
    flags = _cflags() + _sanitizer_flags(sanitizers)
    try:
        cache = _cache_dir()
        cache.mkdir(parents=True, exist_ok=True)
    except OSError:
        cache = Path(tempfile.gettempdir()) / "repro-native"
    lib_path = cache / f"theorem3-{_build_key(cc, flags, source, sanitizers)}.so"

    openmp = True  # unknown for cache hits; reprobed below via omp symbol
    if not lib_path.is_file():
        openmp = _compile(cc, flags, lib_path)
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        # Stale or truncated cache entry (e.g. built by an incompatible
        # toolchain): rebuild once from scratch.
        try:
            lib_path.unlink()
        except OSError:
            pass
        openmp = _compile(cc, flags, lib_path)
        try:
            lib = ctypes.CDLL(str(lib_path))
        except OSError as exc:
            raise NativeBuildError(f"compiled kernel failed to load: {exc}") from exc

    abi = lib.repro_abi_version
    abi.restype = ctypes.c_int64
    if int(abi()) != _ABI_VERSION:
        # A cache entry from an older source revision whose hash collided
        # (practically impossible) or a hand-placed library: reject it.
        raise NativeBuildError(
            f"cached kernel has ABI {int(abi())}, expected {_ABI_VERSION}"
        )
    selftest = lib.repro_native_selftest
    selftest.restype = ctypes.c_double
    error = float(selftest())
    if not error < 1e-12:
        raise NativeBuildError(
            f"kernel self-test failed (max transcendental error {error:g})"
        )
    return NativeKernels(lib, lib_path, openmp, sanitizers)


def _probe() -> tuple[NativeKernels | None, str | None]:
    global _STATE
    if _STATE is None:
        try:
            import numpy  # noqa: F401  (the native path drives numpy buffers)
        except Exception:  # pragma: no cover - exercised only without numpy
            _STATE = (None, "numpy is required to drive the native kernels")
            return _STATE
        try:
            _STATE = (_build_and_load(), None)
        except NativeBuildError as exc:
            _STATE = (None, str(exc))
    return _STATE


def invalidate_probe_cache() -> None:
    """Forget the memoized build outcome (test hook: environment changes
    such as ``REPRO_NATIVE_DISABLE`` are only seen by the next probe)."""
    global _STATE
    _STATE = None


def native_available() -> bool:
    """Whether the native backend can be compiled and loaded here.

    The first call on a cold cache pays one compiler invocation (~a second);
    every later call in the process is a memo read, and later processes
    reuse the on-disk object.
    """
    return _probe()[0] is not None


def native_unavailable_reason() -> str | None:
    """Why :func:`native_available` is false (``None`` when available)."""
    return _probe()[1]


def load_kernels() -> NativeKernels:
    """The compiled kernel bindings; raises :class:`NativeBuildError` with
    the build failure when the backend is unavailable."""
    kernels, reason = _probe()
    if kernels is None:
        raise NativeBuildError(reason or "native backend unavailable")
    return kernels


def evaluate_schedule_native(
    schedule: Schedule,
    platform: Platform,
    *,
    lost_work: LostWork | None = None,
    keep_probabilities: bool = False,
) -> "MakespanEvaluation":
    """Native implementation of :func:`repro.core.evaluator.evaluate_schedule`.

    The ranking path (no precomputed lost work, no probability table) runs a
    fresh :class:`~repro.core.sweep.SweepState` on the native backend — a
    one-shot evaluation is a sweep of length one, so one-shot and sweep
    results are **bit-for-bit identical by construction** (the contract the
    search and refinement layers rely on when they re-evaluate a sweep
    winner through the one-shot entry point).

    The diagnostic paths — ``keep_probabilities=True`` or a precomputed
    ``lost_work`` — are served by the numpy canon instead: they are rare,
    off the hot loops, and the two backends agree within the 1e-9
    equivalence bound the property suite pins.  The trivial ``n = 0`` /
    ``lambda = 0`` cases delegate to the shared reference bookkeeping,
    exactly like the numpy entry point.
    """
    from .evaluator import evaluate_schedule

    n = schedule.n_tasks
    lam = platform.failure_rate
    if n == 0 or lam == 0.0:
        return evaluate_schedule(
            schedule, platform, lost_work=lost_work,
            keep_probabilities=keep_probabilities, backend="python",
        )
    if lost_work is not None or keep_probabilities:
        from .evaluator_np import evaluate_schedule_numpy

        return evaluate_schedule_numpy(
            schedule, platform, lost_work=lost_work,
            keep_probabilities=keep_probabilities,
        )

    from dataclasses import replace as _replace

    from .sweep import SweepState

    state = SweepState(schedule.workflow, schedule.order, platform, backend="native")
    evaluation = state.evaluate(schedule.checkpointed)
    return _replace(
        evaluation, failure_free_makespan=schedule.failure_free_makespan
    )
