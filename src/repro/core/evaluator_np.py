"""NumPy fast path for the Theorem-3 evaluator and batched schedule scoring.

This module vectorizes the interpreted hot loops of
:mod:`repro.core.evaluator`:

* the conditional expectations ``E[X_i | Z^i_k]`` of property [C] are
  computed for *every* pair ``(k, i)`` in one shot — a vectorized Equation
  (1) over the whole ``W + R`` matrix (``expm1`` / ``exp`` with the same
  overflow saturation (:data:`~repro.core.expectation.OVERFLOW_EXPONENT`)
  and small-exposure guard as
  :func:`repro.core.expectation.expected_execution_time`);
* the probability row ``P(Z^i_k), k = 0..i-2`` (property [A]) becomes one
  ``np.exp`` over the running-sum vector;
* the prefix-sum advance of the running sums is a single vector add.

The recursion over positions ``i`` is inherently sequential (property [B]
feeds ``P(Z^{k+1}_k)`` forward), so the kernel keeps ``O(n)`` Python
iterations — but each one is a handful of ``O(n)`` vector operations instead
of thousands of interpreted float operations.

The lost-work fill (Algorithm 1) is also specialized here: only positions
``i`` with a direct predecessor placed before ``k`` can charge anything for a
failure during :math:`X_k`, so the fill enumerates exactly those ``(k, i)``
pairs instead of scanning the full triangle.  On the Pegasus families this
skips 60-99% of the pairs.  :func:`repro.core.lost_work.compute_lost_work`
stays the readable reference transcription; the property tests pin both to
the same values.

:func:`batch_evaluate` is the entry point the checkpoint-count search and the
refinement sweeps use: it scores many checkpoint sets over one fixed
linearization while deriving the position / predecessor tables (and the
linearization check) only once.

Import of :mod:`numpy` is deferred to call time so that ``repro.core`` stays
importable without it; :func:`repro.core.backend.resolve_backend` never
routes here when NumPy is missing.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterable, Sequence

from .backend import resolve_backend
from .evaluator import MakespanEvaluation
from .expectation import OVERFLOW_EXPONENT
from .lost_work import LostWork, _position_tables
from .platform import Platform
from .schedule import Schedule

__all__ = ["batch_evaluate", "evaluate_schedule_numpy"]

#: Exposure threshold below which Equation (1) returns the failure-free
#: duration — mirrors the guard in ``expected_execution_time`` exactly.
_SMALL_EXPOSURE = 1e-12


# ----------------------------------------------------------------------
# Lost-work fill (Algorithm 1, candidate-pruned, summed W + R)
# ----------------------------------------------------------------------
def _candidate_lists(n: int, predecessors: Sequence[tuple[int, ...]]) -> list[list[int]]:
    """For every ``k``, the positions ``i >= k`` that can charge anything.

    A failure during :math:`X_k` costs something at position ``i`` only if the
    traversal from ``T_i`` reaches below ``k`` — which requires a *direct*
    predecessor at a position ``< k``.  Position ``i`` therefore matters
    exactly for ``k`` in ``(min_pred[i], i]``; everything else is a
    structural zero.
    """
    cands: list[list[int]] = [[] for _ in range(n + 2)]
    for i in range(1, n + 1):
        preds = predecessors[i]
        if not preds:
            continue
        for k in range(preds[0] + 1, i + 1):
            cands[k].append(i)
    return cands


def _fill_loss_matrix(
    n: int,
    weight: Sequence[float],
    recovery_cost: Sequence[float],
    checkpointed: Sequence[bool],
    predecessors: Sequence[tuple[int, ...]],
    candidates: Sequence[list[int]],
    loss,
) -> None:
    """Fill ``loss[k, i] = W^i_k + R^i_k`` (Algorithm 1, pruned).

    ``loss`` is a pre-zeroed ``(n+1, n+1)`` matrix; only non-zero entries are
    written.  Semantics are identical to
    :func:`repro.core.lost_work.compute_lost_work` — the per-``k``
    ``regenerated`` marks replace Algorithm 1's ``tab_k`` bookkeeping, and
    the candidate lists merely skip ``(k, i)`` pairs whose traversal would
    visit nothing.  ``predecessors`` must hold *ascending* position tuples:
    the direct scan stops at the first predecessor placed at or after ``k``.
    """
    stack: list[int] = []  # always drained; shared across iterations
    for k in range(1, n + 1):
        regenerated = bytearray(n + 1)
        for i in candidates[k]:
            lost = 0.0
            # Mark on push rather than on pop: every stacked position is
            # already known to be a fresh member (predecessor positions are
            # always smaller, so transitive pushes sit below k by
            # construction), which keeps duplicates off the stack entirely.
            for j in predecessors[i]:
                if j >= k:
                    break
                if not regenerated[j]:
                    regenerated[j] = 1
                    stack.append(j)
            while stack:
                j = stack.pop()
                if checkpointed[j]:
                    lost += recovery_cost[j]
                else:
                    lost += weight[j]
                    for p in predecessors[j]:
                        if not regenerated[p]:
                            regenerated[p] = 1
                            stack.append(p)
            if lost:
                loss[k, i] = lost


# ----------------------------------------------------------------------
# Theorem-3 kernel
# ----------------------------------------------------------------------
def _theorem3_kernel(
    np,
    weights,
    ckpt_costs,
    loss,
    lam: float,
    downtime: float,
    keep_probabilities: bool,
):
    """Vectorized Theorem-3 recursion.

    Parameters
    ----------
    np:
        The numpy module (threaded through to keep the import lazy).
    weights, ckpt_costs:
        ``(n,)`` float64 vectors in position order (0-based); ``ckpt_costs``
        is already masked to zero for non-checkpointed positions.
    loss:
        ``(n+1, n+1)`` float64 matrix, ``loss[k, i] = W^i_k + R^i_k``.
    lam, downtime:
        Platform failure rate (must be > 0 here) and constant downtime.

    Returns
    -------
    (expected_times, probabilities)
        Per-position expectations as a float list, and the per-position
        ``P(Z^i_k)`` tuples when requested (else ``None``).
    """
    n = weights.shape[0]

    # ------------------------------------------------------------------
    # Property [C] via Equation (1), for all pairs at once.  Column i-1
    # holds E[X_i | Z^i_k] for every k (rows k > i-1 are unused garbage —
    # they stay finite, so they cannot poison the reductions below).
    #   redo = W^i_k + R^i_k,   w = redo + w_i,   c = c_i,
    #   rec  = (W^i_i + R^i_i) - redo.
    # ------------------------------------------------------------------
    sub = loss[:, 1:]                           # (n+1, n): loss[k][i], i = 1..n
    diagonal = loss.diagonal()[1:]              # loss[i][i]
    with np.errstate(over="ignore"):            # saturation to inf is intended
        exposure = lam * (sub + (weights + ckpt_costs))
        grown = np.expm1(np.minimum(exposure, OVERFLOW_EXPONENT))
        rec_exposure = lam * np.maximum(diagonal - sub, 0.0)
        values = np.exp(np.minimum(rec_exposure, OVERFLOW_EXPONENT)) * (
            grown / lam + downtime * grown
        )
    overflow = (exposure > OVERFLOW_EXPONENT) | (rec_exposure > OVERFLOW_EXPONENT)
    if overflow.any():
        values[overflow] = np.inf
    tiny = exposure < _SMALL_EXPOSURE
    if tiny.any():
        # Negligible failure probability: Equation (1) degenerates to the
        # failure-free duration w + c, exactly as in the scalar reference.
        failure_free = sub + (weights + ckpt_costs)
        values[tiny] = failure_free[tiny]
    # Saturation must be detected on the *computed* values, not just the
    # exponent guards: the product can overflow to inf on its own (e.g.
    # exp(695) / lam for a tiny lam) and an unmasked dot product would then
    # turn P = 0 events into 0 * inf = NaN where the reference returns inf.
    saturated = bool(np.isinf(values).any())

    # ------------------------------------------------------------------
    # Properties [A] and [B]: the sequential probability recursion.
    # ------------------------------------------------------------------
    # The sequential loop reads one *column* of ``values`` / ``loss`` per
    # position; transpose both once so those reads are contiguous.
    values_t = np.ascontiguousarray(values.T)   # values_t[i-1, k] = E[X_i|Z^i_k]
    loss_t = np.ascontiguousarray(loss.T)       # loss_t[i, k] = loss[k][i]

    # base[k] = P(Z^{k+1}_k), the fault probability of interval X_k (k >= 1);
    # base[0] = 1 is the "no failure yet" convention of property [A].
    base = np.zeros(n)
    base[0] = 1.0
    # running[k] = sum_{j=k+1}^{i-1} (W^j_k + R^j_k + w_j + delta_j c_j),
    # advanced by one vector add per position (property [A]'s exponent).
    running = np.zeros(n + 1)
    scratch = np.empty(n)
    # The running sums are bounded by the total of the per-position terms
    # (T↓k_i ⊆ T↓i_i), so when even that bound stays under the guard, the
    # per-iteration saturation checks can be skipped wholesale.  The 1.0
    # margin dwarfs any accumulated rounding in the bound itself.
    with np.errstate(over="ignore"):
        exponent_bound = lam * float((diagonal + weights + ckpt_costs).sum())
    may_clip = not exponent_bound <= OVERFLOW_EXPONENT - 1.0
    expected_times: list[float] = []
    probabilities: list[tuple[float, ...]] | None = [] if keep_probabilities else None

    probs_buf = np.empty(n)
    for i in range(1, n + 1):
        m = i - 1
        probs = probs_buf[:i]
        if m:
            exponents = np.multiply(running[:m], lam, out=scratch[:m])
            head = probs[:m]
            np.exp(np.negative(exponents, out=head), out=head)
            head *= base[:m]
            if may_clip:
                # Saturate at the shared guard so both backends zero out the
                # same (astronomically unlikely) events.
                clipped = exponents > OVERFLOW_EXPONENT
                if clipped.any():
                    head[clipped] = 0.0
            remaining = 1.0 - float(head.sum())
            # Property [B]: the last event takes the remaining mass.
            if remaining < 0.0:
                remaining = 0.0
            elif remaining > 1.0:
                remaining = 1.0
        else:
            remaining = 1.0
        probs[m] = remaining
        if i >= 2:
            base[m] = remaining

        column = values_t[m, :i]
        if saturated:
            # P = 0 events must not contribute even when their conditional
            # expectation saturated to inf (0 * inf would be NaN).
            mask = probs > 0.0
            expected_xi = float(probs[mask] @ column[mask])
        else:
            expected_xi = float(probs @ column)
        expected_times.append(expected_xi)
        if probabilities is not None:
            probabilities.append(tuple(float(p) for p in probs))

        # Advance the running prefix sums so that, at the next iteration,
        # running[k] covers j = k+1 .. i.
        running[:i] += loss_t[i, :i]
        running[:i] += weights[m] + ckpt_costs[m]

    return expected_times, probabilities


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def evaluate_schedule_numpy(
    schedule: Schedule,
    platform: Platform,
    *,
    lost_work: LostWork | None = None,
    keep_probabilities: bool = False,
) -> MakespanEvaluation:
    """NumPy implementation of :func:`repro.core.evaluator.evaluate_schedule`.

    Callers normally go through ``evaluate_schedule(..., backend=...)``; this
    entry point exists for direct kernel testing.  The ``n = 0`` and
    ``lambda = 0`` edge cases are delegated to the reference implementation
    (they are pure bookkeeping, and sharing the code keeps the two backends
    bit-for-bit identical there).
    """
    from .evaluator import evaluate_schedule

    n = schedule.n_tasks
    lam = platform.failure_rate
    if n == 0 or lam == 0.0:
        return evaluate_schedule(
            schedule, platform, lost_work=lost_work,
            keep_probabilities=keep_probabilities, backend="python",
        )

    import numpy as np

    workflow = schedule.workflow
    order = schedule.order
    tasks = workflow.tasks
    selected = schedule.checkpointed
    weights = np.fromiter(
        (tasks[t].weight for t in order), dtype=np.float64, count=n
    )
    ckpt_costs = np.fromiter(
        (tasks[t].checkpoint_cost if t in selected else 0.0 for t in order),
        dtype=np.float64,
        count=n,
    )

    if lost_work is not None:
        loss = lost_work.work_array + lost_work.recovery_array
    else:
        _, weight, recovery_cost, predecessors = _position_tables(workflow, order)
        predecessors = [tuple(sorted(p)) for p in predecessors]
        checkpointed = [False] * (n + 1)
        for pos_zero, task_index in enumerate(order):
            checkpointed[pos_zero + 1] = task_index in selected
        loss = np.zeros((n + 1, n + 1))
        _fill_loss_matrix(
            n, weight, recovery_cost, checkpointed, predecessors,
            _candidate_lists(n, predecessors), loss,
        )

    expected_times, probabilities = _theorem3_kernel(
        np, weights, ckpt_costs, loss, lam, platform.downtime, keep_probabilities
    )
    return MakespanEvaluation(
        expected_makespan=math.fsum(expected_times),
        expected_task_times=tuple(expected_times),
        failure_free_makespan=schedule.failure_free_makespan,
        failure_free_work=workflow.total_weight,
        event_probabilities=tuple(probabilities) if probabilities is not None else None,
    )


def batch_evaluate(
    workflow,
    order: Sequence[int],
    checkpoint_sets: Iterable[Iterable[int]],
    platform: Platform,
    *,
    backend: str | None = None,
    keep_task_times: bool = True,
) -> list[MakespanEvaluation]:
    """Score many checkpoint sets over one fixed linearization.

    This is the sweep primitive behind the checkpoint-count search and the
    refinement local moves: every candidate shares the same workflow and
    ``order``, so the position / predecessor / candidate tables (and the
    order's linearization check) are derived once instead of per candidate.

    Parameters
    ----------
    workflow, order, platform:
        The instance; ``order`` must be a valid linearization of ``workflow``.
    checkpoint_sets:
        Iterable of checkpoint sets (task indices).  One
        :class:`~repro.core.evaluator.MakespanEvaluation` is returned per
        set, in input order.
    backend:
        ``"auto"`` / ``"python"`` / ``"numpy"``; see
        :func:`repro.core.backend.resolve_backend`.  The Python path simply
        evaluates one :class:`~repro.core.schedule.Schedule` per set and is
        the reference the NumPy path is tested against.
    keep_task_times:
        When ``False``, the returned evaluations carry an empty
        ``expected_task_times`` tuple.  Sweeps that only rank candidates by
        ``expected_makespan`` (the count search, refinement toggles) pass
        ``False`` so a batch of ``n`` candidates costs O(n) rather than
        O(n^2) retained floats; re-evaluate the winner for the full vector.
    """
    from .evaluator import evaluate_schedule

    order = tuple(int(i) for i in order)
    n = len(order)
    sets = [frozenset(int(i) for i in selected) for selected in checkpoint_sets]
    lam = platform.failure_rate
    resolved = resolve_backend(backend, n_tasks=n)
    if resolved == "python" or n == 0 or lam == 0.0:
        # Reference path (also the trivial edge cases, which the kernel
        # delegates anyway): one Schedule per set, evaluated serially.
        results = [
            evaluate_schedule(Schedule(workflow, order, selected), platform, backend="python")
            for selected in sets
        ]
        if not keep_task_times:
            results = [
                replace(evaluation, expected_task_times=())
                for evaluation in results
            ]
        return results

    # Validate once what Schedule would have validated per candidate.
    if sorted(order) != list(range(workflow.n_tasks)):
        raise ValueError(
            f"order must be a permutation of all task indices 0..{workflow.n_tasks - 1}"
        )
    if not workflow.is_linearization(order):
        raise ValueError("order violates a dependency edge of the workflow")
    for selected in sets:
        invalid = [i for i in selected if not 0 <= i < workflow.n_tasks]
        if invalid:
            raise ValueError(
                f"checkpointed contains invalid task indices: {sorted(invalid)}"
            )

    import numpy as np

    position, weight, recovery_cost, predecessors = _position_tables(workflow, order)
    predecessors = [tuple(sorted(p)) for p in predecessors]
    candidates = _candidate_lists(n, predecessors)
    tasks = workflow.tasks
    weights = np.asarray(weight[1:], dtype=np.float64)
    raw_ckpt_costs = np.fromiter(
        (tasks[t].checkpoint_cost for t in order), dtype=np.float64, count=n
    )
    failure_free_work = workflow.total_weight
    downtime = platform.downtime

    results: list[MakespanEvaluation] = []
    loss = np.zeros((n + 1, n + 1))
    for selected in sets:
        checkpointed = [False] * (n + 1)
        ckpt_mask = np.zeros(n, dtype=bool)
        for task_index in selected:
            pos = position[task_index]
            checkpointed[pos] = True
            ckpt_mask[pos - 1] = True
        ckpt_costs = np.where(ckpt_mask, raw_ckpt_costs, 0.0)
        loss.fill(0.0)
        _fill_loss_matrix(
            n, weight, recovery_cost, checkpointed, predecessors, candidates, loss
        )
        expected_times, _ = _theorem3_kernel(
            np, weights, ckpt_costs, loss, lam, downtime, False
        )
        results.append(
            MakespanEvaluation(
                expected_makespan=math.fsum(expected_times),
                expected_task_times=tuple(expected_times) if keep_task_times else (),
                failure_free_makespan=failure_free_work + float(ckpt_costs.sum()),
                failure_free_work=failure_free_work,
            )
        )
    return results
