"""NumPy fast path for the Theorem-3 evaluator and batched schedule scoring.

This module vectorizes the interpreted hot loops of
:mod:`repro.core.evaluator`:

* the conditional expectations ``E[X_i | Z^i_k]`` of property [C] are
  computed for *every* pair ``(k, i)`` in one shot — a vectorized Equation
  (1) over the whole ``W + R`` matrix (``expm1`` / ``exp`` with the same
  overflow saturation (:data:`~repro.core.expectation.OVERFLOW_EXPONENT`)
  and small-exposure guard as
  :func:`repro.core.expectation.expected_execution_time`);
* the probability row ``P(Z^i_k), k = 0..i-2`` (property [A]) becomes one
  ``np.exp`` over the running-sum vector;
* the prefix-sum advance of the running sums is a single vector add.

The recursion over positions ``i`` is inherently sequential (property [B]
feeds ``P(Z^{k+1}_k)`` forward), so the kernel keeps ``O(n)`` Python
iterations — but each one is a handful of ``O(n)`` vector operations instead
of thousands of interpreted float operations.

The lost-work fill (Algorithm 1) is also specialized here, twice over.  Only
positions ``i`` with a direct predecessor placed before ``k`` can charge
anything for a failure during :math:`X_k`, so the fill enumerates exactly
those ``(k, i)`` pairs instead of scanning the full triangle — on the Pegasus
families this skips 60-99% of the pairs.  And instead of re-walking the DAG
per pair, the fill intersects precomputed *predecessor-closure bitmasks*
(:func:`_closure_masks`): the set a traversal visits is exactly the union of
the direct predecessors' closures below ``k`` minus what earlier candidates
already regenerated, so each entry costs a few big-int word operations, and
a whole row's charges are summed in one fixed-width vector batch
(:func:`_row_loss_values`).  The fixed-width pairwise sum makes each entry's
value independent of how rows are grouped, which is what lets the
incremental sweep engine (:mod:`repro.core.sweep`) reproduce these values
bit for bit while recomputing rows in a completely different pattern.
:func:`repro.core.lost_work.compute_lost_work` stays the readable reference
transcription; the property tests pin both to the same values (1e-9).

:func:`batch_evaluate` is the entry point the checkpoint-count search and the
refinement sweeps use: it scores many checkpoint sets over one fixed
linearization.  It is a thin convenience wrapper over
:class:`repro.core.sweep.SweepState`, which derives the position /
predecessor tables (and the linearization check) once and evaluates each
candidate *incrementally* — only the Algorithm-1 rows and Theorem-3 suffix a
set's delta against the previous candidate can actually change are
recomputed, with results bit-for-bit identical to per-candidate evaluation.

Import of :mod:`numpy` is deferred to call time so that ``repro.core`` stays
importable without it; :func:`repro.core.backend.resolve_backend` never
routes here when NumPy is missing.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator, Sequence

from .dag import Workflow
from .evaluator import MakespanEvaluation
from .expectation import OVERFLOW_EXPONENT
from .lost_work import LostWork, _position_tables
from .platform import Platform
from .schedule import Schedule

__all__ = ["batch_evaluate", "evaluate_schedule_numpy"]

#: Exposure threshold below which Equation (1) returns the failure-free
#: duration — mirrors the guard in ``expected_execution_time`` exactly.
_SMALL_EXPOSURE = 1e-12


# ----------------------------------------------------------------------
# Lost-work fill (Algorithm 1, candidate-pruned, closure-bitmask form)
# ----------------------------------------------------------------------
def _candidate_lists(n: int, predecessors: Sequence[tuple[int, ...]]) -> list[list[int]]:
    """For every ``k``, the positions ``i >= k`` that can charge anything.

    A failure during :math:`X_k` costs something at position ``i`` only if the
    traversal from ``T_i`` reaches below ``k`` — which requires a *direct*
    predecessor at a position ``< k``.  Position ``i`` therefore matters
    exactly for ``k`` in ``(min_pred[i], i]``; everything else is a
    structural zero.
    """
    cands: list[list[int]] = [[] for _ in range(n + 2)]
    for i in range(1, n + 1):
        preds = predecessors[i]
        if not preds:
            continue
        for k in range(preds[0] + 1, i + 1):
            cands[k].append(i)
    return cands


def _closure_masks(
    n: int,
    predecessors: Sequence[tuple[int, ...]],
    checkpointed: Sequence[int],
) -> tuple[list[int], list[int]]:
    """Per-position traversal bitmasks: ``(closures, frontiers)``.

    ``closures[p]`` contains ``p`` itself plus, when ``p`` is *not*
    checkpointed, the closure of every direct predecessor — i.e. everything
    Algorithm 1 walks when the output of position ``p`` is needed and nothing
    has been regenerated yet.  Checkpointed positions stop the recursion:
    they are recovered from disk, so their own inputs are never needed.
    ``frontiers[p]`` is the union of the direct predecessors' closures
    regardless of ``p``'s own checkpoint state — the set a failure traversal
    *starting* at ``p`` visits.  Predecessors sit at smaller positions in a
    linearization, so one ascending pass computes both.
    """
    closures = [0] * (n + 1)
    frontiers = [0] * (n + 1)
    for p in range(1, n + 1):
        frontier = 0
        for q in predecessors[p]:
            frontier |= closures[q]
        frontiers[p] = frontier
        closures[p] = (1 << p) | (0 if checkpointed[p] else frontier)
    return closures, frontiers


def _iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def _charge_lut(np: Any, charge_bits: Any) -> Any:
    """Per-byte charge lookup table — the first half of the value canon.

    ``charge_bits`` holds one charge per bit position (zero-padded to
    ``8 * mask_bytes``); the result is a ``(mask_bytes, 256)`` float64 table
    whose ``[b, v]`` entry is the canonical charge sum of byte value ``v``
    at byte position ``b`` (a fixed-width-8 numpy reduction).  Incremental
    maintainers must rebuild a row with the identical expression
    (``(byte_bits * charge_bits[8 * b : 8 * b + 8]).sum(axis=1)``) so cached
    and freshly built tables stay bit-identical.
    """
    mask_bytes = charge_bits.shape[0] // 8
    byte_bits = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1, bitorder="little"
    )
    return (byte_bits * charge_bits.reshape(mask_bytes, 1, 8)).sum(axis=2)


def _mask_charges(np: Any, mask_rows: Any, charge_lut: Any) -> Any:
    """Charge sums of visited-set bitmask rows (the shared value canon).

    ``mask_rows`` is a ``(m, mask_bytes)`` uint8 matrix of little-endian
    visited bitmasks, every row non-empty; the result is the float64 vector
    of per-row charge sums.  Each row is priced by gathering its bytes'
    precomputed charges from :func:`_charge_lut` and reducing them with
    numpy's pairwise summation over the fixed width ``mask_bytes``, which
    depends only on that width — never on ``m`` or on neighbouring rows —
    so every code path that prices the same visited set through this helper
    gets the bit-identical float.  This is the property that lets the
    incremental sweep engine (:mod:`repro.core.sweep`) recompute rows in a
    completely different grouping than the one-shot fill and still match it
    bit for bit.
    """
    per_byte = charge_lut[np.arange(charge_lut.shape[0]), mask_rows]
    return per_byte.sum(axis=1)


def _row_loss_values(
    np: Any,
    k: int,
    candidates_k: Sequence[int],
    predecessors: Sequence[tuple[int, ...]],
    closures: Sequence[int],
    frontiers: Sequence[int],
    charge_lut: Any,
    mask_bytes: int,
) -> tuple[Any, Any]:
    """Nonzero ``(i, W^i_k + R^i_k)`` entries of row ``k`` as ``(cols, vals)``.

    The closure-mask shortcut is exact because the regenerated set is closed
    under predecessor descent: when a non-checkpointed position is first
    visited, its whole closure is pushed within the same traversal, so any
    member of :math:`T^{\\downarrow k}_i` reachable only through regenerated
    intermediates is itself already regenerated.  Hence the visited set is
    the union of the direct predecessors' closures below ``k`` minus
    everything previous candidates regenerated — no graph walk per pair, and
    for the common case ``k > max_pred(i)`` the union is the precomputed
    ``frontiers[i]``.

    One row's charges are summed in one :func:`_mask_charges` batch against
    the caller's :func:`_charge_lut` table (recovery costs for checkpointed
    positions, weights for the rest).  ``predecessors`` must hold
    *ascending* position tuples.

    Returns ``(cols, vals)`` with ``vals`` a float64 vector; zero values are
    filtered out (structural zeros are never written).
    """
    regenerated = 0
    cols: list[int] = []
    masks = bytearray()
    for i in candidates_k:
        preds = predecessors[i]
        if preds[-1] < k:
            frontier = frontiers[i]
        else:
            frontier = 0
            for p in preds:
                if p >= k:
                    break
                frontier |= closures[p]
        visited = frontier & ~regenerated
        if not visited:
            continue
        regenerated |= visited
        cols.append(i)
        masks += visited.to_bytes(mask_bytes, "little")
    if not cols:
        return cols, None
    vals = _mask_charges(
        np,
        np.frombuffer(bytes(masks), dtype=np.uint8).reshape(len(cols), mask_bytes),
        charge_lut,
    )
    nonzero = vals != 0.0
    if not nonzero.all():
        vals = vals[nonzero]
        cols = [i for i, keep in zip(cols, nonzero) if keep]
    return cols, vals


# ----------------------------------------------------------------------
# Theorem-3 kernel
# ----------------------------------------------------------------------
def _theorem3_kernel(
    np: Any,
    weights: Any,
    ckpt_costs: Any,
    loss: Any,
    lam: float,
    downtime: float,
    keep_probabilities: bool,
) -> tuple[list[float], list[tuple[float, ...]] | None]:
    """Vectorized Theorem-3 recursion.

    Parameters
    ----------
    np:
        The numpy module (threaded through to keep the import lazy).
    weights, ckpt_costs:
        ``(n,)`` float64 vectors in position order (0-based); ``ckpt_costs``
        is already masked to zero for non-checkpointed positions.
    loss:
        ``(n+1, n+1)`` float64 matrix, ``loss[k, i] = W^i_k + R^i_k``.
    lam, downtime:
        Platform failure rate (must be > 0 here) and constant downtime.

    Returns
    -------
    (expected_times, probabilities)
        Per-position expectations as a float list, and the per-position
        ``P(Z^i_k)`` tuples when requested (else ``None``).
    """
    n = weights.shape[0]

    # ------------------------------------------------------------------
    # Property [C] via Equation (1), for all pairs at once.  Column i-1
    # holds E[X_i | Z^i_k] for every k (rows k > i-1 are unused garbage —
    # they stay finite, so they cannot poison the reductions below).
    #   redo = W^i_k + R^i_k,   w = redo + w_i,   c = c_i,
    #   rec  = (W^i_i + R^i_i) - redo.
    # ------------------------------------------------------------------
    sub = loss[:, 1:]                           # (n+1, n): loss[k][i], i = 1..n
    diagonal = loss.diagonal()[1:]              # loss[i][i]
    with np.errstate(over="ignore"):            # saturation to inf is intended
        exposure = lam * (sub + (weights + ckpt_costs))
        grown = np.expm1(np.minimum(exposure, OVERFLOW_EXPONENT))
        rec_exposure = lam * np.maximum(diagonal - sub, 0.0)
        values = np.exp(np.minimum(rec_exposure, OVERFLOW_EXPONENT)) * (
            grown / lam + downtime * grown
        )
    overflow = (exposure > OVERFLOW_EXPONENT) | (rec_exposure > OVERFLOW_EXPONENT)
    if overflow.any():
        values[overflow] = np.inf
    tiny = exposure < _SMALL_EXPOSURE
    if tiny.any():
        # Negligible failure probability: Equation (1) degenerates to the
        # failure-free duration w + c, exactly as in the scalar reference.
        failure_free = sub + (weights + ckpt_costs)
        values[tiny] = failure_free[tiny]
    # Saturation must be detected on the *computed* values, not just the
    # exponent guards: the product can overflow to inf on its own (e.g.
    # exp(695) / lam for a tiny lam) and an unmasked dot product would then
    # turn P = 0 events into 0 * inf = NaN where the reference returns inf.
    saturated = bool(np.isinf(values).any())

    # ------------------------------------------------------------------
    # Properties [A] and [B]: the sequential probability recursion.
    # ------------------------------------------------------------------
    # The sequential loop reads one *column* of ``values`` / ``loss`` per
    # position; transpose both once so those reads are contiguous.
    values_t = np.ascontiguousarray(values.T)   # values_t[i-1, k] = E[X_i|Z^i_k]
    neg_loss_t = np.ascontiguousarray(loss.T)   # neg_loss_t[i, k] = -lam*loss[k][i]
    neg_loss_t *= -lam
    neg_terms = (weights + ckpt_costs) * -lam   # -lam * (w_j + delta_j c_j)

    # base[k] = P(Z^{k+1}_k), the fault probability of interval X_k (k >= 1);
    # base[0] = 1 is the "no failure yet" convention of property [A].
    base = np.zeros(n)
    base[0] = 1.0
    # running[k] = -lam * sum_{j=k+1}^{i-1} (W^j_k + R^j_k + w_j + delta_j c_j),
    # advanced by one vector add per position.  The sums are kept pre-scaled
    # by -lam so the loop body computes P(Z^i_k) with a single np.exp — the
    # terms are scaled up front (neg_loss_t / neg_terms below), which is the
    # same accumulation the sweep engine's resumable kernel performs.
    running = np.zeros(n + 1)
    # The running sums are bounded by the total of the per-position terms
    # (T↓k_i ⊆ T↓i_i), so when even that bound stays under the guard, the
    # per-iteration saturation checks can be skipped wholesale.  The 1.0
    # margin dwarfs any accumulated rounding in the bound itself.
    with np.errstate(over="ignore"):
        exponent_bound = lam * float((diagonal + weights + ckpt_costs).sum())
    may_clip = not exponent_bound <= OVERFLOW_EXPONENT - 1.0
    expected_times: list[float] = []
    probabilities: list[tuple[float, ...]] | None = [] if keep_probabilities else None

    probs_buf = np.empty(n)
    for i in range(1, n + 1):
        m = i - 1
        probs = probs_buf[:i]
        if m:
            head = probs[:m]
            np.exp(running[:m], out=head)
            head *= base[:m]
            if may_clip:
                # Saturate at the shared guard so both backends zero out the
                # same (astronomically unlikely) events.
                clipped = running[:m] < -OVERFLOW_EXPONENT
                if clipped.any():
                    head[clipped] = 0.0
            remaining = 1.0 - float(head.sum())
            # Property [B]: the last event takes the remaining mass.
            if remaining < 0.0:
                remaining = 0.0
            elif remaining > 1.0:
                remaining = 1.0
        else:
            remaining = 1.0
        probs[m] = remaining
        if i >= 2:
            base[m] = remaining

        column = values_t[m, :i]
        if saturated:
            # P = 0 events must not contribute even when their conditional
            # expectation saturated to inf (0 * inf would be NaN).
            mask = probs > 0.0
            expected_xi = float(probs[mask] @ column[mask])
        else:
            expected_xi = float(probs @ column)
        expected_times.append(expected_xi)
        if probabilities is not None:
            probabilities.append(tuple(float(p) for p in probs))

        # Advance the running prefix sums so that, at the next iteration,
        # running[k] covers j = k+1 .. i.
        running[:i] += neg_loss_t[i, :i]
        running[:i] += neg_terms[m]

    return expected_times, probabilities


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def evaluate_schedule_numpy(
    schedule: Schedule,
    platform: Platform,
    *,
    lost_work: LostWork | None = None,
    keep_probabilities: bool = False,
) -> MakespanEvaluation:
    """NumPy implementation of :func:`repro.core.evaluator.evaluate_schedule`.

    Callers normally go through ``evaluate_schedule(..., backend=...)``; this
    entry point exists for direct kernel testing.  The ``n = 0`` and
    ``lambda = 0`` edge cases are delegated to the reference implementation
    (they are pure bookkeeping, and sharing the code keeps the two backends
    bit-for-bit identical there).
    """
    from .evaluator import evaluate_schedule

    n = schedule.n_tasks
    lam = platform.failure_rate
    if n == 0 or lam == 0.0:
        return evaluate_schedule(
            schedule, platform, lost_work=lost_work,
            keep_probabilities=keep_probabilities, backend="python",
        )

    if lost_work is None and not keep_probabilities and n >= 128:
        # Large-instance common case: a one-shot evaluation is simply a sweep
        # of length one, and the sweep engine's bulk fill beats the per-row
        # loop below.  Small instances stay on the per-row path, whose fixed
        # overhead is lower; both produce bit-identical loss values through
        # the shared canon, so the switch is invisible in the results.
        from dataclasses import replace as _replace

        from .sweep import SweepState

        state = SweepState(
            schedule.workflow, schedule.order, platform, backend="numpy"
        )
        evaluation = state.evaluate(schedule.checkpointed)
        return _replace(
            evaluation, failure_free_makespan=schedule.failure_free_makespan
        )

    import numpy as np

    workflow = schedule.workflow
    order = schedule.order
    tasks = workflow.tasks
    selected = schedule.checkpointed
    weights = np.fromiter(
        (tasks[t].weight for t in order), dtype=np.float64, count=n
    )
    ckpt_costs = np.fromiter(
        (tasks[t].checkpoint_cost if t in selected else 0.0 for t in order),
        dtype=np.float64,
        count=n,
    )

    if lost_work is not None:
        loss = lost_work.work_array + lost_work.recovery_array
    else:
        _, weight, recovery_cost, predecessors = _position_tables(workflow, order)
        predecessors = [tuple(sorted(p)) for p in predecessors]
        checkpointed = [False] * (n + 1)
        for pos_zero, task_index in enumerate(order):
            checkpointed[pos_zero + 1] = task_index in selected
        closures, frontiers = _closure_masks(n, predecessors, checkpointed)
        # Masks are padded to whole 64-bit words so the sweep engine can run
        # the same canon on word-typed matrices.
        mask_bytes = ((n + 64) // 64) * 8
        charge_bits = np.zeros(8 * mask_bytes)
        for j in range(1, n + 1):
            charge_bits[j] = recovery_cost[j] if checkpointed[j] else weight[j]
        charge_lut = _charge_lut(np, charge_bits)
        candidates = _candidate_lists(n, predecessors)
        loss = np.zeros((n + 1, n + 1))
        for k in range(1, n + 1):
            cols, vals = _row_loss_values(
                np, k, candidates[k], predecessors, closures, frontiers,
                charge_lut, mask_bytes,
            )
            if cols:
                loss[k, cols] = vals

    expected_times, probabilities = _theorem3_kernel(
        np, weights, ckpt_costs, loss, lam, platform.downtime, keep_probabilities
    )
    return MakespanEvaluation(
        expected_makespan=math.fsum(expected_times),
        expected_task_times=tuple(expected_times),
        failure_free_makespan=schedule.failure_free_makespan,
        failure_free_work=workflow.total_weight,
        event_probabilities=tuple(probabilities) if probabilities is not None else None,
    )


def batch_evaluate(
    workflow: Workflow,
    order: Sequence[int],
    checkpoint_sets: Iterable[Iterable[int]],
    platform: Platform,
    *,
    backend: str | None = None,
    keep_task_times: bool = True,
) -> list[MakespanEvaluation]:
    """Score many checkpoint sets over one fixed linearization.

    This is the sweep primitive behind the checkpoint-count search and the
    refinement local moves: every candidate shares the same workflow and
    ``order``, so the position / predecessor / candidate tables (and the
    order's linearization check) are derived once instead of per candidate.

    Parameters
    ----------
    workflow, order, platform:
        The instance; ``order`` must be a valid linearization of ``workflow``.
    checkpoint_sets:
        Iterable of checkpoint sets (task indices).  One
        :class:`~repro.core.evaluator.MakespanEvaluation` is returned per
        set, in input order.
    backend:
        ``"auto"`` / ``"python"`` / ``"numpy"``; see
        :func:`repro.core.backend.resolve_backend`.  The Python path simply
        evaluates one :class:`~repro.core.schedule.Schedule` per set and is
        the reference the NumPy path is tested against.
    keep_task_times:
        When ``False``, the returned evaluations carry an empty
        ``expected_task_times`` tuple.  Sweeps that only rank candidates by
        ``expected_makespan`` (the count search, refinement toggles) pass
        ``False`` so a batch of ``n`` candidates costs O(n) rather than
        O(n^2) retained floats; re-evaluate the winner for the full vector.
    """
    from .sweep import SweepState

    order = tuple(int(i) for i in order)
    sets = [frozenset(int(i) for i in selected) for selected in checkpoint_sets]
    state = SweepState(workflow, order, platform, backend=backend)
    if state.is_incremental:
        # Validate every set up front (the incremental path otherwise raises
        # mid-batch, after earlier sets were already evaluated).
        for selected in sets:
            invalid = [i for i in selected if not 0 <= i < workflow.n_tasks]
            if invalid:
                raise ValueError(
                    f"checkpointed contains invalid task indices: {sorted(invalid)}"
                )
    return [
        state.evaluate(selected, keep_task_times=keep_task_times) for selected in sets
    ]
