"""Schedule: a linearization of the DAG plus a set of checkpointed tasks.

Following Section 3 of the paper, a *schedule* answers the two questions of
``DAG-ChkptSched``: in which order are the tasks executed (a linearization of
the DAG — tasks never run concurrently because each one uses the whole
platform) and which task outputs are saved to stable storage once the task
completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .dag import Workflow

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """An execution order and a checkpoint set for a workflow.

    Parameters
    ----------
    workflow:
        The workflow being scheduled.
    order:
        Permutation of all task indices, in execution order.  Must be a valid
        linearization (every task appears after all its predecessors).
    checkpointed:
        Indices of the tasks whose output is checkpointed when they complete.

    Notes
    -----
    Positions are 1-based in the paper (:math:`T_1 \\dots T_n` after
    renumbering); this class exposes 0-based positions but the evaluator
    documents the mapping explicitly.
    """

    workflow: Workflow
    order: tuple[int, ...]
    checkpointed: frozenset[int]

    def __init__(
        self,
        workflow: Workflow,
        order: Sequence[int],
        checkpointed: Iterable[int] = (),
    ) -> None:
        if not isinstance(workflow, Workflow):
            raise TypeError("workflow must be a Workflow")
        order_tuple = tuple(int(i) for i in order)
        if sorted(order_tuple) != list(range(workflow.n_tasks)):
            raise ValueError(
                "order must be a permutation of all task indices "
                f"0..{workflow.n_tasks - 1}"
            )
        if not workflow.is_linearization(order_tuple):
            raise ValueError("order violates a dependency edge of the workflow")
        ckpt = frozenset(int(i) for i in checkpointed)
        # Order-free: the list only feeds an emptiness test and a sorted()
        # error message.
        invalid = [i for i in ckpt if not 0 <= i < workflow.n_tasks]  # reprolint: allow[RL004]
        if invalid:
            raise ValueError(f"checkpointed contains invalid task indices: {sorted(invalid)}")
        object.__setattr__(self, "workflow", workflow)
        object.__setattr__(self, "order", order_tuple)
        object.__setattr__(self, "checkpointed", ckpt)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of scheduled tasks."""
        return len(self.order)

    @property
    def n_checkpointed(self) -> int:
        """Number of checkpointed tasks."""
        return len(self.checkpointed)

    def is_checkpointed(self, task_index: int) -> bool:
        """Whether the given task's output is checkpointed."""
        return task_index in self.checkpointed

    def position_of(self, task_index: int) -> int:
        """0-based position of a task in the execution order."""
        try:
            return self._positions()[task_index]
        except KeyError as exc:
            raise ValueError(f"task {task_index} is not part of the schedule") from exc

    def task_at(self, position: int) -> int:
        """Task index executed at the given 0-based position."""
        return self.order[position]

    def _positions(self) -> dict[int, int]:
        # Cached lazily on the instance; frozen dataclass -> use object.__setattr__.
        cache = self.__dict__.get("_position_cache")
        if cache is None:
            cache = {task: pos for pos, task in enumerate(self.order)}
            object.__setattr__(self, "_position_cache", cache)
        return cache

    def __iter__(self) -> Iterator[int]:
        return iter(self.order)

    def __len__(self) -> int:
        return len(self.order)

    # ------------------------------------------------------------------
    # Derived schedules
    # ------------------------------------------------------------------
    def with_checkpoints(self, checkpointed: Iterable[int]) -> "Schedule":
        """Same order, different checkpoint set."""
        return Schedule(self.workflow, self.order, checkpointed)

    def with_order(self, order: Sequence[int]) -> "Schedule":
        """Same checkpoint set, different linearization."""
        return Schedule(self.workflow, order, self.checkpointed)

    def checkpoint_all(self) -> "Schedule":
        """Checkpoint every task (the ``CkptAlws`` baseline)."""
        return self.with_checkpoints(range(self.workflow.n_tasks))

    def checkpoint_none(self) -> "Schedule":
        """Checkpoint no task (the ``CkptNvr`` baseline)."""
        return self.with_checkpoints(())

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def failure_free_makespan(self) -> float:
        """Makespan with no failure: all work plus all checkpoints, in sequence."""
        workflow = self.workflow
        total = sum(workflow.task(i).weight for i in self.order)
        # sorted(): float addition is not associative, and frozenset order is
        # an implementation detail — ascending task index is the canonical
        # summation order (reprolint RL004).
        total += sum(
            workflow.task(i).checkpoint_cost for i in sorted(self.checkpointed)
        )
        return total

    @property
    def total_checkpoint_cost(self) -> float:
        """Sum of the checkpoint costs paid in a failure-free execution."""
        return sum(
            self.workflow.task(i).checkpoint_cost
            for i in sorted(self.checkpointed)
        )

    def completion_times_failure_free(self) -> tuple[float, ...]:
        """Failure-free completion time of each task, following the order.

        The completion time includes the task's checkpoint when it is
        checkpointed; this is the quantity used by the ``CkptPer`` heuristic to
        place "periodic" checkpoints.
        """
        times = []
        clock = 0.0
        for task_index in self.order:
            task = self.workflow.task(task_index)
            clock += task.weight
            if task_index in self.checkpointed:
                clock += task.checkpoint_cost
            times.append(clock)
        return tuple(times)

    def describe(self) -> str:
        """Human readable summary (order with checkpointed tasks starred)."""
        parts = []
        for task_index in self.order:
            label = self.workflow.task(task_index).name
            if task_index in self.checkpointed:
                label += "*"
            parts.append(label)
        return " -> ".join(parts)
