"""Evaluation-backend selection: pure-Python reference vs NumPy fast path.

The Theorem-3 evaluator exists in two implementations that compute the same
quantity:

* ``"python"`` — the always-available reference loop of
  :mod:`repro.core.evaluator`, kept deliberately close to the paper's
  notation;
* ``"numpy"`` — the vectorized kernel of :mod:`repro.core.evaluator_np`,
  which replaces the interpreted inner loops by array operations and is the
  production path for large instances.

Both saturate overflows at the same :data:`repro.core.expectation.OVERFLOW_EXPONENT`
and agree within floating-point noise (the property tests pin a 1e-9 relative
bound), so callers may treat the backend as a pure performance knob: cache
keys deliberately exclude it, and a cache warmed by one backend serves the
other.

Selection rules, in decreasing precedence:

1. an explicit ``backend="python"`` / ``backend="numpy"`` argument;
2. the ``REPRO_EVAL_BACKEND`` environment variable (consulted when the
   argument is omitted or ``"auto"``);
3. ``"auto"`` — NumPy when it is importable and the instance is large enough
   for vectorization to pay off (:data:`AUTO_NUMPY_MIN_TASKS` tasks), the
   Python reference otherwise.
"""

from __future__ import annotations

import os

__all__ = [
    "AUTO_NUMPY_MIN_TASKS",
    "BACKEND_ENV_VAR",
    "EVAL_BACKENDS",
    "numpy_available",
    "resolve_backend",
]

#: Accepted values of every ``backend=`` parameter (and of the CLI flag).
EVAL_BACKENDS: tuple[str, ...] = ("auto", "python", "numpy")

#: Environment variable overriding the default backend choice.  It applies
#: wherever the backend is left unspecified (or explicitly ``"auto"``), which
#: makes it the one-line switch for whole campaigns — worker processes
#: inherit it, so a parallel sweep follows it too.
BACKEND_ENV_VAR = "REPRO_EVAL_BACKEND"

#: Below this many scheduled tasks, ``"auto"`` keeps the Python reference:
#: the per-call overhead of assembling NumPy arrays exceeds what
#: vectorization saves on tiny instances.
AUTO_NUMPY_MIN_TASKS = 32

_NUMPY_AVAILABLE: bool | None = None


def numpy_available() -> bool:
    """Whether the NumPy fast path can be used in this process."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import numpy  # noqa: F401
        except Exception:  # pragma: no cover - exercised only without numpy
            _NUMPY_AVAILABLE = False
        else:
            _NUMPY_AVAILABLE = True
    return _NUMPY_AVAILABLE


def resolve_backend(backend: str | None = None, *, n_tasks: int | None = None) -> str:
    """Resolve a backend request to a concrete ``"python"`` / ``"numpy"``.

    Parameters
    ----------
    backend:
        ``"python"``, ``"numpy"``, ``"auto"`` or ``None``.  ``None`` and
        ``"auto"`` defer to :data:`BACKEND_ENV_VAR`, then to the automatic
        choice.
    n_tasks:
        Size of the instance about to be evaluated, if known; lets ``"auto"``
        keep tiny instances on the reference path.  ``None`` means "assume
        large" (used when validating a backend name before any instance
        exists).

    Raises
    ------
    ValueError
        For an unknown backend name, or when ``"numpy"`` is requested
        explicitly but NumPy is not importable.
    """
    if backend is None or backend == "auto":
        env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        backend = env if env and env != "auto" else "auto"
    if backend == "auto":
        if not numpy_available():
            return "python"
        if n_tasks is not None and n_tasks < AUTO_NUMPY_MIN_TASKS:
            return "python"
        return "numpy"
    if backend not in ("python", "numpy"):
        raise ValueError(
            f"unknown evaluation backend {backend!r}; expected one of {EVAL_BACKENDS}"
        )
    if backend == "numpy" and not numpy_available():
        raise ValueError(
            "the numpy evaluation backend was requested but numpy is not importable"
        )
    return backend
