"""Pluggable evaluation-backend registry.

The Theorem-3 evaluator exists in three implementations that compute the
same quantity:

* ``"python"`` — the always-available reference loop of
  :mod:`repro.core.evaluator`, kept deliberately close to the paper's
  notation;
* ``"numpy"`` — the vectorized kernel of :mod:`repro.core.evaluator_np`;
* ``"native"`` — the compiled C kernel of
  :mod:`repro.core.evaluator_native`, built on first use when a C
  toolchain is present.

All of them saturate overflows at the same
:data:`repro.core.expectation.OVERFLOW_EXPONENT` and agree within
floating-point noise (the property tests pin a 1e-9 relative bound), so
callers may treat the backend as a pure performance knob: cache keys
deliberately exclude it, and a cache warmed by one backend serves the
others.

Backends are :class:`Backend` objects registered in a process-wide
:class:`BackendRegistry` (:data:`BACKEND_REGISTRY`).  Each carries:

* ``capabilities`` — which entry points it implements (``"evaluate"``,
  ``"batch_evaluate"``, ``"sweep"``, ``"monte_carlo"``); resolution is
  capability-aware, so e.g. the Monte-Carlo engine can never be handed the
  native kernel (which has no simulation path);
* ``priority`` — the ``"auto"`` preference order (higher wins);
* ``min_auto_tasks`` — the instance size below which ``"auto"`` skips it
  (per-call setup would exceed what the fast path saves);
* ``available()`` — a lazy, memoized probe (numpy importable? C toolchain
  present?).

Third-party backends plug in either programmatically
(``BACKEND_REGISTRY.register(Backend(...))``) or through the
``repro.backends`` entry-point group: each entry point must resolve to a
:class:`Backend` instance or a zero-argument callable returning one, and is
loaded lazily on first resolution.

Selection rules, in decreasing precedence:

1. an explicit ``backend="python"`` / ``"numpy"`` / ``"native"`` argument
   (or a :class:`BackendSpec` carrying one);
2. the ``REPRO_EVAL_BACKEND`` environment variable (consulted when the
   argument is omitted or ``"auto"``);
3. ``"auto"`` — the highest-priority backend that is available, implements
   the required capability, and considers the instance large enough.

A named backend that exists but lacks the *required capability* falls back
to the automatic choice among capable backends (so ``backend="native"``
keeps working on a Monte-Carlo call instead of erroring); a named backend
that is *unavailable* on this machine raises a clear :class:`ValueError`.

:func:`resolve_backend` and :data:`EVAL_BACKENDS` are kept as thin
deprecated shims over the registry so pre-registry call sites (and cached
campaign configurations naming a backend) keep working unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .evaluator import MakespanEvaluation
    from .evaluator_native import NativeKernels
    from .lost_work import LostWork
    from .platform import Platform
    from .schedule import Schedule
    from .dag import Workflow

__all__ = [
    "AUTO_NUMPY_MIN_TASKS",
    "BACKEND_ENV_VAR",
    "BACKEND_REGISTRY",
    "Backend",
    "BackendRegistry",
    "BackendSpec",
    "EVAL_BACKENDS",
    "numpy_available",
    "resolve_backend",
]

#: Environment variable overriding the default backend choice.  It applies
#: wherever the backend is left unspecified (or explicitly ``"auto"``), which
#: makes it the one-line switch for whole campaigns — worker processes
#: inherit it, so a parallel sweep follows it too.
BACKEND_ENV_VAR = "REPRO_EVAL_BACKEND"

#: Below this many scheduled tasks, ``"auto"`` keeps the Python reference:
#: the per-call overhead of assembling NumPy arrays (or crossing the ctypes
#: boundary) exceeds what vectorization saves on tiny instances.  Kept under
#: its historical name as the default ``min_auto_tasks`` of the array-based
#: backends.
AUTO_NUMPY_MIN_TASKS = 32

#: Entry-point group scanned for third-party backends.
ENTRY_POINT_GROUP = "repro.backends"

_NUMPY_AVAILABLE: bool | None = None


def numpy_available() -> bool:
    """Whether the NumPy fast path can be used in this process."""
    global _NUMPY_AVAILABLE
    if _NUMPY_AVAILABLE is None:
        try:
            import numpy  # noqa: F401
        except Exception:  # pragma: no cover - exercised only without numpy
            _NUMPY_AVAILABLE = False
        else:
            _NUMPY_AVAILABLE = True
    return _NUMPY_AVAILABLE


# ----------------------------------------------------------------------
# Backend objects
# ----------------------------------------------------------------------
class Backend:
    """One evaluation backend: capabilities, availability and entry points.

    Parameters
    ----------
    name:
        Registry key (the value callers pass as ``backend="..."``).
    capabilities:
        Entry points this backend implements, from ``{"evaluate",
        "batch_evaluate", "sweep", "monte_carlo"}`` (free-form strings are
        allowed for third-party capabilities).
    priority:
        ``"auto"`` preference (higher wins among available backends).
    min_auto_tasks:
        Instance size below which ``"auto"`` passes this backend over.
        Explicit requests ignore it.
    available:
        Zero-argument availability probe (default: always available).  The
        registry calls it lazily — an expensive probe (e.g. the native
        backend's first-use compilation) should memoize internally.
    unavailable_reason:
        Zero-argument callable returning a human-readable reason when the
        probe fails (used by diagnostics such as ``repro backends``).
    evaluate:
        ``(schedule, platform, *, lost_work=None, keep_probabilities=False)
        -> MakespanEvaluation``; required for the ``"evaluate"`` capability.
        Looked up lazily so registering a backend never imports its
        implementation module.
    sweep_kernels:
        Zero-argument callable returning the backend's compiled sweep hooks
        (see :class:`repro.core.sweep.SweepState`); only meaningful for
        backends whose sweep phases live outside the shared numpy engine.
    """

    def __init__(
        self,
        name: str,
        *,
        capabilities: Iterable[str],
        priority: int = 0,
        min_auto_tasks: int = 0,
        available: Callable[[], bool] | None = None,
        unavailable_reason: Callable[[], str | None] | None = None,
        evaluate: Callable[..., "MakespanEvaluation"] | None = None,
        sweep_kernels: Callable[[], Any] | None = None,
    ) -> None:
        self.name = str(name)
        self.capabilities = frozenset(capabilities)
        self.priority = int(priority)
        self.min_auto_tasks = int(min_auto_tasks)
        self._available = available
        self._unavailable_reason = unavailable_reason
        self._evaluate = evaluate
        self._sweep_kernels = sweep_kernels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Backend({self.name!r}, capabilities={sorted(self.capabilities)})"

    def available(self) -> bool:
        """Whether this backend can run in this process (lazy probe)."""
        return True if self._available is None else bool(self._available())

    def unavailable_reason(self) -> str | None:
        """Human-readable availability diagnosis (``None`` when available)."""
        if self.available():
            return None
        if self._unavailable_reason is not None:
            return self._unavailable_reason()
        return f"the {self.name} backend is not available in this process"

    def evaluate(
        self,
        schedule: "Schedule",
        platform: "Platform",
        *,
        lost_work: Any = None,
        keep_probabilities: bool = False,
    ) -> "MakespanEvaluation":
        """One-shot Theorem-3 evaluation through this backend."""
        if self._evaluate is None:
            raise ValueError(
                f"backend {self.name!r} does not implement 'evaluate'"
            )
        return self._evaluate(
            schedule,
            platform,
            lost_work=lost_work,
            keep_probabilities=keep_probabilities,
        )

    def batch_evaluate(
        self,
        workflow: "Workflow",
        order: Sequence[int],
        checkpoint_sets: Iterable[Iterable[int]],
        platform: "Platform",
        *,
        keep_task_times: bool = True,
    ) -> list["MakespanEvaluation"]:
        """Score many checkpoint sets over one linearization.

        Default implementation: the shared incremental sweep engine pinned
        to this backend (which is how all built-in backends batch).
        """
        from .evaluator_np import batch_evaluate as _batch

        return _batch(
            workflow,
            order,
            checkpoint_sets,
            platform,
            backend=self.name,
            keep_task_times=keep_task_times,
        )

    def sweep_kernels(self) -> Any:
        """Compiled sweep hooks, or ``None`` when the shared engine's own
        phases serve this backend."""
        return None if self._sweep_kernels is None else self._sweep_kernels()


@dataclass(frozen=True)
class BackendSpec:
    """One resolved backend request, threaded through the solver layers.

    Collapses what used to travel as parallel ``backend=`` /
    ``evaluator=`` / ``sweep_evaluator=`` keyword arguments into a single
    value: the *backend name* every evaluation of a solve should use, plus
    (optionally) a shared candidate-set ``evaluator`` that replaces the
    private sweep of a checkpoint-count search (the service layer's
    cross-request batching hook — see
    :class:`repro.service.planner.SharedSweepScorer`).

    Every solver entry point that used to take ``backend: str | None``
    accepts a :class:`BackendSpec` in the same position; plain strings and
    ``None`` keep working via :meth:`coerce`.  Cache keys stay
    backend-agnostic exactly as before — a spec never enters a key.
    """

    backend: str | None = None
    evaluator: Callable[[frozenset[int]], "MakespanEvaluation"] | None = None

    @classmethod
    def coerce(cls, value: "BackendSpec | str | None") -> "BackendSpec":
        """Normalize a ``backend=`` argument (name, ``None`` or spec)."""
        if isinstance(value, cls):
            return value
        if value is None or isinstance(value, str):
            return cls(backend=value)
        raise TypeError(
            f"backend must be a backend name, None or BackendSpec, "
            f"got {type(value).__name__}"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class BackendRegistry:
    """Process-wide table of :class:`Backend` objects with resolution rules.

    Use the module-level :data:`BACKEND_REGISTRY` instance; constructing
    private registries is supported for tests.
    """

    def __init__(self) -> None:
        self._backends: dict[str, Backend] = {}
        self._entry_points_loaded = False

    # -- registration ---------------------------------------------------
    def register(self, backend: Backend, *, replace: bool = False) -> Backend:
        """Add ``backend`` under its name; ``replace=True`` overrides."""
        name = backend.name
        if name == "auto":
            raise ValueError("'auto' is reserved for automatic resolution")
        if not replace and name in self._backends:
            raise ValueError(f"backend {name!r} is already registered")
        self._backends[name] = backend
        return backend

    def unregister(self, name: str) -> None:
        """Remove a registered backend (primarily a test hook)."""
        self._backends.pop(name, None)

    def _load_entry_points(self) -> None:
        if self._entry_points_loaded:
            return
        self._entry_points_loaded = True
        try:
            from importlib.metadata import entry_points

            for ep in entry_points(group=ENTRY_POINT_GROUP):
                try:
                    obj = ep.load()
                    backend = obj() if callable(obj) and not isinstance(obj, Backend) else obj
                    if isinstance(backend, Backend) and backend.name not in self._backends:
                        self.register(backend)
                except Exception:  # pragma: no cover - third-party failure
                    continue  # a broken plugin must not break resolution
        except Exception:  # pragma: no cover - metadata machinery missing
            pass

    # -- introspection --------------------------------------------------
    def names(self) -> tuple[str, ...]:
        """Registered backend names, in ``"auto"`` preference order."""
        self._load_entry_points()
        ordered = sorted(
            self._backends.values(), key=lambda b: (b.priority, b.name)
        )
        return tuple(b.name for b in ordered)

    def choices(self) -> tuple[str, ...]:
        """Valid ``backend=`` values: ``"auto"`` plus every registered name
        (what CLI flags and request validators should accept)."""
        return ("auto", *self.names())

    def get(self, name: str) -> Backend:
        """The backend registered under ``name`` (:class:`ValueError` if
        unknown — with the historical message, so error-matching callers
        and tests keep working)."""
        self._load_entry_points()
        try:
            return self._backends[name]
        except KeyError:
            raise ValueError(
                f"unknown evaluation backend {name!r}; "
                f"expected one of {self.choices()}"
            ) from None

    # -- resolution -----------------------------------------------------
    def resolve(
        self,
        spec: "BackendSpec | str | None" = None,
        *,
        n_tasks: int | None = None,
        require: str = "evaluate",
    ) -> Backend:
        """Resolve a backend request to a concrete :class:`Backend`.

        Parameters
        ----------
        spec:
            A backend name, ``None``, or a :class:`BackendSpec`.  ``None``
            and ``"auto"`` defer to :data:`BACKEND_ENV_VAR`, then to the
            automatic choice.
        n_tasks:
            Size of the instance about to be evaluated, if known; lets
            ``"auto"`` keep tiny instances on low-overhead backends.
            ``None`` means "assume large" (used when validating a backend
            name before any instance exists).
        require:
            Capability the caller is about to use.  A *named* backend
            lacking it falls back to the automatic choice among capable
            backends; ``"auto"`` only ever considers capable ones.

        Raises
        ------
        ValueError
            For an unknown backend name, or when a named backend is not
            available on this machine (no numpy / no C toolchain).
        """
        if isinstance(spec, BackendSpec):
            spec = spec.backend
        name = spec
        if name is None or name == "auto":
            env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
            name = env if env and env != "auto" else "auto"
        if name != "auto":
            backend = self.get(name)
            if require not in backend.capabilities:
                # E.g. backend="native" on a Monte-Carlo call: the kernel
                # has no simulation path, so the request degrades to the
                # automatic choice instead of erroring out mid-campaign.
                return self._auto(n_tasks, require)
            if not backend.available():
                raise ValueError(
                    f"the {name} evaluation backend was requested but is "
                    f"not available: {backend.unavailable_reason()}"
                )
            return backend
        return self._auto(n_tasks, require)

    def _auto(self, n_tasks: int | None, require: str) -> Backend:
        self._load_entry_points()
        fallback: Backend | None = None
        for backend in sorted(
            self._backends.values(),
            key=lambda b: (-b.priority, b.name),
        ):
            if require not in backend.capabilities:
                continue
            if not backend.available():
                continue
            if fallback is None or backend.min_auto_tasks == 0:
                fallback = fallback or backend
            if n_tasks is not None and n_tasks < backend.min_auto_tasks:
                continue
            return backend
        if fallback is not None:
            return fallback
        raise ValueError(
            f"no available evaluation backend implements {require!r}"
        )

    def describe(self, *, n_tasks: int | None = None) -> list[dict[str, Any]]:
        """Machine-readable registry listing (the ``repro backends`` data).

        One mapping per backend: name, priority, ``min_auto_tasks``, sorted
        capabilities, availability and — when unavailable — the reason.
        """
        rows: list[dict[str, Any]] = []
        for name in self.names():
            backend = self.get(name)
            available = backend.available()
            row: dict[str, Any] = {
                "name": backend.name,
                "priority": backend.priority,
                "min_auto_tasks": backend.min_auto_tasks,
                "capabilities": sorted(backend.capabilities),
                "available": available,
            }
            if not available:
                row["unavailable_reason"] = backend.unavailable_reason()
            rows.append(row)
        return rows


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
def _python_evaluate(
    schedule: "Schedule",
    platform: "Platform",
    *,
    lost_work: "LostWork | None" = None,
    keep_probabilities: bool = False,
) -> "MakespanEvaluation":
    from .evaluator import evaluate_schedule

    return evaluate_schedule(
        schedule,
        platform,
        lost_work=lost_work,
        keep_probabilities=keep_probabilities,
        backend="python",
    )


def _numpy_evaluate(
    schedule: "Schedule",
    platform: "Platform",
    *,
    lost_work: "LostWork | None" = None,
    keep_probabilities: bool = False,
) -> "MakespanEvaluation":
    from .evaluator_np import evaluate_schedule_numpy

    return evaluate_schedule_numpy(
        schedule,
        platform,
        lost_work=lost_work,
        keep_probabilities=keep_probabilities,
    )


def _native_evaluate(
    schedule: "Schedule",
    platform: "Platform",
    *,
    lost_work: "LostWork | None" = None,
    keep_probabilities: bool = False,
) -> "MakespanEvaluation":
    from .evaluator_native import evaluate_schedule_native

    return evaluate_schedule_native(
        schedule,
        platform,
        lost_work=lost_work,
        keep_probabilities=keep_probabilities,
    )


def _native_ok() -> bool:
    from .evaluator_native import native_available

    return native_available()


def _native_reason() -> str | None:
    from .evaluator_native import native_unavailable_reason

    return native_unavailable_reason()


def _native_kernels() -> "NativeKernels":
    from .evaluator_native import load_kernels

    return load_kernels()


BACKEND_REGISTRY = BackendRegistry()
BACKEND_REGISTRY.register(
    Backend(
        "python",
        capabilities=("evaluate", "batch_evaluate", "sweep", "monte_carlo"),
        priority=0,
        min_auto_tasks=0,
        evaluate=_python_evaluate,
    )
)
BACKEND_REGISTRY.register(
    Backend(
        "numpy",
        capabilities=("evaluate", "batch_evaluate", "sweep", "monte_carlo"),
        priority=10,
        min_auto_tasks=AUTO_NUMPY_MIN_TASKS,
        available=numpy_available,
        unavailable_reason=lambda: "numpy is not importable",
        evaluate=_numpy_evaluate,
    )
)
BACKEND_REGISTRY.register(
    Backend(
        "native",
        capabilities=("evaluate", "batch_evaluate", "sweep"),
        priority=20,
        min_auto_tasks=AUTO_NUMPY_MIN_TASKS,
        available=_native_ok,
        unavailable_reason=_native_reason,
        evaluate=_native_evaluate,
        sweep_kernels=_native_kernels,
    )
)


# ----------------------------------------------------------------------
# Deprecated shims (pre-registry API)
# ----------------------------------------------------------------------
#: Deprecated: the built-in ``backend=`` values, frozen at import time.
#: Prefer ``BACKEND_REGISTRY.choices()``, which also reflects backends
#: registered later (entry points, tests, plugins).
EVAL_BACKENDS: tuple[str, ...] = ("auto", "python", "numpy", "native")


def resolve_backend(
    backend: "BackendSpec | str | None" = None, *, n_tasks: int | None = None
) -> str:
    """Deprecated shim: resolve a backend request to a concrete *name*.

    Pre-registry call sites used the returned string to pick an
    implementation by hand; new code should call
    ``BACKEND_REGISTRY.resolve(...)`` and use the returned
    :class:`Backend` object directly.  Kept because the name is also a
    convenient validator (campaign runners resolve eagerly so a typoed
    ``--backend`` fails before any cache lookup).
    """
    return BACKEND_REGISTRY.resolve(backend, n_tasks=n_tasks).name
