"""Canonical serialization and stable hashing (leaf module, stdlib only).

Shared by :mod:`repro.runtime.keys` (content-addressed cache keys) and
:mod:`repro.heuristics.registry` (derivation of per-heuristic random
streams).  It lives in :mod:`repro.core` so that both the solver layer and
the execution layer can depend on it without depending on each other.

Canonical form: JSON with sorted keys and no whitespace.  CPython's
shortest-``repr`` float formatting makes the serialization of equal floats
identical across platforms and process boundaries; non-finite floats are
rejected because no experiment quantity is legitimately NaN or infinite.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "digest", "stable_seed_words"]


def canonical_json(payload: Any) -> str:
    """Serialize a JSON-able payload to its canonical textual form."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical serialization of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def stable_seed_words(*parts: Any) -> tuple[int, ...]:
    """Four 64-bit words derived from ``parts``, stable across processes.

    Unlike :func:`hash`, which is salted per interpreter, this derivation is
    reproducible everywhere; it feeds ``numpy.random.SeedSequence`` so that
    independent random streams can be re-created identically by any worker.
    """
    raw = hashlib.sha256(canonical_json(list(parts)).encode("utf-8")).digest()
    return tuple(
        int.from_bytes(raw[i : i + 8], "big") for i in range(0, 32, 8)
    )
