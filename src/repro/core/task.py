"""Task model for failure-prone workflow scheduling.

A task is a tightly coupled parallel computation executed on the whole
platform.  Following Section 3 of the paper, each task :math:`T_i` is
described by three durations:

* ``weight`` (:math:`w_i`) — failure-free execution time,
* ``checkpoint_cost`` (:math:`c_i`) — time to save its output to stable storage,
* ``recovery_cost`` (:math:`r_i`) — time to reload a saved output into memory.

Tasks are identified by a dense integer index (their position in the owning
:class:`~repro.core.dag.Workflow`), which keeps every algorithm in the package
array-friendly.  A human readable ``name`` and a free-form ``category`` (used by
the Pegasus-like generators to tag task types such as ``mProjectPP`` or
``Inspiral``) are carried along for reporting purposes only.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping

__all__ = ["Task"]


def _check_finite_nonnegative(value: float, label: str) -> float:
    """Validate that ``value`` is a finite, non-negative real number."""
    try:
        as_float = float(value)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise TypeError(f"{label} must be a real number, got {value!r}") from exc
    if as_float != as_float or as_float in (float("inf"), float("-inf")):
        raise ValueError(f"{label} must be finite, got {value!r}")
    if as_float < 0.0:
        raise ValueError(f"{label} must be non-negative, got {value!r}")
    return as_float


@dataclass(frozen=True)
class Task:
    """A single workflow task.

    Parameters
    ----------
    index:
        Dense identifier of the task inside its workflow (``0 .. n-1``).
    weight:
        Failure-free execution time :math:`w_i` (seconds).  Must be positive for
        computational tasks; zero-weight tasks are allowed because the
        NP-completeness reduction of Theorem 2 uses a zero-weight sink.
    checkpoint_cost:
        Time :math:`c_i` to checkpoint the task output (seconds, ``>= 0``).
    recovery_cost:
        Time :math:`r_i` to recover the checkpointed output (seconds, ``>= 0``).
    name:
        Optional human readable label.  Defaults to ``"T<index>"``.
    category:
        Optional task-type tag (e.g. the Pegasus transformation name).
    metadata:
        Arbitrary extra information (level, lane, ...), never interpreted by the
        scheduling algorithms.
    """

    index: int
    weight: float
    checkpoint_cost: float = 0.0
    recovery_cost: float = 0.0
    name: str = ""
    category: str = ""
    # ``metadata`` participates in equality but not in hashing (dicts are not
    # hashable); workflows hash by structure + task durations.
    metadata: Mapping[str, Any] = field(default_factory=dict, hash=False)

    def __post_init__(self) -> None:
        if not isinstance(self.index, int) or isinstance(self.index, bool):
            raise TypeError(f"task index must be an int, got {self.index!r}")
        if self.index < 0:
            raise ValueError(f"task index must be non-negative, got {self.index}")
        object.__setattr__(self, "weight", _check_finite_nonnegative(self.weight, "weight"))
        object.__setattr__(
            self,
            "checkpoint_cost",
            _check_finite_nonnegative(self.checkpoint_cost, "checkpoint_cost"),
        )
        object.__setattr__(
            self,
            "recovery_cost",
            _check_finite_nonnegative(self.recovery_cost, "recovery_cost"),
        )
        if not self.name:
            object.__setattr__(self, "name", f"T{self.index}")
        if not isinstance(self.metadata, Mapping):
            raise TypeError("metadata must be a mapping")

    # ------------------------------------------------------------------
    # Convenience helpers
    # ------------------------------------------------------------------
    @property
    def w(self) -> float:
        """Alias for :attr:`weight`, matching the paper's notation."""
        return self.weight

    @property
    def c(self) -> float:
        """Alias for :attr:`checkpoint_cost`, matching the paper's notation."""
        return self.checkpoint_cost

    @property
    def r(self) -> float:
        """Alias for :attr:`recovery_cost`, matching the paper's notation."""
        return self.recovery_cost

    def with_costs(
        self,
        *,
        weight: float | None = None,
        checkpoint_cost: float | None = None,
        recovery_cost: float | None = None,
    ) -> "Task":
        """Return a copy of the task with some of its durations replaced."""
        return replace(
            self,
            weight=self.weight if weight is None else weight,
            checkpoint_cost=(
                self.checkpoint_cost if checkpoint_cost is None else checkpoint_cost
            ),
            recovery_cost=(
                self.recovery_cost if recovery_cost is None else recovery_cost
            ),
        )

    def with_index(self, index: int) -> "Task":
        """Return a copy of the task re-labelled with a new dense index."""
        name = self.name
        if name == f"T{self.index}":
            name = f"T{index}"
        return replace(self, index=index, name=name)

    def describe(self) -> str:
        """One-line description used by reports and traces."""
        return (
            f"{self.name}(w={self.weight:g}, c={self.checkpoint_cost:g}, "
            f"r={self.recovery_cost:g})"
        )
