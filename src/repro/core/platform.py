"""Platform model: processors, failure rate, downtime.

Following Section 3 of the paper, the application runs on ``p`` processors
whose individual failures are i.i.d. exponentially distributed with rate
:math:`\\lambda_{proc}` (MTBF :math:`\\mu_{proc} = 1/\\lambda_{proc}`).  Because
every task uses all processors, the platform is equivalent to a single
macro-processor with failure rate :math:`\\lambda = p \\cdot \\lambda_{proc}`,
i.e. MTBF :math:`\\mu = \\mu_{proc}/p`.  Each failure is followed by a constant
downtime ``D``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Platform", "PlatformSpec"]


@dataclass(frozen=True)
class Platform:
    """Failure-prone execution platform.

    Parameters
    ----------
    processors:
        Number of processing elements ``p`` enrolled by the application.
    processor_failure_rate:
        Individual failure rate :math:`\\lambda_{proc}` (per second) of each
        processor.  ``0`` models a failure-free platform.
    downtime:
        Constant downtime ``D`` (seconds) after each failure.
    """

    processors: int = 1
    processor_failure_rate: float = 0.0
    downtime: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.processors, int) or isinstance(self.processors, bool):
            raise TypeError("processors must be an int")
        if self.processors < 1:
            raise ValueError("processors must be >= 1")
        rate = float(self.processor_failure_rate)
        if not math.isfinite(rate) or rate < 0.0:
            raise ValueError("processor_failure_rate must be finite and >= 0")
        down = float(self.downtime)
        if not math.isfinite(down) or down < 0.0:
            raise ValueError("downtime must be finite and >= 0")
        object.__setattr__(self, "processor_failure_rate", rate)
        object.__setattr__(self, "downtime", down)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def failure_rate(self) -> float:
        """Platform failure rate :math:`\\lambda = p \\cdot \\lambda_{proc}`."""
        return self.processors * self.processor_failure_rate

    @property
    def mtbf(self) -> float:
        """Platform MTBF :math:`\\mu = 1/\\lambda` (``inf`` if failure-free)."""
        rate = self.failure_rate
        return math.inf if rate == 0.0 else 1.0 / rate

    @property
    def processor_mtbf(self) -> float:
        """Individual processor MTBF (``inf`` if failure-free)."""
        rate = self.processor_failure_rate
        return math.inf if rate == 0.0 else 1.0 / rate

    @property
    def is_failure_free(self) -> bool:
        """Whether the platform never fails (:math:`\\lambda = 0`)."""
        return self.failure_rate == 0.0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_platform_rate(cls, failure_rate: float, *, downtime: float = 0.0) -> "Platform":
        """Build a platform directly from its aggregated failure rate.

        This is the most convenient constructor for reproducing the paper's
        experiments, which are parameterised by the platform-level
        :math:`\\lambda` (e.g. ``1e-3``).
        """
        return cls(processors=1, processor_failure_rate=float(failure_rate), downtime=downtime)

    @classmethod
    def from_mtbf(cls, mtbf: float, *, processors: int = 1, downtime: float = 0.0) -> "Platform":
        """Build a platform from the *platform-level* MTBF :math:`\\mu` (seconds)."""
        mtbf = float(mtbf)
        if mtbf <= 0.0:
            raise ValueError("mtbf must be positive (use math.inf for failure-free)")
        rate = 0.0 if math.isinf(mtbf) else 1.0 / (mtbf * processors)
        return cls(processors=processors, processor_failure_rate=rate, downtime=downtime)

    @classmethod
    def from_processor_mtbf(
        cls, processor_mtbf: float, *, processors: int = 1, downtime: float = 0.0
    ) -> "Platform":
        """Build a platform from the individual-processor MTBF (seconds)."""
        processor_mtbf = float(processor_mtbf)
        if processor_mtbf <= 0.0:
            raise ValueError("processor_mtbf must be positive")
        rate = 0.0 if math.isinf(processor_mtbf) else 1.0 / processor_mtbf
        return cls(processors=processors, processor_failure_rate=rate, downtime=downtime)

    @classmethod
    def failure_free(cls) -> "Platform":
        """A platform that never fails (used for sanity checks and ratios)."""
        return cls(processors=1, processor_failure_rate=0.0, downtime=0.0)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "Platform":
        """Return a platform whose failure rate is multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return Platform(
            processors=self.processors,
            processor_failure_rate=self.processor_failure_rate * factor,
            downtime=self.downtime,
        )

    def describe(self) -> str:
        """Human readable one-line summary."""
        if self.is_failure_free:
            return f"Platform(p={self.processors}, failure-free)"
        return (
            f"Platform(p={self.processors}, lambda={self.failure_rate:.3g}/s, "
            f"MTBF={self.mtbf:.3g}s, D={self.downtime:g}s)"
        )


@dataclass(frozen=True)
class PlatformSpec:
    """Declarative platform description — the scenario- and CLI-facing view.

    A spec is the three parameters a study sweeps: the per-processor failure
    rate, the downtime after each failure, and the number of processors the
    application enrolls.  :meth:`build` turns it into the equivalent
    :class:`Platform`; with the default single processor, ``failure_rate``
    is exactly the platform-level :math:`\\lambda` the paper's experiments
    are parameterised by.  With ``processors > 1`` the effective platform
    rate is :math:`\\lambda = p \\cdot \\lambda_{proc}` — sweeping ``p`` at a
    fixed per-processor rate is how the processor-count grid axis scales
    the failure pressure.

    Parameters
    ----------
    failure_rate:
        Per-processor failure rate :math:`\\lambda_{proc}` (per second).
    downtime:
        Constant downtime ``D`` (seconds) after each failure.
    processors:
        Number of processors ``p`` (>= 1).
    """

    failure_rate: float = 0.0
    downtime: float = 0.0
    processors: int = 1

    def __post_init__(self) -> None:
        # Reuse Platform's validation so a bad spec fails where it is
        # written, not where a sweep first builds it.
        self.build()

    def build(self) -> Platform:
        """The equivalent :class:`Platform` (rate, downtime, processors)."""
        return Platform(
            processors=self.processors,
            processor_failure_rate=self.failure_rate,
            downtime=self.downtime,
        )

    @property
    def platform_failure_rate(self) -> float:
        """Effective platform rate :math:`\\lambda = p \\cdot \\lambda_{proc}`."""
        return self.processors * float(self.failure_rate)

    @classmethod
    def from_platform(cls, platform: Platform) -> "PlatformSpec":
        """The spec describing an existing :class:`Platform`."""
        return cls(
            failure_rate=platform.processor_failure_rate,
            downtime=platform.downtime,
            processors=platform.processors,
        )

    def describe(self) -> str:
        """Human readable one-line summary (delegates to the platform)."""
        return self.build().describe()
