"""Closed-form expectations for checkpointed computations under failures.

This module implements Equation (1) of the paper and its companions:

.. math::

    E[t(w; c; r)] = e^{\\lambda r} \\left(\\frac{1}{\\lambda} + D\\right)
                    \\left(e^{\\lambda (w + c)} - 1\\right)

which is the expected time to perform ``w`` seconds of work followed by a
``c``-second checkpoint when failures strike as a Poisson process of rate
:math:`\\lambda`, every failure is followed by a constant downtime ``D`` and a
``r``-second recovery, and failures may also strike during checkpoints and
recoveries.  The formula comes from [Bougeret et al., SC'2011] and
[Robert, Vivien, Zaidouni, FTXS'2012], cited as [17, 20] in the paper.

All functions gracefully handle the failure-free limit :math:`\\lambda \\to 0`.
"""

from __future__ import annotations

import math

__all__ = [
    "expected_execution_time",
    "expected_time_lost",
    "success_probability",
    "expected_number_of_failures",
    "OVERFLOW_EXPONENT",
]

#: Largest exponent ``x`` for which ``exp(x)`` is considered representable.
#: Beyond this the expectation is effectively infinite (the schedule will never
#: complete in practice); we return ``math.inf`` rather than raising
#: ``OverflowError`` so that heuristics can still rank such schedules last.
OVERFLOW_EXPONENT = 700.0


def _safe_exp(x: float) -> float:
    """``exp(x)`` that saturates to ``inf`` instead of raising OverflowError."""
    if x > OVERFLOW_EXPONENT:
        return math.inf
    return math.exp(x)


def _safe_expm1(x: float) -> float:
    """``expm1(x)`` that saturates to ``inf`` instead of raising OverflowError."""
    if x > OVERFLOW_EXPONENT:
        return math.inf
    return math.expm1(x)


def expected_execution_time(
    work: float,
    checkpoint: float,
    recovery: float,
    failure_rate: float,
    downtime: float = 0.0,
) -> float:
    """Expected time :math:`E[t(w; c; r)]` of Equation (1).

    Parameters
    ----------
    work:
        Failure-free duration ``w`` of the computation (seconds).
    checkpoint:
        Duration ``c`` of the checkpoint taken right after the computation
        (``0`` if the output is not checkpointed).
    recovery:
        Duration ``r`` of the recovery performed after each failure, before the
        computation is re-attempted.  The first attempt does not pay it.
    failure_rate:
        Exponential failure rate :math:`\\lambda` of the platform.
    downtime:
        Constant downtime ``D`` after each failure.

    Returns
    -------
    float
        The expected completion time.  Equals ``w + c`` when ``failure_rate`` is
        zero and ``inf`` when the exponent overflows (practically
        un-completable work).
    """
    if work < 0 or checkpoint < 0 or recovery < 0:
        raise ValueError("work, checkpoint and recovery must be non-negative")
    if failure_rate < 0:
        raise ValueError("failure_rate must be non-negative")
    if downtime < 0:
        raise ValueError("downtime must be non-negative")
    if failure_rate == 0.0:
        return work + checkpoint
    lam = failure_rate
    # Written as expm1(.)/lam + D*expm1(.) rather than (1/lam + D)*expm1(.) so
    # that vanishingly small failure rates do not go through an infinite 1/lam
    # intermediate (the limit is simply w + c).
    exposure = lam * (work + checkpoint)
    if exposure < 1e-12:
        # The probability of a failure during this computation is negligible
        # (and the general expression below would lose precision in denormal
        # arithmetic): the expectation equals the failure-free duration.
        return work + checkpoint
    grown = _safe_expm1(exposure)
    if math.isinf(grown):
        return math.inf
    return _safe_exp(lam * recovery) * (grown / lam + downtime * grown)


def expected_time_lost(work: float, failure_rate: float) -> float:
    """Expected time lost :math:`E[t_{lost}(w)]` when a failure interrupts ``w``.

    This is the expected elapsed time before the failure, *given* that a failure
    strikes during a computation of length ``w``:

    .. math::

        E[t_{lost}(w)] = \\frac{1}{\\lambda} - \\frac{w}{e^{\\lambda w} - 1}

    In the failure-free limit this converges to ``w / 2`` (a uniformly random
    interruption point), which is what we return when ``failure_rate`` is zero
    or :math:`\\lambda w` is tiny enough to make the formula numerically
    unstable.
    """
    if work < 0:
        raise ValueError("work must be non-negative")
    if failure_rate < 0:
        raise ValueError("failure_rate must be non-negative")
    if work == 0.0:
        return 0.0
    x = failure_rate * work
    if x < 1e-12:
        # Second-order Taylor expansion of the exact formula around x = 0.
        return work / 2.0 - failure_rate * work * work / 12.0
    denom = _safe_expm1(x)
    if math.isinf(denom):
        return 1.0 / failure_rate
    return 1.0 / failure_rate - work / denom


def success_probability(duration: float, failure_rate: float) -> float:
    """Probability that no failure strikes during ``duration`` seconds."""
    if duration < 0:
        raise ValueError("duration must be non-negative")
    if failure_rate < 0:
        raise ValueError("failure_rate must be non-negative")
    return math.exp(-failure_rate * duration)


def expected_number_of_failures(
    work: float,
    checkpoint: float,
    recovery: float,
    failure_rate: float,
) -> float:
    """Expected number of failures before ``w + c`` completes successfully.

    Each attempt after the first pays the recovery ``r``; an attempt succeeds
    with probability :math:`e^{-\\lambda(r + w + c)}` (first attempt:
    :math:`e^{-\\lambda(w+c)}`).  The count follows a geometric law, giving

    .. math::

        E[\\#failures] = e^{\\lambda(w+c)} \\left(1 +
            (e^{\\lambda r} - 1) \\right) - 1
                       = e^{\\lambda(r + w + c)} - 1 + (1 - e^{\\lambda r})

    simplified below.  Mostly used by the simulator's summary statistics and by
    tests that sanity-check the Monte-Carlo engine.
    """
    if failure_rate == 0.0:
        return 0.0
    if work < 0 or checkpoint < 0 or recovery < 0:
        raise ValueError("work, checkpoint and recovery must be non-negative")
    lam = failure_rate
    p_first = math.exp(-lam * (work + checkpoint))
    p_retry = math.exp(-lam * (recovery + work + checkpoint))
    if p_retry == 0.0:
        return math.inf
    # 1 - p_first failures to leave the first attempt, then a geometric number
    # of failed retries with success probability p_retry.
    return (1.0 - p_first) + (1.0 - p_first) * (1.0 - p_retry) / p_retry
