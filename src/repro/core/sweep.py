"""Incremental (delta) evaluation engine for checkpoint-set sweeps.

Every optimisation layer of this reproduction — the paper's ``N = 1..n-1``
checkpoint-count search (Section 5), greedy construction, and local-search
refinement — evaluates a *sweep of near-identical candidates*: consecutive
candidate sets differ by a handful of checkpoint toggles over one fixed
linearization.  Re-running the full Algorithm-1 fill and Theorem-3 recursion
per candidate (what :func:`repro.core.evaluator_np.batch_evaluate` did before
this module existed) throws that structure away.

:class:`SweepState` keeps the whole evaluation pipeline materialised between
candidates and recomputes only what a toggle can actually change.  Three
structural facts make the delta small:

* ``loss[k][i]`` (the :math:`W^i_k + R^i_k` sums of Algorithm 1) depends only
  on checkpoint states at positions ``< k`` — toggling the checkpoint at
  position ``c`` leaves every row ``k <= c`` untouched;
* within the invalidated rows ``k > c``, the Algorithm-1 traversal can only be
  perturbed when ``c`` is an ancestor of some charged position, so rows whose
  reachable-position set (precomputed once per linearization as a bitmask)
  does not contain ``c`` are skipped wholesale;
* the Theorem-3 recursion at position ``i`` reads only loss rows ``k <= i``
  and checkpoint costs at positions ``<= i``, so the per-position
  expectations, event probabilities and running prefix sums for positions
  ``< c`` are reused verbatim — the kernel resumes at ``i = c`` from a stored
  history of the running sums.

The reused prefixes and the recomputed suffixes both apply the exact floating
point operation sequence of the one-shot kernel to bitwise-identical inputs,
so a :class:`SweepState` evaluation is **bit-for-bit equal** to a fresh
:func:`repro.core.evaluator_np.evaluate_schedule_numpy` call (the property
suite in ``tests/test_backend_equivalence.py`` pins this).  The only regime
that defeats prefix reuse is overflow saturation (``inf`` conditional
expectations switch the kernel to masked dot products); the engine detects it
and falls back to a full kernel re-run for exactly those evaluations.

Arbitrary candidate batches degrade gracefully: the cost of an evaluation is
proportional to the suffix behind the *lowest* toggled position, so a batch of
unrelated sets simply pays full-recompute cost — no separate eager fallback
path is needed, and callers never have to classify their batches.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from .backend import resolve_backend
from .evaluator import MakespanEvaluation
from .evaluator_np import _SMALL_EXPOSURE
from .expectation import OVERFLOW_EXPONENT
from .lost_work import _position_tables
from .platform import Platform
from .schedule import Schedule

__all__ = ["SweepState", "SweepStats"]

#: Scratch budget of one bulk-fill chunk (bytes per mask buffer).  Rows are
#: priced independently, so chunking only bounds peak memory — it cannot
#: change any value.
_FILL_CHUNK_BYTES = 32 * 1024 * 1024

#: Distinct relevant-configuration contents remembered per Algorithm-1 row.
#: Probe sweeps oscillate between a base configuration and single-toggle
#: variants, so a handful of entries catches the "toggle reverted, row back
#: to base" refills with a copy instead of a recompute; add-one sweeps never
#: revisit a configuration and simply pay one dict miss per refill.
_ROW_CACHE_ENTRIES = 4


@dataclass
class SweepStats:
    """Work counters of one :class:`SweepState` (cumulative).

    ``fill_seconds`` / ``kernel_seconds`` stay zero unless the state was
    created with ``profile=True`` — the timer calls are kept off the hot path
    by default.  ``kernel_seconds`` covers the vectorized Equation-(1) slab
    *and* the sequential Theorem-3 recursion; everything else (set deltas,
    bookkeeping, result construction) is the caller-visible overhead.
    """

    evaluations: int = 0
    full_recomputes: int = 0
    toggles: int = 0
    rows_refilled: int = 0
    rows_restored: int = 0
    rows_skipped: int = 0
    kernel_positions: int = 0
    fill_seconds: float = 0.0
    kernel_seconds: float = 0.0


class SweepState:
    """Incremental evaluator for many checkpoint sets over one linearization.

    Parameters
    ----------
    workflow, order, platform:
        The instance; ``order`` must be a valid linearization of ``workflow``
        (validated once, not per candidate).
    backend:
        ``"auto"`` / ``"python"`` / ``"numpy"``; see
        :func:`repro.core.backend.resolve_backend`.  The python resolution
        (and the trivial ``n = 0`` / ``lambda = 0`` cases) evaluate each set
        eagerly through the pure-Python reference — exactly what
        ``batch_evaluate`` always did on that path.
    profile:
        Record wall-clock phase timings in :attr:`stats` (adds two
        ``perf_counter`` calls per evaluation phase; off by default).

    Use :meth:`evaluate` with successive candidate sets; the engine diffs each
    set against the previous one and recomputes only the invalidated suffix.
    Results are bit-for-bit identical to per-candidate evaluation on the same
    backend, so cache keys and downstream comparisons are unaffected.
    """

    def __init__(
        self,
        workflow,
        order: Sequence[int],
        platform: Platform,
        *,
        backend: str | None = None,
        profile: bool = False,
    ) -> None:
        self.workflow = workflow
        self.order = tuple(int(i) for i in order)
        self.platform = platform
        self.stats = SweepStats()
        self._profile = bool(profile)
        self._current: frozenset[int] = frozenset()
        self._initialized = False
        self._poisoned = False

        n = len(self.order)
        self._n = n
        lam = platform.failure_rate
        self.backend = resolve_backend(backend, n_tasks=n)
        self._eager = self.backend == "python" or n == 0 or lam == 0.0
        if self._eager:
            return

        # Validate once what Schedule would have validated per candidate.
        if sorted(self.order) != list(range(workflow.n_tasks)):
            raise ValueError(
                f"order must be a permutation of all task indices 0..{workflow.n_tasks - 1}"
            )
        if not workflow.is_linearization(self.order):
            raise ValueError("order violates a dependency edge of the workflow")

        import numpy as np

        from .evaluator_np import (
            _candidate_lists,
            _charge_lut,
            _iter_bits,
            _mask_charges,
        )

        self._np = np
        self._iter_bits = _iter_bits
        self._mask_charges = _mask_charges
        self._lam = lam
        self._downtime = platform.downtime
        self._failure_free_work = workflow.total_weight

        position, weight, recovery_cost, predecessors = _position_tables(
            workflow, self.order
        )
        predecessors = [tuple(sorted(p)) for p in predecessors]
        self._position = position
        self._weight = weight
        self._recovery_cost = recovery_cost
        self._predecessors = predecessors
        self._candidates = _candidate_lists(n, predecessors)

        # The delta-only tables (ancestor / reachability / descendant
        # bitmasks and the row-content cache) are built lazily on the first
        # *incremental* evaluation — a one-shot evaluation (the
        # ``evaluate_schedule_numpy`` fast path) never needs them.
        self._row_reach: list[int] | None = None
        self._desc: list[int] | None = None

        tasks = workflow.tasks
        self._weights = np.asarray(weight[1:], dtype=np.float64)
        self._raw_ckpt_costs = np.fromiter(
            (tasks[t].checkpoint_cost for t in self.order), dtype=np.float64, count=n
        )
        self._ckpt_costs = np.zeros(n)
        self._checkpointed = bytearray(n + 1)
        self._ckpt_bits = 0
        # Masks are padded to whole 64-bit words: the bitwise pipeline runs
        # on uint64 matrices (8x fewer elements than bytes), and the width
        # matches the one-shot fill of ``evaluate_schedule_numpy`` so the
        # shared value canon sees identical rows.
        self._mask_bytes = ((n + 64) // 64) * 8
        self._mask_words = self._mask_bytes // 8
        self._charge_bits = np.zeros(8 * self._mask_bytes)
        self._charge_bits[1 : n + 1] = weight[1:]
        self._byte_bits = np.unpackbits(
            np.arange(256, dtype=np.uint8)[:, None], axis=1, bitorder="little"
        )
        self._charge_lut = _charge_lut(np, self._charge_bits)

        # Byte-matrix mirrors of the traversal masks, which turn the refill
        # of all invalidated rows of one evaluation into a handful of vector
        # operations: gather every row's candidate frontiers into one 3-D
        # block, prefix-OR each row (``accumulate`` along the candidate
        # axis), and read each candidate's freshly visited set as the XOR of
        # consecutive prefix rows — exactly the sequential
        # ``F_i & ~regenerated`` recurrence of Algorithm 1.  Rows are padded
        # to a common width with position 0, whose frontier is the empty
        # mask, so padding slots stay structurally invisible.
        m_max = max((len(c) for c in self._candidates), default=0)
        self._m_max = m_max
        self._cand_len = np.asarray(
            [len(c) for c in self._candidates], dtype=np.intp
        )
        self._cand_pad = np.zeros((n + 2, m_max), dtype=np.intp)
        for k in range(1, n + 1):
            row = self._candidates[k]
            if row:
                self._cand_pad[k, : len(row)] = row
        self._fwords = np.zeros((n + 1, self._mask_words), dtype=np.uint64)
        self._cwords = np.zeros((n + 1, self._mask_words), dtype=np.uint64)
        # Fill scratch, grown lazily to the largest chunk actually needed
        # (never the n * m_max worst case — see _refill_rows' chunking).
        self._f3_buf: Any = None
        self._v3_buf: Any = None
        # All-positive charges mean a non-empty visited set can never sum to
        # zero, so the refill can skip the structural-zero filter.
        self._charge_positive = (
            min(weight[1:], default=1.0) > 0.0
            and min(recovery_cost[1:], default=1.0) > 0.0
        )

        # Candidates whose predecessor list straddles k need their frontier
        # truncated below k at fill time.  Their truncated frontiers are the
        # prefix-ORs of their predecessors' closures, kept as rows of one
        # flat byte table; which prefix each (row, slot) pair reads is fixed
        # by the linearization, so the refill scatter indices are
        # precomputed and a whole row's truncations cost one gather.
        pfbase = [-1] * (n + 1)
        pf_rows = 0
        pred_arrays: dict[int, Any] = {}
        for i in range(1, n + 1):
            preds = predecessors[i]
            if len(preds) >= 2:
                pfbase[i] = pf_rows
                pf_rows += len(preds)
                pred_arrays[i] = np.asarray(preds, dtype=np.intp)
        self._pfbase = pfbase
        self._pred_arrays = pred_arrays
        self._pf_flat = np.zeros((pf_rows, self._mask_words), dtype=np.uint64)
        trunc_dst: list[Any] = [None] * (n + 1)
        trunc_src: list[Any] = [None] * (n + 1)
        for k in range(1, n + 1):
            dst: list[int] = []
            src: list[int] = []
            for slot, i in enumerate(self._candidates[k]):
                preds = predecessors[i]
                if preds[-1] >= k:
                    dst.append(slot)
                    src.append(pfbase[i] + bisect_left(preds, k) - 1)
            if dst:
                trunc_dst[k] = np.asarray(dst, dtype=np.intp)
                trunc_src[k] = np.asarray(src, dtype=np.intp)
        self._trunc_dst = trunc_dst
        self._trunc_src = trunc_src

        # Traversal masks (big-int mirrors drive the incremental updates);
        # populated for the actual configuration by the first evaluation.
        self._closures = [0] * (n + 1)
        self._frontiers = [0] * (n + 1)

        # loss_t[i, k] = loss[k][i] = W^i_k + R^i_k.  The transposed layout
        # makes both kernel reads (loss_t[i, :i]) and the Equation-(1) slab
        # recompute contiguous.  written[k] tracks the nonzero entries of
        # logical row k so a refill clears exactly what it wrote — never a
        # full-matrix memset.  row_cache[k] remembers recent row contents
        # keyed by the row's *relevant* configuration (checkpoint bits below
        # k that the row can actually see), so probe sweeps restore
        # oscillating rows by copy.
        self._loss_t = np.zeros((n + 1, n + 1))
        # -lam-scaled mirror of loss_t: the Theorem-3 recursion accumulates
        # pre-scaled running sums (one np.exp per position, no per-iteration
        # multiply), exactly like the one-shot kernel.
        self._neg_loss_t = np.zeros((n + 1, n + 1))
        self._written: list[Any] = [[] for _ in range(n + 1)]
        self._row_cache: list[dict[int, tuple[Any, Any]]] = [
            {} for _ in range(n + 1)
        ]

        # values_t[i-1, k] = E[X_i | Z^i_k]; col_inf flags saturated columns
        # so the global saturation test stays O(n) per evaluation.
        self._values_t = np.zeros((n, n + 1))
        self._col_inf = np.zeros(n, dtype=bool)

        # running_hist[i] is the running-prefix-sum vector *after* kernel
        # iteration i (row 0 = the initial zeros).  Writing each iteration's
        # advance into its own row records the resume points for free: a later
        # toggle at position c restarts from running_hist[c - 1] with no
        # copying at all.
        self._running_hist = np.zeros((n + 1, n + 1))
        self._base = np.zeros(n)
        self._base[0] = 1.0
        self._expected_times: list[float] = [0.0] * n
        self._probs_buf = np.empty(n)
        self._last_saturated = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of scheduled tasks."""
        return self._n

    @property
    def current(self) -> frozenset[int]:
        """Checkpoint set of the last evaluation (empty before the first)."""
        return self._current

    @property
    def is_incremental(self) -> bool:
        """Whether deltas are evaluated incrementally (numpy path) or eagerly."""
        return not self._eager

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, selected: Iterable[int], *, keep_task_times: bool = True
    ) -> MakespanEvaluation:
        """Evaluate one checkpoint set, reusing everything its delta allows.

        Returns the same :class:`~repro.core.evaluator.MakespanEvaluation`
        a fresh ``evaluate_schedule(..., backend=...)`` call would (for
        ``expected_makespan`` and ``expected_task_times``: bit-for-bit).
        With ``keep_task_times=False`` the per-position vector is dropped so
        ranking sweeps retain O(1) floats per candidate.
        """
        selected = frozenset(int(i) for i in selected)
        self.stats.evaluations += 1
        if self._eager:
            from .evaluator import evaluate_schedule

            evaluation = evaluate_schedule(
                Schedule(self.workflow, self.order, selected),
                self.platform,
                backend="python",
            )
            self._current = selected
            self._initialized = True
            if not keep_task_times:
                evaluation = replace(evaluation, expected_task_times=())
            return evaluation

        invalid = [i for i in selected if not 0 <= i < self.workflow.n_tasks]
        if invalid:
            raise ValueError(
                f"checkpointed contains invalid task indices: {sorted(invalid)}"
            )

        if not self._initialized:
            if self._poisoned:
                self._reset_configuration()
            toggled = sorted(self._position[t] for t in selected)
            pivot = 1
            refill_all = True
        else:
            delta = selected ^ self._current
            if not delta:
                return self._result(keep_task_times)
            toggled = sorted(self._position[t] for t in delta)
            pivot = toggled[0]
            refill_all = False

        # From here until the successful return the internal state is in
        # flux; an exception (KeyboardInterrupt, MemoryError, ...) must not
        # leave a half-updated state serving wrong deltas, so the next
        # evaluation falls back to a full reset + recompute instead.
        self._initialized = False
        self._poisoned = True

        self.stats.toggles += len(toggled)
        checkpointed = self._checkpointed
        for c in toggled:
            now_on = 0 if checkpointed[c] else 1
            checkpointed[c] = now_on
            self._ckpt_bits ^= 1 << c
            self._ckpt_costs[c - 1] = self._raw_ckpt_costs[c - 1] if now_on else 0.0
            self._charge_bits[c] = (
                self._recovery_cost[c] if now_on else self._weight[c]
            )
        # Rebuild the charge-LUT rows of the touched byte positions with the
        # exact expression of ``_charge_lut`` (bit-identical tables).
        byte_bits = self._byte_bits
        charge_bits = self._charge_bits
        for b in {c >> 3 for c in toggled}:
            self._charge_lut[b] = (
                byte_bits * charge_bits[8 * b : 8 * b + 8]
            ).sum(axis=1)
        if refill_all:
            # First evaluation: derive every traversal mask for the actual
            # configuration in one bulk pass (no descendant tables needed —
            # one-shot evaluations never build them).
            self._rebuild_masks()
        else:
            self._ensure_delta_tables()
            desc = self._desc
            assert desc is not None
            affected = 0
            for c in toggled:
                affected |= (1 << c) | desc[c]
            self._update_masks(affected)

        began = time.perf_counter() if self._profile else 0.0
        if refill_all:
            self.stats.full_recomputes += 1
            rows: list[int] = list(range(1, self._n + 1))
        else:
            pmask = 0
            for c in toggled:
                pmask |= 1 << c
            reach = self._row_reach
            assert reach is not None
            rows = [k for k in range(pivot + 1, self._n + 1) if reach[k] & pmask]
            self.stats.rows_skipped += (self._n - pivot) - len(rows)
        self._refill_rows(rows)
        if self._profile:
            self.stats.fill_seconds += time.perf_counter() - began

        self._run_kernel(pivot)
        self._current = selected
        self._initialized = True
        self._poisoned = False
        return self._result(keep_task_times)

    # ------------------------------------------------------------------
    # Traversal-mask maintenance
    # ------------------------------------------------------------------
    def _update_masks(self, affected: int) -> None:
        """Re-derive the traversal masks of the ``affected`` positions.

        ``affected`` must be closed under descendants (a closure depends on
        the checkpoint states of the position and all its ancestors), and is
        processed in ascending position order so dependencies come first.
        Maintains the big-int ``closures`` / ``frontiers`` together with
        their byte mirrors (``cbytes`` / ``fbytes``) and the prefix-closure
        table rows of every affected multi-predecessor position.
        """
        np = self._np
        mask_bytes = self._mask_bytes
        checkpointed = self._checkpointed
        predecessors = self._predecessors
        closures = self._closures
        frontiers = self._frontiers
        fwords = self._fwords
        cwords = self._cwords
        pfbase = self._pfbase
        pf_flat = self._pf_flat
        for p in self._iter_bits(affected):
            preds = predecessors[p]
            base = pfbase[p]
            if base >= 0:
                # Prefix-OR the predecessors' closure rows straight into this
                # position's slice of the flat table; the last row is the
                # full frontier.
                block = pf_flat[base : base + len(preds)]
                np.take(cwords, self._pred_arrays[p], axis=0, out=block)
                np.bitwise_or.accumulate(block, axis=0, out=block)
                full = block[len(preds) - 1]
                frontier = int.from_bytes(full.tobytes(), "little")
                if frontier != frontiers[p]:
                    frontiers[p] = frontier
                    fwords[p] = full
            else:
                frontier = 0
                for q in preds:
                    frontier |= closures[q]
                if frontier != frontiers[p]:
                    frontiers[p] = frontier
                    fwords[p] = np.frombuffer(
                        frontier.to_bytes(mask_bytes, "little"), dtype=np.uint64
                    )
            closure = (1 << p) | (0 if checkpointed[p] else frontier)
            if closure != closures[p]:
                closures[p] = closure
                cwords[p] = np.frombuffer(
                    closure.to_bytes(mask_bytes, "little"), dtype=np.uint64
                )

    def _rebuild_masks(self) -> None:
        """Derive every traversal mask for the current configuration.

        The full-rebuild twin of :meth:`_update_masks` (used by the first
        evaluation): the big-int recursion is the shared
        :func:`~repro.core.evaluator_np._closure_masks` (single source of
        truth with the one-shot fill), the byte mirrors are flushed in two
        bulk assignments, and the prefix-closure table is then rebuilt
        vectorized from the flushed closure rows.
        """
        from .evaluator_np import _closure_masks

        np = self._np
        n = self._n
        mask_bytes = self._mask_bytes
        closures, frontiers = _closure_masks(
            n, self._predecessors, self._checkpointed
        )
        self._closures = closures
        self._frontiers = frontiers
        f_bytes = bytearray()
        c_bytes = bytearray()
        for p in range(1, n + 1):
            f_bytes += frontiers[p].to_bytes(mask_bytes, "little")
            c_bytes += closures[p].to_bytes(mask_bytes, "little")
        words = self._mask_words
        if n:
            self._fwords[1:] = np.frombuffer(
                bytes(f_bytes), dtype=np.uint64
            ).reshape(n, words)
            self._cwords[1:] = np.frombuffer(
                bytes(c_bytes), dtype=np.uint64
            ).reshape(n, words)
        cwords = self._cwords
        pf_flat = self._pf_flat
        pfbase = self._pfbase
        for p, preds_arr in self._pred_arrays.items():
            block = pf_flat[pfbase[p] : pfbase[p] + preds_arr.shape[0]]
            np.take(cwords, preds_arr, axis=0, out=block)
            np.bitwise_or.accumulate(block, axis=0, out=block)

    def _ensure_delta_tables(self) -> None:
        """Build the tables only incremental (delta) evaluations need.

        Ancestor bitmasks per position, their transpose (descendants — the
        set whose closures a toggle invalidates), and per-row reachability
        (the positions any Algorithm-1 traversal of row ``k`` could ever
        visit under *any* configuration: the union of the candidates'
        ancestors below ``k``).  A toggle at a position outside
        ``row_reach[k]`` provably cannot change row ``k``.  Python big-int
        bitsets keep this ``O(n * |E| / 64)``; one-shot evaluations skip it
        entirely.
        """
        if self._row_reach is not None:
            return
        n = self._n
        predecessors = self._predecessors
        anc = [0] * (n + 1)
        for i in range(1, n + 1):
            mask = 0
            for j in predecessors[i]:
                mask |= anc[j] | (1 << j)
            anc[i] = mask
        reach = [0] * (n + 1)
        for k in range(1, n + 1):
            row = 0
            for i in self._candidates[k]:
                row |= anc[i]
            reach[k] = row & ((1 << k) - 1)
        self._row_reach = reach
        succs: list[list[int]] = [[] for _ in range(n + 1)]
        for i in range(1, n + 1):
            for j in predecessors[i]:
                succs[j].append(i)
        desc = [0] * (n + 1)
        for c in range(n, 0, -1):
            mask = 0
            for s in succs[c]:
                mask |= desc[s] | (1 << s)
            desc[c] = mask
        self._desc = desc

    def _reset_configuration(self) -> None:
        """Return to the pristine empty-set state after an aborted evaluation.

        An exception inside :meth:`evaluate` can leave the checkpoint flags,
        charge tables and loss matrices mutually inconsistent; everything
        config-dependent is wiped so the following full recompute starts
        from a known-good baseline.  (The per-row content cache survives:
        its entries are keyed by the relevant configuration and remain
        valid.)
        """
        from .evaluator_np import _charge_lut

        n = self._n
        self._checkpointed[:] = bytes(n + 1)
        self._ckpt_bits = 0
        self._ckpt_costs[:] = 0.0
        self._charge_bits[:] = 0.0
        self._charge_bits[1 : n + 1] = self._weight[1:]
        self._charge_lut = _charge_lut(self._np, self._charge_bits)
        self._loss_t[:] = 0.0
        self._neg_loss_t[:] = 0.0
        self._written = [[] for _ in range(n + 1)]
        self._current = frozenset()

    # ------------------------------------------------------------------
    # Algorithm-1 row refill (bulk closure-mask fill, content-cached)
    # ------------------------------------------------------------------
    def _refill_rows(self, rows: list[int]) -> None:
        """Bring the logical loss rows in ``rows`` up to date, in bulk.

        Row content is a pure function of the row's *relevant* configuration
        (the checkpoint bits inside ``row_reach[k]``), so recently seen
        contents are restored by copy from the per-row cache; everything
        else is recomputed in one vectorized pipeline: gather all candidate
        frontiers into a ``(R, M, mask_bytes)`` block, patch the truncated
        ones from the prefix-closure table, prefix-OR along the candidate
        axis, and read each candidate's visited set off as the XOR of
        consecutive prefix rows (``P_j = P_{j-1} | F_j`` makes the fresh
        bits ``P_j ^ P_{j-1}`` — the vectorized ``F_j & ~regenerated``).
        Values come from the shared :func:`_mask_charges` canon, so they are
        bit-identical to the one-shot fill of ``evaluate_schedule_numpy``;
        cache restores are bitwise exact for the same reason.
        """
        np = self._np
        loss_t = self._loss_t
        written = self._written
        ckpt_bits = self._ckpt_bits
        reach = self._row_reach
        caches = self._row_cache

        # Partition into cache hits and misses, collecting every touched
        # row's stale entries for one batched clear (never a full memset).
        # Before the delta tables exist (the initializing full fill) there
        # is no per-row relevant configuration to key the cache on, so
        # every row is a miss and nothing is cached.
        miss_rows: list[int] = []
        miss_cfgs: list[int | None] = []
        hit_cols: list = []
        hit_vals: list = []
        hit_ks: list[int] = []
        hit_lens: list[int] = []
        stale_arrays: list = []
        stale_ks: list[int] = []
        stale_lens: list[int] = []
        for k in rows:
            stale = written[k]
            if len(stale):
                stale_arrays.append(stale)
                stale_ks.append(k)
                stale_lens.append(len(stale))
            if reach is None:
                miss_rows.append(k)
                miss_cfgs.append(None)
                continue
            cfg = ckpt_bits & reach[k]
            cache = caches[k]
            entry = cache.get(cfg)
            if entry is None:
                miss_rows.append(k)
                miss_cfgs.append(cfg)
            else:
                # Re-insert on hit so eviction is LRU: the hot base
                # configuration a probe sweep keeps returning to must not
                # age out behind a stream of one-off probe configurations.
                del cache[cfg]
                cache[cfg] = entry
                cols, vals = entry
                written[k] = cols
                if len(cols):
                    hit_cols.append(cols)
                    hit_vals.append(vals)
                    hit_ks.append(k)
                    hit_lens.append(len(cols))
        neg_loss_t = self._neg_loss_t
        if stale_arrays:
            cat = np.concatenate(stale_arrays)
            rep = np.repeat(
                np.asarray(stale_ks, dtype=np.intp),
                np.asarray(stale_lens, dtype=np.intp),
            )
            loss_t[cat, rep] = 0.0
            neg_loss_t[cat, rep] = 0.0
        if hit_cols:
            cat = np.concatenate(hit_cols)
            rep = np.repeat(
                np.asarray(hit_ks, dtype=np.intp),
                np.asarray(hit_lens, dtype=np.intp),
            )
            vals = np.concatenate(hit_vals)
            loss_t[cat, rep] = vals
            neg_loss_t[cat, rep] = vals * -self._lam
        self.stats.rows_restored += len(rows) - len(miss_rows)
        self.stats.rows_refilled += len(miss_rows)
        if not miss_rows:
            return

        if not self._m_max:
            empty = np.asarray([], dtype=np.intp)
            for k, cfg in zip(miss_rows, miss_cfgs):
                self._store_row(k, cfg, empty, None)
            return
        # Bound the scratch footprint: high-fan-out instances can have
        # candidate widths near n, so one monolithic (R, M, words) block
        # would be O(n^2 * M) bytes.  Rows are independent, so the batch is
        # simply split into chunks of bounded byte size; per-row values are
        # grouping-independent by construction (the _mask_charges canon).
        chunk = max(1, _FILL_CHUNK_BYTES // (self._m_max * self._mask_bytes))
        for start in range(0, len(miss_rows), chunk):
            self._fill_miss_rows(
                miss_rows[start : start + chunk],
                miss_cfgs[start : start + chunk],
            )

    def _fill_miss_rows(
        self, miss_rows: list[int], miss_cfgs: list[int | None]
    ) -> None:
        """Recompute one bounded chunk of cache-missed rows vectorized."""
        np = self._np
        loss_t = self._loss_t
        neg_loss_t = self._neg_loss_t
        rows_arr = np.asarray(miss_rows, dtype=np.intp)
        n_miss = rows_arr.shape[0]
        width = int(self._cand_len[rows_arr].max())
        empty = rows_arr[:0]
        if width == 0:
            for k, cfg in zip(miss_rows, miss_cfgs):
                self._store_row(k, cfg, empty, None)
            return
        idx = np.take(self._cand_pad[:, :width], rows_arr, axis=0)
        need = n_miss * width
        if self._f3_buf is None or self._f3_buf.shape[0] < need:
            self._f3_buf = np.empty((need, self._mask_words), dtype=np.uint64)
            self._v3_buf = np.empty((need, self._mask_words), dtype=np.uint64)
        frontier_block = self._f3_buf[:need]
        np.take(self._fwords, idx.reshape(-1), axis=0, out=frontier_block)
        acc = frontier_block.reshape(n_miss, width, self._mask_words)
        trunc_rows: list = []
        trunc_slots: list = []
        trunc_srcs: list = []
        trunc_dst = self._trunc_dst
        trunc_src = self._trunc_src
        for local, k in enumerate(miss_rows):
            dst = trunc_dst[k]
            if dst is not None:
                trunc_rows.append(np.full(dst.shape[0], local, dtype=np.intp))
                trunc_slots.append(dst)
                trunc_srcs.append(trunc_src[k])
        if trunc_rows:
            acc[np.concatenate(trunc_rows), np.concatenate(trunc_slots)] = (
                self._pf_flat[np.concatenate(trunc_srcs)]
            )
        np.bitwise_or.accumulate(acc, axis=1, out=acc)
        visited = self._v3_buf[:need].reshape(n_miss, width, self._mask_words)
        visited[:, 0] = acc[:, 0]
        if width > 1:
            np.bitwise_xor(acc[:, 1:], acc[:, :-1], out=visited[:, 1:])
        rowsel, slotsel = np.nonzero(visited.any(axis=2))
        if rowsel.size:
            vals = self._mask_charges(
                np, visited[rowsel, slotsel].view(np.uint8), self._charge_lut
            )
            cols = idx[rowsel, slotsel]
            if not self._charge_positive:
                keep = vals != 0.0
                if not keep.all():
                    vals = vals[keep]
                    cols = cols[keep]
                    rowsel = rowsel[keep]
            ks = rows_arr[rowsel]
            loss_t[cols, ks] = vals
            neg_loss_t[cols, ks] = vals * -self._lam
            bounds = np.searchsorted(rowsel, np.arange(n_miss + 1)).tolist()
            for local, (k, cfg) in enumerate(zip(miss_rows, miss_cfgs)):
                lo = bounds[local]
                hi = bounds[local + 1]
                if lo == hi:
                    self._store_row(k, cfg, empty, None)
                else:
                    self._store_row(k, cfg, cols[lo:hi], vals[lo:hi])
        else:
            for k, cfg in zip(miss_rows, miss_cfgs):
                self._store_row(k, cfg, empty, None)

    def _store_row(self, k: int, cfg: int | None, cols, vals) -> None:
        """Record a freshly computed row in ``written`` and the row cache.

        ``cfg is None`` (the initializing full fill, before the delta tables
        exist) records the row without caching it.  Cached contents are
        copied out of their batch arrays: a slice view would pin the whole
        chunk's base array for the lifetime of the cache entry.  Copies are
        bitwise identical, so the exactness guarantee is unaffected.
        """
        if cfg is None:
            self._written[k] = cols
            return
        cols = cols.copy()
        if vals is not None:
            vals = vals.copy()
        self._written[k] = cols
        cache = self._row_cache[k]
        if len(cache) >= _ROW_CACHE_ENTRIES:
            cache.pop(next(iter(cache)))
        cache[cfg] = (cols, vals)

    # ------------------------------------------------------------------
    # Theorem-3 kernel: Equation-(1) slab + recursion resumed at the pivot
    # ------------------------------------------------------------------
    def _run_kernel(self, pivot: int) -> None:
        np = self._np
        n = self._n
        lam = self._lam
        began = time.perf_counter() if self._profile else 0.0

        # Every value the toggles can change sits in columns i >= pivot of the
        # conditional-expectation matrix (changed loss entries have i >= k >
        # pivot; the changed checkpoint costs are at positions >= pivot), so
        # one slab recompute over rows pivot-1.. of values_t restores the
        # exact state a full one-shot computation would produce.
        lo = pivot
        m0 = lo - 1
        loss_t = self._loss_t
        values_t = self._values_t
        sub = loss_t[lo:, :]
        diagonal = loss_t.diagonal()[1:]
        wc = self._weights[m0:] + self._ckpt_costs[m0:]
        with np.errstate(over="ignore"):
            exposure = lam * (sub + wc[:, None])
            grown = np.expm1(np.minimum(exposure, OVERFLOW_EXPONENT))
            rec_exposure = lam * np.maximum(diagonal[m0:, None] - sub, 0.0)
            slab = np.exp(np.minimum(rec_exposure, OVERFLOW_EXPONENT)) * (
                grown / lam + self._downtime * grown
            )
        overflow = (exposure > OVERFLOW_EXPONENT) | (rec_exposure > OVERFLOW_EXPONENT)
        if overflow.any():
            slab[overflow] = np.inf
        tiny = exposure < _SMALL_EXPOSURE
        if tiny.any():
            failure_free = sub + wc[:, None]
            slab[tiny] = failure_free[tiny]
        values_t[m0:, :] = slab
        self._col_inf[m0:] = np.isinf(slab).any(axis=1)
        saturated = bool(self._col_inf.any())

        # Saturation switches the dot products to their masked form, which
        # changes summation shapes — the stored prefix is only reusable when
        # both the previous and the current run are unsaturated.
        start = lo
        if saturated or self._last_saturated:
            start = 1

        with np.errstate(over="ignore"):
            exponent_bound = lam * float(
                (diagonal + self._weights + self._ckpt_costs).sum()
            )
        may_clip = not exponent_bound <= OVERFLOW_EXPONENT - 1.0

        base = self._base
        running_hist = self._running_hist
        probs_buf = self._probs_buf
        neg_loss_t = self._neg_loss_t
        # Same pre-scaled accumulation as the one-shot kernel: running sums
        # carry -lam * (loss + terms), so each position needs one np.exp.
        neg_terms = (self._weights + self._ckpt_costs) * -lam
        values_t = self._values_t
        expected_times = self._expected_times
        for i in range(start, n + 1):
            m = i - 1
            probs = probs_buf[:i]
            if m:
                prev = running_hist[m][:m]
                head = probs[:m]
                np.exp(prev, out=head)
                head *= base[:m]
                if may_clip:
                    clipped = prev < -OVERFLOW_EXPONENT
                    if clipped.any():
                        head[clipped] = 0.0
                remaining = 1.0 - float(head.sum())
                if remaining < 0.0:
                    remaining = 0.0
                elif remaining > 1.0:
                    remaining = 1.0
            else:
                remaining = 1.0
            probs[m] = remaining
            if i >= 2:
                base[m] = remaining

            column = values_t[m, :i]
            if saturated:
                mask = probs > 0.0
                expected_xi = float(probs[mask] @ column[mask])
            else:
                expected_xi = float(probs @ column)
            expected_times[m] = expected_xi

            # Advance into this iteration's own history row: entries [i:] of
            # row i are never written, so they hold the zeros a fresh kernel
            # would see, and row i-1 doubles as the resume snapshot.
            cur = running_hist[i]
            np.add(running_hist[m][:i], neg_loss_t[i, :i], out=cur[:i])
            cur[:i] += neg_terms[m]

        self._last_saturated = saturated
        self.stats.kernel_positions += n + 1 - start
        if self._profile:
            self.stats.kernel_seconds += time.perf_counter() - began

    def _result(self, keep_task_times: bool) -> MakespanEvaluation:
        expected_times = self._expected_times
        return MakespanEvaluation(
            expected_makespan=math.fsum(expected_times),
            expected_task_times=tuple(expected_times) if keep_task_times else (),
            failure_free_makespan=(
                self._failure_free_work + float(self._ckpt_costs.sum())
            ),
            failure_free_work=self._failure_free_work,
        )
