"""Incremental (delta) evaluation engine for checkpoint-set sweeps.

Every optimisation layer of this reproduction — the paper's ``N = 1..n-1``
checkpoint-count search (Section 5), greedy construction, and local-search
refinement — evaluates a *sweep of near-identical candidates*: consecutive
candidate sets differ by a handful of checkpoint toggles over one fixed
linearization.  Re-running the full Algorithm-1 fill and Theorem-3 recursion
per candidate (what :func:`repro.core.evaluator_np.batch_evaluate` did before
this module existed) throws that structure away.

:class:`SweepState` keeps the whole evaluation pipeline materialised between
candidates and recomputes only what a toggle can actually change.  Three
structural facts make the delta small:

* ``loss[k][i]`` (the :math:`W^i_k + R^i_k` sums of Algorithm 1) depends only
  on checkpoint states at positions ``< k`` — toggling the checkpoint at
  position ``c`` leaves every row ``k <= c`` untouched;
* within the invalidated rows ``k > c``, the Algorithm-1 traversal can only be
  perturbed when ``c`` is an ancestor of some charged position, so rows whose
  reachable-position set (precomputed once per linearization as a bitmask)
  does not contain ``c`` are skipped wholesale;
* the Theorem-3 recursion at position ``i`` reads only loss rows ``k <= i``
  and checkpoint costs at positions ``<= i``, so the per-position
  expectations, event probabilities and running prefix sums for positions
  ``< c`` are reused verbatim — the kernel resumes at ``i = c`` from a stored
  history of the running sums.

The reused prefixes and the recomputed suffixes both apply the exact floating
point operation sequence of the one-shot kernel to bitwise-identical inputs,
so a :class:`SweepState` evaluation is **bit-for-bit equal** to a fresh
:func:`repro.core.evaluator_np.evaluate_schedule_numpy` call (the property
suite in ``tests/test_backend_equivalence.py`` pins this).  The only regime
that defeats prefix reuse is overflow saturation (``inf`` conditional
expectations switch the kernel to masked dot products); the engine detects it
and falls back to a full kernel re-run for exactly those evaluations.

Arbitrary candidate batches degrade gracefully: the cost of an evaluation is
proportional to the suffix behind the *lowest* toggled position, so a batch of
unrelated sets simply pays full-recompute cost — no separate eager fallback
path is needed, and callers never have to classify their batches.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from dataclasses import dataclass, replace
from itertools import chain
from typing import Any, Iterable, Sequence

from .backend import BACKEND_REGISTRY, resolve_backend
from .evaluator import MakespanEvaluation
from .evaluator_np import _SMALL_EXPOSURE
from .expectation import OVERFLOW_EXPONENT
from .lost_work import _position_tables
from .platform import Platform
from .dag import Workflow
from .schedule import Schedule

__all__ = ["SweepState", "SweepStats"]

#: Scratch budget of one bulk-fill chunk (bytes per mask buffer).  Rows are
#: priced independently, so chunking only bounds peak memory — it cannot
#: change any value.
_FILL_CHUNK_BYTES = 32 * 1024 * 1024

#: Distinct relevant-configuration contents remembered per Algorithm-1 row.
#: Probe sweeps oscillate between a base configuration and single-toggle
#: variants, so a handful of entries catches the "toggle reverted, row back
#: to base" refills with a copy instead of a recompute; add-one sweeps never
#: revisit a configuration and simply pay one dict miss per refill.
_ROW_CACHE_ENTRIES = 4

#: Shared per-(workflow, order) table entries reused across
#: :class:`SweepState` constructions.  One-shot evaluation paths
#: (``evaluate_schedule`` on the numpy and native backends) build a fresh
#: state per call, so repeated evaluations of one instance would otherwise
#: re-validate the linearization and rebuild every position/candidate/mask
#: table each time.  Keyed by ``(id(workflow), order)``; each entry keeps a
#: strong reference to its workflow, so an ``id`` cannot be recycled while
#: its entry is alive.  Bounded LRU.
_TABLES_LRU_ENTRIES = 8
_TABLES_CACHE: dict[tuple[int, tuple[int, ...]], "_InstanceTables"] = {}

#: The 256 x 8 little-endian bit-expansion table used by the numpy charge
#: LUT; a pure constant, built once per process.
_BYTE_BITS = None


def _byte_bit_table(np: Any) -> Any:
    global _BYTE_BITS
    if _BYTE_BITS is None:
        _BYTE_BITS = np.unpackbits(
            np.arange(256, dtype=np.uint8)[:, None], axis=1, bitorder="little"
        )
    return _BYTE_BITS


class _InstanceTables:
    """Backend-independent tables of one (workflow, order) instance.

    Everything here is a pure function of the workflow and its linearization
    — never of the checkpoint configuration — and is treated as read-only
    after construction, so any number of :class:`SweepState` instances (and
    both the numpy and native backends) can share one entry.  The
    fill-variant sections (padded candidate matrix for the numpy fill, CSR
    mirrors for the C fill) and the delta tables are built lazily by the
    first state that needs them; rebuilds are idempotent, so a racing
    duplicate build is wasteful but never wrong.
    """

    __slots__ = (
        "workflow",
        "order",
        "n",
        "position",
        "weight",
        "recovery_cost",
        "predecessors",
        "candidates",
        "cand_len",
        "m_max",
        "mask_bytes",
        "mask_words",
        "weights",
        "raw_ckpt_costs",
        "charge_template",
        "charge_positive",
        "pfbase",
        "pred_arrays",
        "pf_rows",
        "cand_pad",
        "trunc_dst",
        "trunc_src",
        "cand_ptr",
        "cand_idx",
        "pred_ptr",
        "pred_idx",
        "cand_total",
        "row_reach",
        "desc",
    )

    def __init__(self, workflow: Workflow, order: tuple[int, ...], np: Any) -> None:
        from .evaluator_np import _candidate_lists

        self.workflow = workflow
        self.order = order
        n = len(order)
        self.n = n
        position, weight, recovery_cost, predecessors = _position_tables(
            workflow, order
        )
        predecessors = [tuple(sorted(p)) for p in predecessors]
        self.position = position
        self.weight = weight
        self.recovery_cost = recovery_cost
        self.predecessors = predecessors
        self.candidates = _candidate_lists(n, predecessors)
        self.cand_len = np.asarray([len(c) for c in self.candidates], dtype=np.intp)
        self.m_max = max((len(c) for c in self.candidates), default=0)
        # Masks are padded to whole 64-bit words: the bitwise pipeline runs
        # on uint64 matrices (8x fewer elements than bytes), and the width
        # matches the one-shot fill of ``evaluate_schedule_numpy`` so the
        # shared value canon sees identical rows.
        self.mask_bytes = ((n + 64) // 64) * 8
        self.mask_words = self.mask_bytes // 8
        self.weights = np.asarray(weight[1:], dtype=np.float64)
        tasks = workflow.tasks
        self.raw_ckpt_costs = np.fromiter(
            (tasks[t].checkpoint_cost for t in order), dtype=np.float64, count=n
        )
        charge = np.zeros(8 * self.mask_bytes)
        charge[1 : n + 1] = weight[1:]
        self.charge_template = charge
        # All-positive charges mean a non-empty visited set can never sum to
        # zero, so the refill can skip the structural-zero filter.
        self.charge_positive = (
            min(weight[1:], default=1.0) > 0.0
            and min(recovery_cost[1:], default=1.0) > 0.0
        )
        # Candidates whose predecessor list straddles k need their frontier
        # truncated below k at fill time; multi-predecessor positions get a
        # block of prefix-closure rows in the per-state flat table.
        pfbase = [-1] * (n + 1)
        pf_rows = 0
        pred_arrays: dict[int, Any] = {}
        for i in range(1, n + 1):
            preds = predecessors[i]
            if len(preds) >= 2:
                pfbase[i] = pf_rows
                pf_rows += len(preds)
                pred_arrays[i] = np.asarray(preds, dtype=np.intp)
        self.pfbase = pfbase
        self.pred_arrays = pred_arrays
        self.pf_rows = pf_rows
        self.cand_pad = None
        self.trunc_dst = None
        self.trunc_src = None
        self.cand_ptr = None
        self.cand_idx = None
        self.pred_ptr = None
        self.pred_idx = None
        self.cand_total = 0
        self.row_reach = None
        self.desc = None

    def ensure_numpy_fill(self, np: Any) -> None:
        """Build the padded-candidate / truncation tables the numpy fill reads."""
        if self.cand_pad is not None:
            return
        n = self.n
        cand_pad = np.zeros((n + 2, self.m_max), dtype=np.intp)
        for k in range(1, n + 1):
            row = self.candidates[k]
            if row:
                cand_pad[k, : len(row)] = row
        trunc_dst: list[Any] = [None] * (n + 1)
        trunc_src: list[Any] = [None] * (n + 1)
        pfbase = self.pfbase
        for k in range(1, n + 1):
            dst: list[int] = []
            src: list[int] = []
            for slot, i in enumerate(self.candidates[k]):
                preds = self.predecessors[i]
                if preds[-1] >= k:
                    dst.append(slot)
                    src.append(pfbase[i] + bisect_left(preds, k) - 1)
            if dst:
                trunc_dst[k] = np.asarray(dst, dtype=np.intp)
                trunc_src[k] = np.asarray(src, dtype=np.intp)
        self.trunc_dst = trunc_dst
        self.trunc_src = trunc_src
        self.cand_pad = cand_pad

    def ensure_native_fill(self, np: Any) -> None:
        """Build the CSR candidate / predecessor mirrors the C fill reads."""
        if self.cand_ptr is not None:
            return
        n = self.n
        cand_ptr = np.zeros(len(self.candidates) + 1, dtype=np.int64)
        np.cumsum(self.cand_len, out=cand_ptr[1:])
        total = int(cand_ptr[-1])
        cand_idx = np.fromiter(
            chain.from_iterable(self.candidates), dtype=np.int64, count=total
        )
        pred_len = np.asarray([len(p) for p in self.predecessors], dtype=np.int64)
        pred_ptr = np.zeros(n + 2, dtype=np.int64)
        np.cumsum(pred_len, out=pred_ptr[1:])
        pred_idx = np.fromiter(
            chain.from_iterable(self.predecessors),
            dtype=np.int64,
            count=int(pred_ptr[-1]),
        )
        self.cand_idx = cand_idx
        self.pred_ptr = pred_ptr
        self.pred_idx = pred_idx
        self.cand_total = total
        self.cand_ptr = cand_ptr

    def ensure_delta(self) -> None:
        """Build the ancestor / reachability / descendant delta tables.

        Ancestor bitmasks per position, their transpose (descendants — the
        set whose closures a toggle invalidates), and per-row reachability
        (the positions any Algorithm-1 traversal of row ``k`` could ever
        visit under *any* configuration: the union of the candidates'
        ancestors below ``k``).  A toggle at a position outside
        ``row_reach[k]`` provably cannot change row ``k``.  Python big-int
        bitsets keep this ``O(n * |E| / 64)``; one-shot evaluations skip it
        entirely.
        """
        if self.row_reach is not None:
            return
        n = self.n
        predecessors = self.predecessors
        anc = [0] * (n + 1)
        for i in range(1, n + 1):
            mask = 0
            for j in predecessors[i]:
                mask |= anc[j] | (1 << j)
            anc[i] = mask
        reach = [0] * (n + 1)
        for k in range(1, n + 1):
            row = 0
            for i in self.candidates[k]:
                row |= anc[i]
            reach[k] = row & ((1 << k) - 1)
        succs: list[list[int]] = [[] for _ in range(n + 1)]
        for i in range(1, n + 1):
            for j in predecessors[i]:
                succs[j].append(i)
        desc = [0] * (n + 1)
        for c in range(n, 0, -1):
            mask = 0
            for s in succs[c]:
                mask |= desc[s] | (1 << s)
            desc[c] = mask
        self.desc = desc
        self.row_reach = reach


def _instance_tables(workflow: Workflow, order: tuple[int, ...], np: Any) -> _InstanceTables:
    """Return the (cached) shared tables of one validated (workflow, order).

    Validation runs on cache misses only: an entry can only have entered the
    cache through a successful validation of the identical workflow object
    and order tuple.
    """
    key = (id(workflow), order)
    entry = _TABLES_CACHE.get(key)
    if entry is not None and entry.workflow is workflow:
        _TABLES_CACHE[key] = _TABLES_CACHE.pop(key)
        return entry
    # Validate once what Schedule would have validated per candidate.
    if sorted(order) != list(range(workflow.n_tasks)):
        raise ValueError(
            f"order must be a permutation of all task indices 0..{workflow.n_tasks - 1}"
        )
    if not workflow.is_linearization(order):
        raise ValueError("order violates a dependency edge of the workflow")
    entry = _InstanceTables(workflow, order, np)
    while len(_TABLES_CACHE) >= _TABLES_LRU_ENTRIES:
        _TABLES_CACHE.pop(next(iter(_TABLES_CACHE)))
    _TABLES_CACHE[key] = entry
    return entry


@dataclass
class SweepStats:
    """Work counters of one :class:`SweepState` (cumulative).

    ``fill_seconds`` / ``kernel_seconds`` stay zero unless the state was
    created with ``profile=True`` — the timer calls are kept off the hot path
    by default.  ``kernel_seconds`` covers the vectorized Equation-(1) slab
    *and* the sequential Theorem-3 recursion; everything else (set deltas,
    bookkeeping, result construction) is the caller-visible overhead.
    """

    evaluations: int = 0
    full_recomputes: int = 0
    toggles: int = 0
    rows_refilled: int = 0
    rows_restored: int = 0
    rows_skipped: int = 0
    kernel_positions: int = 0
    fill_seconds: float = 0.0
    kernel_seconds: float = 0.0


class SweepState:
    """Incremental evaluator for many checkpoint sets over one linearization.

    Parameters
    ----------
    workflow, order, platform:
        The instance; ``order`` must be a valid linearization of ``workflow``
        (validated once, not per candidate).
    backend:
        ``"auto"`` / ``"python"`` / ``"numpy"`` / ``"native"`` (or any
        registered backend name); see
        :meth:`repro.core.backend.BackendRegistry.resolve`.  The python
        resolution (and the trivial ``n = 0`` / ``lambda = 0`` cases)
        evaluate each set eagerly through the pure-Python reference —
        exactly what ``batch_evaluate`` always did on that path.  The
        native resolution swaps the Algorithm-1 fill and the Theorem-3
        recursion for the compiled kernels of
        :mod:`repro.core.evaluator_native` while sharing all mask
        maintenance and delta bookkeeping with the numpy engine.
    profile:
        Record wall-clock phase timings in :attr:`stats` (adds two
        ``perf_counter`` calls per evaluation phase; off by default).

    Use :meth:`evaluate` with successive candidate sets; the engine diffs each
    set against the previous one and recomputes only the invalidated suffix.
    Results are bit-for-bit identical to per-candidate evaluation on the same
    backend, so cache keys and downstream comparisons are unaffected.
    """

    def __init__(
        self,
        workflow: Workflow,
        order: Sequence[int],
        platform: Platform,
        *,
        backend: str | None = None,
        profile: bool = False,
    ) -> None:
        self.workflow = workflow
        self.order = tuple(int(i) for i in order)
        self.platform = platform
        self.stats = SweepStats()
        self._profile = bool(profile)
        self._current: frozenset[int] = frozenset()
        self._initialized = False
        self._poisoned = False

        n = len(self.order)
        self._n = n
        lam = platform.failure_rate
        self.backend = resolve_backend(backend, n_tasks=n)
        self._eager = self.backend == "python" or n == 0 or lam == 0.0
        if self._eager:
            return

        import numpy as np

        from .evaluator_np import _charge_lut, _iter_bits, _mask_charges

        self._np = np
        self._iter_bits = _iter_bits
        self._mask_charges = _mask_charges
        # Compiled fill/kernel bindings when the resolved backend provides
        # them (the native backend); None keeps the numpy phases.
        self._kernels = BACKEND_REGISTRY.get(self.backend).sweep_kernels()
        self._lam = lam
        self._downtime = platform.downtime
        self._failure_free_work = workflow.total_weight

        # Shared, backend-independent instance tables — validated and built
        # once per (workflow, order), cached across SweepState constructions
        # so one-shot evaluation loops pay only for per-state mutable
        # buffers.  Everything taken from the entry is read-only here.
        tables = _instance_tables(workflow, self.order, np)
        self._tables = tables
        self._position = tables.position
        self._weight = tables.weight
        self._recovery_cost = tables.recovery_cost
        self._predecessors = tables.predecessors
        self._candidates = tables.candidates
        self._weights = tables.weights
        self._raw_ckpt_costs = tables.raw_ckpt_costs
        self._mask_bytes = tables.mask_bytes
        self._mask_words = tables.mask_words
        self._m_max = tables.m_max
        self._cand_len = tables.cand_len
        self._charge_positive = tables.charge_positive
        self._pfbase = tables.pfbase
        self._pred_arrays = tables.pred_arrays

        # The delta-only tables (ancestor / reachability / descendant
        # bitmasks and the row-content cache) are built lazily on the first
        # *incremental* evaluation — a one-shot evaluation (the
        # ``evaluate_schedule_numpy`` fast path) never needs them.  They may
        # already exist on the shared entry from an earlier state.
        self._row_reach: list[int] | None = tables.row_reach
        self._desc: list[int] | None = tables.desc

        self._ckpt_costs = np.zeros(n)
        self._checkpointed = bytearray(n + 1)
        self._ckpt_bits = 0
        self._charge_bits = tables.charge_template.copy()
        if self._kernels is None:
            # Byte-matrix machinery of the numpy fill: the refill gathers
            # every row's candidate frontiers into one 3-D block, patches
            # truncated slots from the prefix-closure table, prefix-ORs
            # along the candidate axis and reads each candidate's freshly
            # visited set as the XOR of consecutive prefix rows — exactly
            # the sequential ``F_i & ~regenerated`` recurrence of
            # Algorithm 1.  Rows are padded to a common width with position
            # 0, whose frontier is the empty mask, so padding slots stay
            # structurally invisible.
            tables.ensure_numpy_fill(np)
            self._byte_bits = _byte_bit_table(np)
            self._charge_lut = _charge_lut(np, self._charge_bits)
            self._cand_pad = tables.cand_pad
            self._trunc_dst = tables.trunc_dst
            self._trunc_src = tables.trunc_src
        else:
            # The C fill prices visited bits straight off _charge_bits and
            # re-derives truncated frontiers from the predecessor closures,
            # so the byte-LUT and scatter machinery is numpy-only.  What it
            # does need are CSR mirrors of the candidate / predecessor lists
            # plus per-row compaction buffers (sized for a full fill).
            tables.ensure_native_fill(np)
            self._byte_bits = None
            self._charge_lut = None
            self._cand_pad = None
            self._trunc_dst = None
            self._trunc_src = None
            self._cand_ptr = tables.cand_ptr
            self._cand_idx = tables.cand_idx
            self._pred_ptr = tables.pred_ptr
            self._pred_idx = tables.pred_idx
            total = tables.cand_total
            self._out_cols = np.empty(max(total, 1), dtype=np.int64)
            self._out_vals = np.empty(max(total, 1))
            self._out_off = np.empty(n + 1, dtype=np.int64)
            self._out_counts = np.empty(n + 1, dtype=np.int64)
            self._rows_buf = np.empty(n + 1, dtype=np.int64)
        self._fwords = np.zeros((n + 1, self._mask_words), dtype=np.uint64)
        self._cwords = np.zeros((n + 1, self._mask_words), dtype=np.uint64)
        # Fill scratch, grown lazily to the largest chunk actually needed
        # (never the n * m_max worst case — see _refill_rows' chunking).
        self._f3_buf: Any = None
        self._v3_buf: Any = None
        # Per-state prefix-closure rows (config-dependent content; the
        # layout — which block belongs to which position — is fixed by the
        # shared ``pfbase`` / ``pred_arrays``).
        self._pf_flat = np.zeros((tables.pf_rows, self._mask_words), dtype=np.uint64)

        # Traversal masks (big-int mirrors drive the incremental updates);
        # populated for the actual configuration by the first evaluation.
        self._closures = [0] * (n + 1)
        self._frontiers = [0] * (n + 1)

        # loss_t[i, k] = loss[k][i] = W^i_k + R^i_k.  The transposed layout
        # makes both kernel reads (loss_t[i, :i]) and the Equation-(1) slab
        # recompute contiguous.  written[k] tracks the nonzero entries of
        # logical row k so a refill clears exactly what it wrote — never a
        # full-matrix memset.  row_cache[k] remembers recent row contents
        # keyed by the row's *relevant* configuration (checkpoint bits below
        # k that the row can actually see), so probe sweeps restore
        # oscillating rows by copy.
        self._loss_t = np.zeros((n + 1, n + 1))
        # -lam-scaled mirror of loss_t: the numpy Theorem-3 recursion
        # accumulates pre-scaled running sums (one np.exp per position, no
        # per-iteration multiply), exactly like the one-shot kernel.  The C
        # kernel rescales inline, so the mirror is numpy-only.
        self._neg_loss_t = (
            np.zeros((n + 1, n + 1)) if self._kernels is None else None
        )
        self._written: list[Any] = [[] for _ in range(n + 1)]
        self._row_cache: list[dict[int, tuple[Any, Any]]] = [
            {} for _ in range(n + 1)
        ]

        # values_t[i-1, k] = E[X_i | Z^i_k]; col_inf flags saturated columns
        # so the global saturation test stays O(n) per evaluation.  The C
        # kernel computes conditional expectations inline per position (one
        # values-vector scratch, no slab), so both are numpy-only.
        if self._kernels is None:
            self._values_t = np.zeros((n, n + 1))
            self._col_inf = np.zeros(n, dtype=bool)
        else:
            self._values_t = None
            self._col_inf = None
            self._values_buf = np.empty(n)

        # running_hist[i] is the running-prefix-sum vector *after* kernel
        # iteration i (row 0 = the initial zeros).  Writing each iteration's
        # advance into its own row records the resume points for free: a later
        # toggle at position c restarts from running_hist[c - 1] with no
        # copying at all.
        self._running_hist = np.zeros((n + 1, n + 1))
        self._base = np.zeros(n)
        self._base[0] = 1.0
        # The numpy recursion assigns python floats one position at a time;
        # the C kernel writes straight into a float64 vector.  _result treats
        # both uniformly.
        self._expected_times: Any = (
            [0.0] * n if self._kernels is None else np.zeros(n)
        )
        self._probs_buf = np.empty(n)
        self._last_saturated = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        """Number of scheduled tasks."""
        return self._n

    @property
    def current(self) -> frozenset[int]:
        """Checkpoint set of the last evaluation (empty before the first)."""
        return self._current

    @property
    def is_incremental(self) -> bool:
        """Whether deltas are evaluated incrementally (numpy path) or eagerly."""
        return not self._eager

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self, selected: Iterable[int], *, keep_task_times: bool = True
    ) -> MakespanEvaluation:
        """Evaluate one checkpoint set, reusing everything its delta allows.

        Returns the same :class:`~repro.core.evaluator.MakespanEvaluation`
        a fresh ``evaluate_schedule(..., backend=...)`` call would (for
        ``expected_makespan`` and ``expected_task_times``: bit-for-bit).
        With ``keep_task_times=False`` the per-position vector is dropped so
        ranking sweeps retain O(1) floats per candidate.
        """
        selected = frozenset(int(i) for i in selected)
        self.stats.evaluations += 1
        if self._eager:
            from .evaluator import evaluate_schedule

            evaluation = evaluate_schedule(
                Schedule(self.workflow, self.order, selected),
                self.platform,
                backend="python",
            )
            self._current = selected
            self._initialized = True
            if not keep_task_times:
                evaluation = replace(evaluation, expected_task_times=())
            return evaluation

        # Order-free: the list only feeds an emptiness test and a sorted()
        # error message.
        invalid = [i for i in selected if not 0 <= i < self.workflow.n_tasks]  # reprolint: allow[RL004]
        if invalid:
            raise ValueError(
                f"checkpointed contains invalid task indices: {sorted(invalid)}"
            )

        if not self._initialized:
            if self._poisoned:
                self._reset_configuration()
            toggled = sorted(self._position[t] for t in selected)
            pivot = 1
            refill_all = True
        else:
            delta = selected ^ self._current
            if not delta:
                return self._result(keep_task_times)
            toggled = sorted(self._position[t] for t in delta)
            pivot = toggled[0]
            refill_all = False

        # From here until the successful return the internal state is in
        # flux; an exception (KeyboardInterrupt, MemoryError, ...) must not
        # leave a half-updated state serving wrong deltas, so the next
        # evaluation falls back to a full reset + recompute instead.
        self._initialized = False
        self._poisoned = True

        self.stats.toggles += len(toggled)
        checkpointed = self._checkpointed
        for c in toggled:
            now_on = 0 if checkpointed[c] else 1
            checkpointed[c] = now_on
            self._ckpt_bits ^= 1 << c
            self._ckpt_costs[c - 1] = self._raw_ckpt_costs[c - 1] if now_on else 0.0
            self._charge_bits[c] = (
                self._recovery_cost[c] if now_on else self._weight[c]
            )
        # Rebuild the charge-LUT rows of the touched byte positions with the
        # exact expression of ``_charge_lut`` (bit-identical tables); the
        # native fill prices off _charge_bits directly and keeps no LUT.
        if self._charge_lut is not None:
            byte_bits = self._byte_bits
            charge_bits = self._charge_bits
            # Order-free: each iteration rewrites a distinct LUT row.
            for b in {c >> 3 for c in toggled}:  # reprolint: allow[RL004]
                self._charge_lut[b] = (
                    byte_bits * charge_bits[8 * b : 8 * b + 8]
                ).sum(axis=1)
        if refill_all:
            # First evaluation: derive every traversal mask for the actual
            # configuration in one bulk pass (no descendant tables needed —
            # one-shot evaluations never build them).
            self._rebuild_masks()
        else:
            self._ensure_delta_tables()
            desc = self._desc
            assert desc is not None
            affected = 0
            for c in toggled:
                affected |= (1 << c) | desc[c]
            self._update_masks(affected)

        # Wall-clock reads here (and in the kernel paths below) feed the
        # opt-in profiling stats only -- never a result or a cache key.
        began = time.perf_counter() if self._profile else 0.0  # reprolint: allow[RL003]
        if refill_all:
            self.stats.full_recomputes += 1
            rows: list[int] = list(range(1, self._n + 1))
        else:
            pmask = 0
            for c in toggled:
                pmask |= 1 << c
            reach = self._row_reach
            assert reach is not None
            rows = [k for k in range(pivot + 1, self._n + 1) if reach[k] & pmask]
            self.stats.rows_skipped += (self._n - pivot) - len(rows)
        self._refill_rows(rows)
        if self._profile:
            self.stats.fill_seconds += time.perf_counter() - began  # reprolint: allow[RL003]

        self._run_kernel(pivot)
        self._current = selected
        self._initialized = True
        self._poisoned = False
        return self._result(keep_task_times)

    # ------------------------------------------------------------------
    # Traversal-mask maintenance
    # ------------------------------------------------------------------
    def _update_masks(self, affected: int) -> None:
        """Re-derive the traversal masks of the ``affected`` positions.

        ``affected`` must be closed under descendants (a closure depends on
        the checkpoint states of the position and all its ancestors), and is
        processed in ascending position order so dependencies come first.
        Maintains the big-int ``closures`` / ``frontiers`` together with
        their byte mirrors (``cbytes`` / ``fbytes``) and the prefix-closure
        table rows of every affected multi-predecessor position.
        """
        np = self._np
        mask_bytes = self._mask_bytes
        checkpointed = self._checkpointed
        predecessors = self._predecessors
        closures = self._closures
        frontiers = self._frontiers
        fwords = self._fwords
        cwords = self._cwords
        pfbase = self._pfbase
        pf_flat = self._pf_flat
        for p in self._iter_bits(affected):
            preds = predecessors[p]
            base = pfbase[p]
            if base >= 0:
                # Prefix-OR the predecessors' closure rows straight into this
                # position's slice of the flat table; the last row is the
                # full frontier.
                block = pf_flat[base : base + len(preds)]
                np.take(cwords, self._pred_arrays[p], axis=0, out=block)
                np.bitwise_or.accumulate(block, axis=0, out=block)
                full = block[len(preds) - 1]
                frontier = int.from_bytes(full.tobytes(), "little")
                if frontier != frontiers[p]:
                    frontiers[p] = frontier
                    fwords[p] = full
            else:
                frontier = 0
                for q in preds:
                    frontier |= closures[q]
                if frontier != frontiers[p]:
                    frontiers[p] = frontier
                    fwords[p] = np.frombuffer(
                        frontier.to_bytes(mask_bytes, "little"), dtype=np.uint64
                    )
            closure = (1 << p) | (0 if checkpointed[p] else frontier)
            if closure != closures[p]:
                closures[p] = closure
                cwords[p] = np.frombuffer(
                    closure.to_bytes(mask_bytes, "little"), dtype=np.uint64
                )

    def _rebuild_masks(self) -> None:
        """Derive every traversal mask for the current configuration.

        The full-rebuild twin of :meth:`_update_masks` (used by the first
        evaluation): the big-int recursion is the shared
        :func:`~repro.core.evaluator_np._closure_masks` (single source of
        truth with the one-shot fill), the byte mirrors are flushed in two
        bulk assignments, and the prefix-closure table is then rebuilt
        vectorized from the flushed closure rows.
        """
        from .evaluator_np import _closure_masks

        np = self._np
        n = self._n
        mask_bytes = self._mask_bytes
        closures, frontiers = _closure_masks(
            n, self._predecessors, self._checkpointed
        )
        self._closures = closures
        self._frontiers = frontiers
        f_bytes = bytearray()
        c_bytes = bytearray()
        for p in range(1, n + 1):
            f_bytes += frontiers[p].to_bytes(mask_bytes, "little")
            c_bytes += closures[p].to_bytes(mask_bytes, "little")
        words = self._mask_words
        if n:
            self._fwords[1:] = np.frombuffer(
                bytes(f_bytes), dtype=np.uint64
            ).reshape(n, words)
            self._cwords[1:] = np.frombuffer(
                bytes(c_bytes), dtype=np.uint64
            ).reshape(n, words)
        if self._kernels is not None:
            # The prefix-closure table is only read by the numpy fill's
            # truncation gather (the C fill re-derives truncations from
            # cwords) and by _update_masks, which rewrites any block it
            # reads from the current cwords first — so the bulk rebuild is
            # skipped on the native path.
            return
        cwords = self._cwords
        pf_flat = self._pf_flat
        pfbase = self._pfbase
        for p, preds_arr in self._pred_arrays.items():
            block = pf_flat[pfbase[p] : pfbase[p] + preds_arr.shape[0]]
            np.take(cwords, preds_arr, axis=0, out=block)
            np.bitwise_or.accumulate(block, axis=0, out=block)

    def _ensure_delta_tables(self) -> None:
        """Build (or adopt) the tables only incremental evaluations need.

        The tables are a pure function of the instance, so they live on the
        shared :class:`_InstanceTables` entry (see
        :meth:`_InstanceTables.ensure_delta`) and are adopted by every state
        that evaluates incrementally; one-shot evaluations skip them
        entirely.
        """
        if self._row_reach is not None:
            return
        tables = self._tables
        tables.ensure_delta()
        self._row_reach = tables.row_reach
        self._desc = tables.desc

    def _reset_configuration(self) -> None:
        """Return to the pristine empty-set state after an aborted evaluation.

        An exception inside :meth:`evaluate` can leave the checkpoint flags,
        charge tables and loss matrices mutually inconsistent; everything
        config-dependent is wiped so the following full recompute starts
        from a known-good baseline.  (The per-row content cache survives:
        its entries are keyed by the relevant configuration and remain
        valid.)
        """
        from .evaluator_np import _charge_lut

        n = self._n
        self._checkpointed[:] = bytes(n + 1)
        self._ckpt_bits = 0
        self._ckpt_costs[:] = 0.0
        self._charge_bits[:] = 0.0
        self._charge_bits[1 : n + 1] = self._weight[1:]
        if self._kernels is None:
            self._charge_lut = _charge_lut(self._np, self._charge_bits)
        self._loss_t[:] = 0.0
        if self._neg_loss_t is not None:
            self._neg_loss_t[:] = 0.0
        self._written = [[] for _ in range(n + 1)]
        self._current = frozenset()

    # ------------------------------------------------------------------
    # Algorithm-1 row refill (bulk closure-mask fill, content-cached)
    # ------------------------------------------------------------------
    def _refill_rows(self, rows: list[int]) -> None:
        """Bring the logical loss rows in ``rows`` up to date, in bulk.

        Row content is a pure function of the row's *relevant* configuration
        (the checkpoint bits inside ``row_reach[k]``), so recently seen
        contents are restored by copy from the per-row cache; everything
        else is recomputed in one vectorized pipeline: gather all candidate
        frontiers into a ``(R, M, mask_bytes)`` block, patch the truncated
        ones from the prefix-closure table, prefix-OR along the candidate
        axis, and read each candidate's visited set off as the XOR of
        consecutive prefix rows (``P_j = P_{j-1} | F_j`` makes the fresh
        bits ``P_j ^ P_{j-1}`` — the vectorized ``F_j & ~regenerated``).
        Values come from the shared :func:`_mask_charges` canon, so they are
        bit-identical to the one-shot fill of ``evaluate_schedule_numpy``;
        cache restores are bitwise exact for the same reason.
        """
        np = self._np
        loss_t = self._loss_t
        written = self._written
        ckpt_bits = self._ckpt_bits
        reach = self._row_reach
        caches = self._row_cache

        # Partition into cache hits and misses, collecting every touched
        # row's stale entries for one batched clear (never a full memset).
        # Before the delta tables exist (the initializing full fill) there
        # is no per-row relevant configuration to key the cache on, so
        # every row is a miss and nothing is cached.
        miss_rows: list[int] = []
        miss_cfgs: list[int | None] = []
        hit_cols: list = []
        hit_vals: list = []
        hit_ks: list[int] = []
        hit_lens: list[int] = []
        stale_arrays: list = []
        stale_ks: list[int] = []
        stale_lens: list[int] = []
        for k in rows:
            stale = written[k]
            if len(stale):
                stale_arrays.append(stale)
                stale_ks.append(k)
                stale_lens.append(len(stale))
            if reach is None:
                miss_rows.append(k)
                miss_cfgs.append(None)
                continue
            cfg = ckpt_bits & reach[k]
            cache = caches[k]
            entry = cache.get(cfg)
            if entry is None:
                miss_rows.append(k)
                miss_cfgs.append(cfg)
            else:
                # Re-insert on hit so eviction is LRU: the hot base
                # configuration a probe sweep keeps returning to must not
                # age out behind a stream of one-off probe configurations.
                del cache[cfg]
                cache[cfg] = entry
                cols, vals = entry
                written[k] = cols
                if len(cols):
                    hit_cols.append(cols)
                    hit_vals.append(vals)
                    hit_ks.append(k)
                    hit_lens.append(len(cols))
        neg_loss_t = self._neg_loss_t
        if stale_arrays:
            cat = np.concatenate(stale_arrays)
            rep = np.repeat(
                np.asarray(stale_ks, dtype=np.intp),
                np.asarray(stale_lens, dtype=np.intp),
            )
            loss_t[cat, rep] = 0.0
            if neg_loss_t is not None:
                neg_loss_t[cat, rep] = 0.0
        if hit_cols:
            cat = np.concatenate(hit_cols)
            rep = np.repeat(
                np.asarray(hit_ks, dtype=np.intp),
                np.asarray(hit_lens, dtype=np.intp),
            )
            vals = np.concatenate(hit_vals)
            loss_t[cat, rep] = vals
            if neg_loss_t is not None:
                neg_loss_t[cat, rep] = vals * -self._lam
        self.stats.rows_restored += len(rows) - len(miss_rows)
        self.stats.rows_refilled += len(miss_rows)
        if not miss_rows:
            return

        if not self._m_max:
            empty = np.asarray([], dtype=np.intp)
            for k, cfg in zip(miss_rows, miss_cfgs):
                self._store_row(k, cfg, empty, None)
            return
        if self._kernels is not None:
            # The C fill streams row by row with O(mask) scratch — no
            # chunking needed.
            self._fill_miss_rows_native(miss_rows, miss_cfgs)
            return
        # Bound the scratch footprint: high-fan-out instances can have
        # candidate widths near n, so one monolithic (R, M, words) block
        # would be O(n^2 * M) bytes.  Rows are independent, so the batch is
        # simply split into chunks of bounded byte size; per-row values are
        # grouping-independent by construction (the _mask_charges canon).
        chunk = max(1, _FILL_CHUNK_BYTES // (self._m_max * self._mask_bytes))
        for start in range(0, len(miss_rows), chunk):
            self._fill_miss_rows(
                miss_rows[start : start + chunk],
                miss_cfgs[start : start + chunk],
            )

    def _fill_miss_rows(
        self, miss_rows: list[int], miss_cfgs: list[int | None]
    ) -> None:
        """Recompute one bounded chunk of cache-missed rows vectorized."""
        np = self._np
        loss_t = self._loss_t
        neg_loss_t = self._neg_loss_t
        rows_arr = np.asarray(miss_rows, dtype=np.intp)
        n_miss = rows_arr.shape[0]
        width = int(self._cand_len[rows_arr].max())
        empty = rows_arr[:0]
        if width == 0:
            for k, cfg in zip(miss_rows, miss_cfgs):
                self._store_row(k, cfg, empty, None)
            return
        idx = np.take(self._cand_pad[:, :width], rows_arr, axis=0)
        need = n_miss * width
        if self._f3_buf is None or self._f3_buf.shape[0] < need:
            self._f3_buf = np.empty((need, self._mask_words), dtype=np.uint64)
            self._v3_buf = np.empty((need, self._mask_words), dtype=np.uint64)
        frontier_block = self._f3_buf[:need]
        np.take(self._fwords, idx.reshape(-1), axis=0, out=frontier_block)
        acc = frontier_block.reshape(n_miss, width, self._mask_words)
        trunc_rows: list = []
        trunc_slots: list = []
        trunc_srcs: list = []
        trunc_dst = self._trunc_dst
        trunc_src = self._trunc_src
        for local, k in enumerate(miss_rows):
            dst = trunc_dst[k]
            if dst is not None:
                trunc_rows.append(np.full(dst.shape[0], local, dtype=np.intp))
                trunc_slots.append(dst)
                trunc_srcs.append(trunc_src[k])
        if trunc_rows:
            acc[np.concatenate(trunc_rows), np.concatenate(trunc_slots)] = (
                self._pf_flat[np.concatenate(trunc_srcs)]
            )
        np.bitwise_or.accumulate(acc, axis=1, out=acc)
        visited = self._v3_buf[:need].reshape(n_miss, width, self._mask_words)
        visited[:, 0] = acc[:, 0]
        if width > 1:
            np.bitwise_xor(acc[:, 1:], acc[:, :-1], out=visited[:, 1:])
        rowsel, slotsel = np.nonzero(visited.any(axis=2))
        if rowsel.size:
            vals = self._mask_charges(
                np, visited[rowsel, slotsel].view(np.uint8), self._charge_lut
            )
            cols = idx[rowsel, slotsel]
            if not self._charge_positive:
                keep = vals != 0.0
                if not keep.all():
                    vals = vals[keep]
                    cols = cols[keep]
                    rowsel = rowsel[keep]
            ks = rows_arr[rowsel]
            loss_t[cols, ks] = vals
            neg_loss_t[cols, ks] = vals * -self._lam
            bounds = np.searchsorted(rowsel, np.arange(n_miss + 1)).tolist()
            for local, (k, cfg) in enumerate(zip(miss_rows, miss_cfgs)):
                lo = bounds[local]
                hi = bounds[local + 1]
                if lo == hi:
                    self._store_row(k, cfg, empty, None)
                else:
                    self._store_row(k, cfg, cols[lo:hi], vals[lo:hi])
        else:
            for k, cfg in zip(miss_rows, miss_cfgs):
                self._store_row(k, cfg, empty, None)

    def _fill_miss_rows_native(
        self, miss_rows: list[int], miss_cfgs: list[int | None]
    ) -> None:
        """Recompute cache-missed rows through the compiled Algorithm-1 fill.

        The C routine walks the same closure/frontier words as the numpy
        fill (truncated frontiers are re-derived as the OR of the
        predecessors' closures below the row — exactly the prefix the flat
        table stores), prices visited bits in ascending position order off
        ``_charge_bits``, writes nonzero values into ``loss_t`` and compacts
        them into per-row output slices for the shared row bookkeeping.
        Rows are priced independently, so the multithreaded split of large
        fills cannot change any value.
        """
        np = self._np
        kernels = self._kernels
        n_rows = len(miss_rows)
        rows = self._rows_buf[:n_rows]
        rows[:] = miss_rows
        off = self._out_off[:n_rows]
        off[0] = 0
        if n_rows > 1:
            np.cumsum(self._cand_len[rows[:-1]], out=off[1:])
        counts = self._out_counts[:n_rows]
        threads = kernels.fill_threads if n_rows >= 128 else 1
        kernels.fill_rows(
            n_rows,
            rows.ctypes.data,
            self._mask_words,
            self._fwords.ctypes.data,
            self._cwords.ctypes.data,
            self._cand_ptr.ctypes.data,
            self._cand_idx.ctypes.data,
            self._pred_ptr.ctypes.data,
            self._pred_idx.ctypes.data,
            self._charge_bits.ctypes.data,
            self._loss_t.ctypes.data,
            self._n + 1,
            self._out_cols.ctypes.data,
            self._out_vals.ctypes.data,
            off.ctypes.data,
            counts.ctypes.data,
            threads,
        )
        # Same bookkeeping _store_row does, inlined to copy each compacted
        # slice exactly once (the shared output buffers are reused by the
        # next fill, so views must not escape).
        out_cols = self._out_cols
        out_vals = self._out_vals
        written = self._written
        caches = self._row_cache
        off_list = off.tolist()
        count_list = counts.tolist()
        for r, (k, cfg) in enumerate(zip(miss_rows, miss_cfgs)):
            lo = off_list[r]
            hi = lo + count_list[r]
            cols = out_cols[lo:hi].copy()
            written[k] = cols
            if cfg is None:
                continue
            cache = caches[k]
            if len(cache) >= _ROW_CACHE_ENTRIES:
                cache.pop(next(iter(cache)))
            cache[cfg] = (cols, out_vals[lo:hi].copy())

    def _store_row(self, k: int, cfg: int | None, cols: Any, vals: Any) -> None:
        """Record a freshly computed row in ``written`` and the row cache.

        ``cfg is None`` (the initializing full fill, before the delta tables
        exist) records the row without caching it.  Cached contents are
        copied out of their batch arrays: a slice view would pin the whole
        chunk's base array for the lifetime of the cache entry.  Copies are
        bitwise identical, so the exactness guarantee is unaffected.
        """
        if cfg is None:
            self._written[k] = cols
            return
        cols = cols.copy()
        if vals is not None:
            vals = vals.copy()
        self._written[k] = cols
        cache = self._row_cache[k]
        if len(cache) >= _ROW_CACHE_ENTRIES:
            cache.pop(next(iter(cache)))
        cache[cfg] = (cols, vals)

    # ------------------------------------------------------------------
    # Theorem-3 kernel: Equation-(1) slab + recursion resumed at the pivot
    # ------------------------------------------------------------------
    def _run_kernel(self, pivot: int) -> None:
        if self._kernels is not None:
            self._run_kernel_native(pivot)
            return
        np = self._np
        n = self._n
        lam = self._lam
        began = time.perf_counter() if self._profile else 0.0  # reprolint: allow[RL003]

        # Every value the toggles can change sits in columns i >= pivot of the
        # conditional-expectation matrix (changed loss entries have i >= k >
        # pivot; the changed checkpoint costs are at positions >= pivot), so
        # one slab recompute over rows pivot-1.. of values_t restores the
        # exact state a full one-shot computation would produce.
        lo = pivot
        m0 = lo - 1
        loss_t = self._loss_t
        values_t = self._values_t
        sub = loss_t[lo:, :]
        diagonal = loss_t.diagonal()[1:]
        wc = self._weights[m0:] + self._ckpt_costs[m0:]
        with np.errstate(over="ignore"):
            exposure = lam * (sub + wc[:, None])
            grown = np.expm1(np.minimum(exposure, OVERFLOW_EXPONENT))
            rec_exposure = lam * np.maximum(diagonal[m0:, None] - sub, 0.0)
            slab = np.exp(np.minimum(rec_exposure, OVERFLOW_EXPONENT)) * (
                grown / lam + self._downtime * grown
            )
        overflow = (exposure > OVERFLOW_EXPONENT) | (rec_exposure > OVERFLOW_EXPONENT)
        if overflow.any():
            slab[overflow] = np.inf
        tiny = exposure < _SMALL_EXPOSURE
        if tiny.any():
            failure_free = sub + wc[:, None]
            slab[tiny] = failure_free[tiny]
        values_t[m0:, :] = slab
        self._col_inf[m0:] = np.isinf(slab).any(axis=1)
        saturated = bool(self._col_inf.any())

        # Saturation switches the dot products to their masked form, which
        # changes summation shapes — the stored prefix is only reusable when
        # both the previous and the current run are unsaturated.
        start = lo
        if saturated or self._last_saturated:
            start = 1

        with np.errstate(over="ignore"):
            exponent_bound = lam * float(
                (diagonal + self._weights + self._ckpt_costs).sum()
            )
        may_clip = not exponent_bound <= OVERFLOW_EXPONENT - 1.0

        base = self._base
        running_hist = self._running_hist
        probs_buf = self._probs_buf
        neg_loss_t = self._neg_loss_t
        # Same pre-scaled accumulation as the one-shot kernel: running sums
        # carry -lam * (loss + terms), so each position needs one np.exp.
        neg_terms = (self._weights + self._ckpt_costs) * -lam
        values_t = self._values_t
        expected_times = self._expected_times
        for i in range(start, n + 1):
            m = i - 1
            probs = probs_buf[:i]
            if m:
                prev = running_hist[m][:m]
                head = probs[:m]
                np.exp(prev, out=head)
                head *= base[:m]
                if may_clip:
                    clipped = prev < -OVERFLOW_EXPONENT
                    if clipped.any():
                        head[clipped] = 0.0
                remaining = 1.0 - float(head.sum())
                if remaining < 0.0:
                    remaining = 0.0
                elif remaining > 1.0:
                    remaining = 1.0
            else:
                remaining = 1.0
            probs[m] = remaining
            if i >= 2:
                base[m] = remaining

            column = values_t[m, :i]
            if saturated:
                mask = probs > 0.0
                expected_xi = float(probs[mask] @ column[mask])
            else:
                expected_xi = float(probs @ column)
            expected_times[m] = expected_xi

            # Advance into this iteration's own history row: entries [i:] of
            # row i are never written, so they hold the zeros a fresh kernel
            # would see, and row i-1 doubles as the resume snapshot.
            cur = running_hist[i]
            np.add(running_hist[m][:i], neg_loss_t[i, :i], out=cur[:i])
            cur[:i] += neg_terms[m]

        self._last_saturated = saturated
        self.stats.kernel_positions += n + 1 - start
        if self._profile:
            self.stats.kernel_seconds += time.perf_counter() - began  # reprolint: allow[RL003]

    def _run_kernel_native(self, pivot: int) -> None:
        """Resume the compiled Theorem-3 recursion at the pivot.

        The C kernel always skips zero-probability events in its dot
        products — bit-identical to summing their ``+0.0`` contributions
        when unsaturated, and exactly the masked sum when saturated — so
        unlike the numpy kernel there is no saturated-regime restart: the
        stored running-sum prefix is resumable unconditionally.
        """
        n = self._n
        began = time.perf_counter() if self._profile else 0.0  # reprolint: allow[RL003]
        self._kernels.theorem3_kernel(
            n,
            pivot,
            self._loss_t.ctypes.data,
            n + 1,
            self._weights.ctypes.data,
            self._ckpt_costs.ctypes.data,
            self._lam,
            self._downtime,
            self._running_hist.ctypes.data,
            self._base.ctypes.data,
            self._expected_times.ctypes.data,
            self._probs_buf.ctypes.data,
            self._values_buf.ctypes.data,
        )
        self.stats.kernel_positions += n + 1 - pivot
        if self._profile:
            self.stats.kernel_seconds += time.perf_counter() - began  # reprolint: allow[RL003]

    def _result(self, keep_task_times: bool) -> MakespanEvaluation:
        expected_times = self._expected_times
        return MakespanEvaluation(
            expected_makespan=math.fsum(expected_times),
            expected_task_times=(
                tuple(map(float, expected_times)) if keep_task_times else ()
            ),
            failure_free_makespan=(
                self._failure_free_work + float(self._ckpt_costs.sum())
            ),
            failure_free_work=self._failure_free_work,
        )
