"""Workflow DAG container.

The :class:`Workflow` class is the central data structure of the library.  It
stores an immutable directed acyclic graph of :class:`~repro.core.task.Task`
objects plus precomputed adjacency used by every scheduling algorithm.

Design notes
------------
* Tasks are identified by dense integer indices ``0 .. n-1``.  Edges are pairs
  of indices ``(u, v)`` meaning "``v`` consumes the output of ``u``".
* The class is intentionally light: it is a plain-Python adjacency structure
  (tuples of ints) rather than a :mod:`networkx` graph so that the hot loops of
  the makespan evaluator never pay attribute-lookup costs.  Conversion helpers
  to/from :mod:`networkx` are provided for interoperability and for the random
  generators.
* Workflows are immutable.  Derived workflows (e.g. with different checkpoint
  costs) are produced by :meth:`Workflow.with_checkpoint_costs` /
  :meth:`Workflow.replace_tasks`, which return new instances.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import networkx as nx

from .task import Task

__all__ = ["Workflow", "WorkflowStructure", "CycleError"]


class CycleError(ValueError):
    """Raised when the provided edges do not form a DAG."""


class WorkflowStructure(enum.Enum):
    """Coarse structural classification used by the theory modules."""

    EMPTY = "empty"
    SINGLE = "single"
    CHAIN = "chain"
    FORK = "fork"
    JOIN = "join"
    GENERAL = "general"


class Workflow:
    """An immutable DAG of tasks.

    Parameters
    ----------
    tasks:
        Sequence of :class:`Task`.  Task ``i`` must have ``index == i``.
    edges:
        Iterable of ``(u, v)`` pairs with ``0 <= u, v < n`` and ``u != v``.
        Duplicate edges are collapsed.
    name:
        Optional workflow label (e.g. ``"montage-100"``).
    """

    __slots__ = (
        "_tasks",
        "_succ",
        "_pred",
        "_edges",
        "_name",
        "_topo_cache",
    )

    def __init__(
        self,
        tasks: Sequence[Task],
        edges: Iterable[tuple[int, int]] = (),
        *,
        name: str = "workflow",
    ) -> None:
        tasks = tuple(tasks)
        n = len(tasks)
        for position, task in enumerate(tasks):
            if not isinstance(task, Task):
                raise TypeError(f"tasks[{position}] is not a Task: {task!r}")
            if task.index != position:
                raise ValueError(
                    f"task at position {position} has index {task.index}; "
                    "tasks must be supplied in index order"
                )
        succ: list[set[int]] = [set() for _ in range(n)]
        pred: list[set[int]] = [set() for _ in range(n)]
        edge_set: set[tuple[int, int]] = set()
        for edge in edges:
            try:
                u, v = edge
            except (TypeError, ValueError) as exc:
                raise TypeError(f"edge {edge!r} is not a pair") from exc
            u = int(u)
            v = int(v)
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) references a task outside 0..{n - 1}")
            if u == v:
                raise ValueError(f"self loop on task {u} is not allowed")
            if (u, v) in edge_set:
                continue
            edge_set.add((u, v))
            succ[u].add(v)
            pred[v].add(u)

        self._tasks: tuple[Task, ...] = tasks
        self._succ: tuple[tuple[int, ...], ...] = tuple(tuple(sorted(s)) for s in succ)
        self._pred: tuple[tuple[int, ...], ...] = tuple(tuple(sorted(p)) for p in pred)
        self._edges: tuple[tuple[int, int], ...] = tuple(sorted(edge_set))
        self._name = str(name)
        self._topo_cache: tuple[int, ...] | None = None
        # Validate acyclicity once at construction time.
        self._compute_topological_order()

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Workflow label."""
        return self._name

    @property
    def n_tasks(self) -> int:
        """Number of tasks (``n`` in the paper)."""
        return len(self._tasks)

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return len(self._edges)

    @property
    def tasks(self) -> tuple[Task, ...]:
        """All tasks, ordered by index."""
        return self._tasks

    @property
    def edges(self) -> tuple[tuple[int, int], ...]:
        """All edges as sorted ``(u, v)`` tuples."""
        return self._edges

    def task(self, index: int) -> Task:
        """Return the task with the given index."""
        return self._tasks[self._check_index(index)]

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"Workflow(name={self._name!r}, n_tasks={self.n_tasks}, "
            f"n_edges={self.n_edges})"
        )

    def _check_index(self, index: int) -> int:
        if not isinstance(index, int) or isinstance(index, bool):
            raise TypeError(f"task index must be an int, got {index!r}")
        if not 0 <= index < self.n_tasks:
            raise IndexError(f"task index {index} outside 0..{self.n_tasks - 1}")
        return index

    # ------------------------------------------------------------------
    # Graph structure
    # ------------------------------------------------------------------
    def successors(self, index: int) -> tuple[int, ...]:
        """Direct successors (consumers of the task's output)."""
        return self._succ[self._check_index(index)]

    def predecessors(self, index: int) -> tuple[int, ...]:
        """Direct predecessors (producers of the task's inputs)."""
        return self._pred[self._check_index(index)]

    @property
    def sources(self) -> tuple[int, ...]:
        """Entry tasks (no predecessors)."""
        return tuple(i for i in range(self.n_tasks) if not self._pred[i])

    @property
    def sinks(self) -> tuple[int, ...]:
        """Exit tasks (no successors)."""
        return tuple(i for i in range(self.n_tasks) if not self._succ[i])

    def in_degree(self, index: int) -> int:
        """Number of direct predecessors."""
        return len(self.predecessors(index))

    def out_degree(self, index: int) -> int:
        """Number of direct successors."""
        return len(self.successors(index))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the dependency ``u -> v`` exists."""
        return v in self._succ[self._check_index(u)]

    def ancestors(self, index: int) -> frozenset[int]:
        """All transitive predecessors of a task."""
        seen: set[int] = set()
        stack = list(self.predecessors(index))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._pred[node])
        return frozenset(seen)

    def descendants(self, index: int) -> frozenset[int]:
        """All transitive successors of a task."""
        seen: set[int] = set()
        stack = list(self.successors(index))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succ[node])
        return frozenset(seen)

    def _compute_topological_order(self) -> tuple[int, ...]:
        if self._topo_cache is not None:
            return self._topo_cache
        n = self.n_tasks
        in_deg = [len(self._pred[i]) for i in range(n)]
        ready = [i for i in range(n) if in_deg[i] == 0]
        ready.sort(reverse=True)
        order: list[int] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ in self._succ[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    ready.append(succ)
            ready.sort(reverse=True)
        if len(order) != n:
            raise CycleError("the provided edges contain a cycle")
        self._topo_cache = tuple(order)
        return self._topo_cache

    def topological_order(self) -> tuple[int, ...]:
        """A deterministic (smallest-index-first) topological order."""
        return self._compute_topological_order()

    def is_linearization(self, order: Sequence[int]) -> bool:
        """Whether ``order`` is a permutation of all tasks respecting all edges."""
        order = tuple(order)
        if sorted(order) != list(range(self.n_tasks)):
            return False
        position = {task: pos for pos, task in enumerate(order)}
        return all(position[u] < position[v] for u, v in self._edges)

    # ------------------------------------------------------------------
    # Weights and priorities
    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> float:
        """Failure-free total computation time :math:`\\sum_i w_i`."""
        return sum(task.weight for task in self._tasks)

    def outweight(self, index: int) -> float:
        """Sum of the weights of the direct successors of a task.

        This is the priority used by the DF / BF linearizations and by the
        ``CkptD`` checkpointing strategy (the paper's :math:`d_i`).
        """
        return sum(self._tasks[s].weight for s in self.successors(index))

    def descendant_weight(self, index: int) -> float:
        """Sum of the weights of all transitive successors of a task."""
        return sum(self._tasks[d].weight for d in self.descendants(index))

    def critical_path_length(self) -> float:
        """Length (in seconds of work) of the heaviest path in the DAG."""
        longest = [0.0] * self.n_tasks
        for node in self.topological_order():
            preds = self._pred[node]
            base = max((longest[p] for p in preds), default=0.0)
            longest[node] = base + self._tasks[node].weight
        return max(longest, default=0.0)

    # ------------------------------------------------------------------
    # Structure classification
    # ------------------------------------------------------------------
    def structure(self) -> WorkflowStructure:
        """Classify the DAG as chain / fork / join / general.

        The classification matches the special cases studied in Section 4 of the
        paper: a *fork* has a single source and every other task is a sink
        depending only on that source; a *join* has a single sink and every other
        task is a source feeding only that sink.
        """
        n = self.n_tasks
        if n == 0:
            return WorkflowStructure.EMPTY
        if n == 1:
            return WorkflowStructure.SINGLE
        if self.is_chain():
            return WorkflowStructure.CHAIN
        if self.is_fork():
            return WorkflowStructure.FORK
        if self.is_join():
            return WorkflowStructure.JOIN
        return WorkflowStructure.GENERAL

    def is_chain(self) -> bool:
        """Whether the DAG is a single linear chain."""
        if self.n_tasks <= 1:
            return self.n_tasks == 1
        if self.n_edges != self.n_tasks - 1:
            return False
        return all(self.in_degree(i) <= 1 and self.out_degree(i) <= 1 for i in range(self.n_tasks))

    def is_fork(self) -> bool:
        """Whether the DAG is a fork: one source, all other tasks depend only on it."""
        if self.n_tasks < 2:
            return False
        sources = self.sources
        if len(sources) != 1:
            return False
        src = sources[0]
        others = [i for i in range(self.n_tasks) if i != src]
        return all(self._pred[i] == (src,) and not self._succ[i] for i in others)

    def is_join(self) -> bool:
        """Whether the DAG is a join: one sink, all other tasks feed only into it."""
        if self.n_tasks < 2:
            return False
        sinks = self.sinks
        if len(sinks) != 1:
            return False
        sink = sinks[0]
        others = [i for i in range(self.n_tasks) if i != sink]
        return all(self._succ[i] == (sink,) and not self._pred[i] for i in others)

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def replace_tasks(self, tasks: Sequence[Task], *, name: str | None = None) -> "Workflow":
        """Return a new workflow with the same edges but different tasks."""
        if len(tasks) != self.n_tasks:
            raise ValueError(
                f"expected {self.n_tasks} tasks, got {len(tasks)}"
            )
        return Workflow(tasks, self._edges, name=self._name if name is None else name)

    def map_tasks(self, transform: Callable[[Task], Task], *, name: str | None = None) -> "Workflow":
        """Return a new workflow with every task replaced by ``transform(task)``."""
        new_tasks = []
        for task in self._tasks:
            new_task = transform(task)
            if new_task.index != task.index:
                raise ValueError("transform must preserve task indices")
            new_tasks.append(new_task)
        return self.replace_tasks(new_tasks, name=name)

    def with_checkpoint_costs(
        self,
        *,
        mode: str = "proportional",
        factor: float = 0.1,
        value: float = 0.0,
        recovery: str = "equal",
        name: str | None = None,
    ) -> "Workflow":
        """Return a copy with checkpoint / recovery costs assigned.

        Parameters
        ----------
        mode:
            ``"proportional"`` sets :math:`c_i = factor \\cdot w_i` (the paper's
            main setting with ``factor`` = 0.1 or 0.01); ``"constant"`` sets
            :math:`c_i = value` for every task (Figures 4 and 6).
        factor:
            Proportionality constant for ``mode="proportional"``.
        value:
            Constant checkpoint cost for ``mode="constant"``.
        recovery:
            ``"equal"`` sets :math:`r_i = c_i` (the paper's experimental setting);
            ``"zero"`` sets :math:`r_i = 0` (Corollary 2 regime).
        """
        if mode not in ("proportional", "constant"):
            raise ValueError(f"unknown checkpoint cost mode {mode!r}")
        if recovery not in ("equal", "zero"):
            raise ValueError(f"unknown recovery mode {recovery!r}")
        if mode == "proportional" and factor < 0:
            raise ValueError("factor must be non-negative")
        if mode == "constant" and value < 0:
            raise ValueError("value must be non-negative")

        def _assign(task: Task) -> Task:
            cost = factor * task.weight if mode == "proportional" else value
            rec = cost if recovery == "equal" else 0.0
            return task.with_costs(checkpoint_cost=cost, recovery_cost=rec)

        return self.map_tasks(_assign, name=name)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Convert to a :class:`networkx.DiGraph` with task attributes."""
        graph = nx.DiGraph(name=self._name)
        for task in self._tasks:
            graph.add_node(
                task.index,
                weight=task.weight,
                checkpoint_cost=task.checkpoint_cost,
                recovery_cost=task.recovery_cost,
                name=task.name,
                category=task.category,
            )
        graph.add_edges_from(self._edges)
        return graph

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph, *, name: str | None = None) -> "Workflow":
        """Build a workflow from a :class:`networkx.DiGraph`.

        Node labels may be arbitrary hashables; they are relabelled to dense
        indices following a deterministic topological order of the input graph.
        Node attributes ``weight``, ``checkpoint_cost``, ``recovery_cost``,
        ``name`` and ``category`` are honoured when present.
        """
        if not isinstance(graph, nx.DiGraph):
            raise TypeError("expected a networkx.DiGraph")
        if not nx.is_directed_acyclic_graph(graph):
            raise CycleError("input graph has a cycle")
        ordering = list(nx.lexicographical_topological_sort(graph, key=str))
        relabel = {node: i for i, node in enumerate(ordering)}
        tasks = []
        for node in ordering:
            data: Mapping = graph.nodes[node]
            tasks.append(
                Task(
                    index=relabel[node],
                    weight=float(data.get("weight", 1.0)),
                    checkpoint_cost=float(data.get("checkpoint_cost", 0.0)),
                    recovery_cost=float(data.get("recovery_cost", 0.0)),
                    name=str(data.get("name", f"T{relabel[node]}")),
                    category=str(data.get("category", "")),
                )
            )
        edges = [(relabel[u], relabel[v]) for u, v in graph.edges]
        return cls(tasks, edges, name=name or str(graph.graph.get("name", "workflow")))

    # ------------------------------------------------------------------
    # Equality (useful in tests and serialization round-trips)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Workflow):
            return NotImplemented
        return self._tasks == other._tasks and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._tasks, self._edges))
