"""Finding reporters: human-readable text and machine-readable JSON.

The JSON document is the CI artifact contract — stable top-level keys
(``version``, ``clean``, ``files_scanned``, ``rules``, ``findings``,
``suppressed``, ``baselined``) so downstream tooling can diff runs.
"""

from __future__ import annotations

import json

from .engine import Finding, LintResult
from .registry import RULES

__all__ = ["render_json", "render_text"]

#: Bump when the JSON report shape changes incompatibly.
REPORT_VERSION = 1


def _finding_dict(finding: Finding) -> dict:
    return {
        "rule": finding.rule_id,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "fingerprint": finding.fingerprint,
    }


def render_json(result: LintResult) -> str:
    payload = {
        "version": REPORT_VERSION,
        "clean": result.clean,
        "files_scanned": result.files_scanned,
        "rules": {
            rule_id: RULES[rule_id].invariant
            for rule_id in result.rules_run
            if rule_id in RULES
        },
        "findings": [_finding_dict(f) for f in result.findings],
        "suppressed": [_finding_dict(f) for f in result.suppressed],
        "baselined": [_finding_dict(f) for f in result.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_text(result: LintResult) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule_id} {finding.message}"
        )
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_scanned} "
        f"file(s) [rules: {', '.join(result.rules_run)}]"
    )
    extras = []
    if result.suppressed:
        extras.append(f"{len(result.suppressed)} suppressed by pragma")
    if result.baselined:
        extras.append(f"{len(result.baselined)} grandfathered by baseline")
    if extras:
        summary += f" ({'; '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines) + "\n"
