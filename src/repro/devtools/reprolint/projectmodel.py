"""Shared AST lookups over the project: dataclass fields, classes, calls.

These helpers keep the rule modules declarative: a rule asks "what are the
fields of ``Platform``?" or "which ``fault_point`` sites exist?" and gets
facts extracted from the *linted* tree (never the imported package — the
linter must be able to analyse a mutated or historical copy of the source
without importing it).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .engine import LintContext, SourceFile

__all__ = [
    "call_name",
    "dataclass_fields",
    "dotted_name",
    "find_class",
    "iter_functions",
    "string_keys",
]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee (``None`` for computed callees)."""
    return dotted_name(node.func)


def find_class(src: SourceFile, name: str) -> ast.ClassDef | None:
    """Top-level class ``name`` in ``src`` (module scope only)."""
    assert src.tree is not None
    for node in src.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> list[str]:
    """Field names of a dataclass definition (annotated class-level names).

    ``ClassVar`` annotations and underscore-private names are excluded;
    non-dataclasses return their annotated attributes all the same, which
    is the useful notion of "fields" for ``__init__``-based spec classes.
    """
    fields: list[str] = []
    for item in node.body:
        if not isinstance(item, ast.AnnAssign) or not isinstance(
            item.target, ast.Name
        ):
            continue
        annotation = ast.unparse(item.annotation)
        if "ClassVar" in annotation:
            continue
        name = item.target.id
        if not name.startswith("_"):
            fields.append(name)
    return fields


def init_assigned_attrs(node: ast.ClassDef) -> list[str]:
    """Public ``self.X`` attributes assigned in ``__init__`` (in order)."""
    names: list[str] = []
    for item in node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for stmt in ast.walk(item):
                targets: list[ast.expr] = []
                if isinstance(stmt, ast.Assign):
                    targets = list(stmt.targets)
                elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                    targets = [stmt.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and not target.attr.startswith("_")
                        and target.attr not in names
                    ):
                        names.append(target.attr)
    return names


def iter_functions(
    tree: ast.AST, *, nested: bool = True
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in ``tree``."""
    for node in ast.walk(tree) if nested else ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def string_keys(node: ast.Dict) -> list[str]:
    """The constant-string keys of a dict literal, in source order."""
    keys: list[str] = []
    for key in node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append(key.value)
    return keys


def module_path(ctx: LintContext, src: SourceFile) -> str:
    """Package-relative POSIX path, or the repo-relative one as fallback."""
    return ctx.package_rel(src) or src.rel
