"""Rule modules — importing this package populates the registry.

Each module groups the rules guarding one contract family:

========  =======================  ==========================================
rule      module                   invariant
========  =======================  ==========================================
RL001     ``cache_keys``           every spec field flows into its key payload
RL002     ``cache_keys``           keys are backend-agnostic; shape ⇒ version
RL003     ``determinism``          no ambient entropy in result-bearing code
RL004     ``determinism``          sets are sorted before ordered consumption
RL005     ``io_discipline``        journal writes flush + fsync before ack
RL006     ``fault_sites``          fault-site namespace is closed & exercised
RL007     ``api_coherence``        backend kwargs thread through BackendSpec
========  =======================  ==========================================
"""

from __future__ import annotations

from . import (  # noqa: F401  (imported for registration side effects)
    api_coherence,
    cache_keys,
    determinism,
    fault_sites,
    io_discipline,
)
