"""RL007 — backend keyword arguments are threaded, not dropped.

PR 8 established one convention for selecting an evaluation backend:
public entry points accept ``backend=`` (a name, spec string, or
``BackendSpec``) plus optional ``evaluator=``/``sweep_evaluator=``
overrides, and normalise the combination through ``BackendSpec.coerce``
before anything is evaluated.  Two drift modes this rule catches:

* a function accepts ``backend`` and never reads it — callers believe
  they selected the native backend while the python one silently runs
  (worse than an error: the results are right, the performance claim and
  any backend-specific coverage are not);
* a function accepts both ``backend`` and an evaluator override but
  combines them ad hoc instead of via ``BackendSpec`` — the precedence
  rules (explicit evaluator beats spec'd backend) then differ between
  entry points.

Pure pass-through wrappers that forward both keywords to a conforming
callee in a single call are accepted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, SourceFile
from ..projectmodel import iter_functions
from ..registry import rule

_EVALUATOR_PARAMS = {"evaluator", "sweep_evaluator"}


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = func.args
    return [
        a.arg
        for a in args.posonlyargs + args.args + args.kwonlyargs
        if a.arg not in ("self", "cls")
    ]


def _is_backend_param(name: str) -> bool:
    return name == "backend" or name.endswith("_backend")


def _names_loaded(func: ast.AST) -> set[str]:
    return {
        node.id
        for node in ast.walk(func)
        if isinstance(node, ast.Name)
        and isinstance(node.ctx, (ast.Load, ast.Del))
    }


def _forwards_together(
    func: ast.FunctionDef | ast.AsyncFunctionDef, names: set[str]
) -> bool:
    """True if one call in ``func`` receives every name in ``names`` as a
    keyword (or via ``**kwargs``) — the pass-through wrapper shape."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        passed = {kw.arg for kw in node.keywords if kw.arg is not None}
        if any(kw.arg is None for kw in node.keywords):
            return True
        if names <= passed:
            return True
    return False


@rule(
    "RL007",
    "backend-kwargs-coherence",
    "backend=/evaluator= kwargs are normalised through BackendSpec, never dropped",
    scope="file",
)
def check_backend_kwargs(ctx: LintContext, src: SourceFile) -> Iterator[Finding]:
    assert src.tree is not None
    for func in iter_functions(src.tree):
        params = _param_names(func)
        backend_params = [p for p in params if _is_backend_param(p)]
        if not backend_params:
            continue
        loaded = _names_loaded(func)
        for param in backend_params:
            if param not in loaded:
                yield Finding(
                    rule_id="RL007",
                    path=src.rel,
                    line=func.lineno,
                    col=func.col_offset,
                    message=(
                        f"{func.name}() accepts {param!r} but never uses it: "
                        f"callers select a backend that silently does not "
                        f"apply"
                    ),
                )
        evaluator_params = [p for p in params if p in _EVALUATOR_PARAMS]
        if not evaluator_params:
            continue
        uses_spec = "BackendSpec" in loaded or any(
            isinstance(node, ast.Attribute) and node.attr == "coerce"
            for node in ast.walk(func)
        )
        if uses_spec:
            continue
        if _forwards_together(
            func, set(backend_params[:1]) | set(evaluator_params)
        ):
            continue
        yield Finding(
            rule_id="RL007",
            path=src.rel,
            line=func.lineno,
            col=func.col_offset,
            message=(
                f"{func.name}() combines {backend_params[0]!r} with "
                f"{'/'.join(evaluator_params)} without BackendSpec.coerce: "
                f"override precedence must be normalised in one place "
                f"(or forward both kwargs to a conforming callee)"
            ),
        )
