"""RL003 / RL004 — sources of nondeterminism in result-bearing code.

Everything the cache stores and the journal replays is keyed by *inputs*,
never by *when/where it ran* — so any value that differs between two runs
with the same inputs poisons both subsystems at once.  Two mechanical ways
that happens in Python:

* **RL003** — ambient entropy: module-level ``random.*`` (process-seeded),
  ``numpy.random.*`` legacy global state, wall-clock reads
  (``time.time``, ``datetime.now``), ``uuid.uuid4``, ``os.urandom``.  In
  the result-bearing packages (``core/``, ``simulation/``,
  ``heuristics/``) randomness must come from an explicitly seeded
  generator threaded through the call (the ``rng``/``seed`` convention)
  and time must come from the inputs.  Timing for *metrics* is fine — but
  it lives in ``runtime/``/``service``, not here.

* **RL004** — set iteration order: CPython's set order depends on
  insertion history and hash randomization for str keys.  Iterating a set
  into any order-sensitive sink — float accumulation (``sum`` is not
  associative in floats), ``join``, ``list``/``tuple`` materialisation,
  plain ``for`` loops that build ordered output — makes results depend on
  set order.  The fix is always the same: ``sorted(...)`` at the boundary.
  Membership tests, ``len``/``min``/``max``/``any``/``all`` and
  set-to-set operations are order-free and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, SourceFile
from ..projectmodel import call_name, dotted_name, module_path
from ..registry import rule

#: Packages where RL003 applies: code whose outputs are cached/journaled.
_RESULT_BEARING = ("core/", "simulation/", "heuristics/")

#: Wall-clock and entropy calls that may never appear in result-bearing code.
_FORBIDDEN_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.today": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "date.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "ambient entropy",
    "os.urandom": "ambient entropy",
    "os.getpid": "process-dependent value",
}

#: ``numpy.random`` members that *construct seeded generators* (allowed);
#: everything else on the legacy global RandomState is forbidden.
_NP_RANDOM_ALLOWED = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
    "RandomState",  # explicit RandomState(seed) is seeded construction
}

#: Attributes that are known sets on project types (``Schedule.checkpointed``
#: is a ``frozenset``; keep this list in sync when new set-typed public
#: attributes appear).
_SET_ATTRS = {"checkpointed", "capabilities"}

#: Calls whose result is a set.
_SET_CALLS = {"set", "frozenset"}

#: Order-sensitive consumers: iterating a set directly into these leaks
#: set order into an ordered result.
_ORDERED_CONSUMERS = {
    "sum": "float accumulation order",
    "math.fsum": "accumulation order",
    "list": "materialised order",
    "tuple": "materialised order",
    "enumerate": "enumeration order",
}


def _in_result_bearing(ctx: LintContext, src: SourceFile) -> bool:
    rel = module_path(ctx, src)
    if ctx.package_root is None:
        # Fixture trees have no package anchor: apply everywhere so the
        # rule is testable on synthetic files.
        return True
    return rel.startswith(_RESULT_BEARING)


@rule(
    "RL003",
    "no-ambient-entropy",
    "result-bearing code takes randomness from seeded rng params and time from inputs",
    scope="file",
)
def check_ambient_entropy(ctx: LintContext, src: SourceFile) -> Iterator[Finding]:
    if not _in_result_bearing(ctx, src):
        return
    assert src.tree is not None
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node)
        if name is None:
            continue
        reason = _FORBIDDEN_CALLS.get(name)
        if reason is not None:
            yield Finding(
                rule_id="RL003",
                path=src.rel,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{name}() is a {reason}: result-bearing code must be a "
                    f"pure function of its inputs (pass timestamps/ids in, "
                    f"or move the measurement to runtime/)"
                ),
            )
            continue
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] not in ("Random", "SystemRandom"):
                yield Finding(
                    rule_id="RL003",
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{name}() uses the process-seeded global generator: "
                        f"thread an explicit random.Random(seed) / "
                        f"numpy Generator through the call instead"
                    ),
                )
        elif (
            len(parts) >= 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] not in _NP_RANDOM_ALLOWED
        ):
            yield Finding(
                rule_id="RL003",
                path=src.rel,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"{name}() draws from numpy's legacy global state: use "
                    f"numpy.random.default_rng(seed) and pass the generator"
                ),
            )


class _SetTracker(ast.NodeVisitor):
    """Collects names assigned from statically-known sets, per scope."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()
        self.tainted: set[str] = set()  # reassigned from non-set exprs

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = _is_setish_expr(node.value, self.set_names)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.set_names.add(target.id)
                elif target.id in self.set_names:
                    self.tainted.add(target.id)
        self.generic_visit(node)

    # Do not descend into nested function scopes: their assignments
    # shadow rather than redefine.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass


def _is_setish_expr(node: ast.expr, known: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and call_name(node) in _SET_CALLS:
        return True
    if isinstance(node, ast.Name) and node.id in known:
        return True
    if isinstance(node, ast.Attribute) and node.attr in _SET_ATTRS:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra preserves set-ness when either side is a set
        return _is_setish_expr(node.left, known) or _is_setish_expr(
            node.right, known
        )
    return False


def _setish_label(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return "<set expression>"


def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@rule(
    "RL004",
    "no-set-order-leakage",
    "sets are sorted before entering ordered output or float accumulation",
    scope="file",
)
def check_set_order(ctx: LintContext, src: SourceFile) -> Iterator[Finding]:
    assert src.tree is not None
    for scope in _scopes(src.tree):
        tracker = _SetTracker()
        body = scope.body if hasattr(scope, "body") else []
        for stmt in body:
            tracker.visit(stmt)
        known = tracker.set_names - tracker.tainted

        def setish(expr: ast.expr) -> bool:
            return _is_setish_expr(expr, known)

        for node in _walk_scope(scope):
            # for x in SETISH: ...
            if isinstance(node, ast.For) and setish(node.iter):
                yield _order_finding(
                    src, node.iter, "a for-loop iterates the set directly"
                )
            # comprehensions producing ordered output from a set
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                gen = node.generators[0]
                if setish(gen.iter) and not _inside_order_free_call(node):
                    yield _order_finding(
                        src,
                        gen.iter,
                        "a comprehension materialises the set in raw order",
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node)
                reason = _ORDERED_CONSUMERS.get(name or "")
                if reason and node.args and setish(node.args[0]):
                    yield _order_finding(
                        src,
                        node.args[0],
                        f"{name}() over the set depends on {reason}",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and setish(node.args[0])
                ):
                    yield _order_finding(
                        src, node.args[0], "join() output depends on set order"
                    )


#: Consumers that are order-free even over a generator/list comprehension.
_ORDER_FREE = {
    "set",
    "frozenset",
    "len",
    "min",
    "max",
    "any",
    "all",
    "sorted",
    "dict",
}


def _inside_order_free_call(node: ast.AST) -> bool:
    parent = getattr(node, "_reprolint_parent", None)
    return (
        isinstance(parent, ast.Call)
        and call_name(parent) in _ORDER_FREE
        and parent.args
        and parent.args[0] is node
    )


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function defs, and
    annotate each node with its parent for context checks."""
    own_body = scope.body if hasattr(scope, "body") else []
    stack: list[ast.AST] = list(own_body)
    for item in stack:
        item._reprolint_parent = scope  # type: ignore[attr-defined]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for child in ast.iter_child_nodes(node):
            child._reprolint_parent = node  # type: ignore[attr-defined]
            stack.append(child)


def _order_finding(src: SourceFile, expr: ast.expr, detail: str) -> Finding:
    # sorted(SETISH) (or any order-free wrapper) never reaches here because
    # the *wrapper* call is what the consumers see; but a direct hit on the
    # iterable means raw set order leaks.
    return Finding(
        rule_id="RL004",
        path=src.rel,
        line=expr.lineno,
        col=expr.col_offset,
        message=(
            f"set iteration order leaks into results: {detail} "
            f"({_setish_label(expr)}); wrap it in sorted(...) or restructure "
            f"into order-free set algebra"
        ),
    )
