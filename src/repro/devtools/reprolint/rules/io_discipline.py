"""RL005 — durability discipline on journal/append paths.

The crash-safety story (PR 7) rests on one property: *when the journal
acknowledges a record, that record survives a crash*.  ``write()`` alone
leaves the bytes in the userspace buffer; ``flush()`` pushes them to the
OS; only ``os.fsync()`` makes them durable.  A write that skips either
step turns every resume test into a lie — the journal would replay a
prefix that the acknowledged run never persisted.

The rule fires on any function in journal-scoped code (module path
containing ``journal``) that writes to a file handle without both
flushing and fsyncing in the same function body.  Writers that hand the
durability obligation to a helper should route the actual ``write``
through that helper too (as ``CampaignJournal._append`` does).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintContext, SourceFile
from ..projectmodel import dotted_name, iter_functions, module_path
from ..registry import rule


def _in_scope(ctx: LintContext, src: SourceFile) -> bool:
    if ctx.package_root is None:
        return "journal" in src.rel
    return "journal" in module_path(ctx, src)


@rule(
    "RL005",
    "fsync-before-ack",
    "journal writes flush and fsync before the record counts as persisted",
    scope="file",
)
def check_fsync_discipline(ctx: LintContext, src: SourceFile) -> Iterator[Finding]:
    if not _in_scope(ctx, src):
        return
    assert src.tree is not None
    for func in iter_functions(src.tree):
        writes: list[ast.Call] = []
        has_flush = False
        has_fsync = False
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                target = dotted_name(node.func.value) or ""
                if attr == "write" and not target.startswith("sys."):
                    writes.append(node)
                elif attr == "flush":
                    has_flush = True
                elif attr == "fsync":
                    has_fsync = True
            elif isinstance(node.func, ast.Name) and node.func.id == "fsync":
                has_fsync = True
        if not writes:
            continue
        if has_flush and has_fsync:
            continue
        missing = []
        if not has_flush:
            missing.append("flush()")
        if not has_fsync:
            missing.append("os.fsync()")
        yield Finding(
            rule_id="RL005",
            path=src.rel,
            line=writes[0].lineno,
            col=writes[0].col_offset,
            message=(
                f"{func.name}() writes to the journal without "
                f"{' or '.join(missing)}: an acknowledged record could "
                f"vanish in a crash, breaking journaled resume"
            ),
        )
