"""RL001 / RL002 — cache-key completeness and backend hygiene.

The result cache and the campaign journal are only trustworthy if two
things hold at all times:

* **completeness** — every quantity that affects an evaluation enters the
  key payload.  PR 4's downtime bug was exactly a violation: a
  ``PlatformSpec`` field (``downtime``) silently missing from the scenario
  path meant every cached row had been computed at ``D = 0`` while its key
  claimed otherwise.  RL001 is the machine-checked form of that contract,
  at three places where a field can fall out of the flow:

  1. the canonical platform payload in ``runtime/keys.py`` must read every
     field of ``core.platform.Platform``;
  2. every parameter of a ``*_key`` / ``*_fingerprint`` builder must be
     used by its body (an ignored parameter is a key that lies);
  3. any direct construction of a spec class (``Platform`` /
     ``PlatformSpec``) inside a class that itself carries fields of the
     same names must forward *all* of them — relying on a default is how
     the scenario layer silently dropped the downtime;
  4. every public attribute a ``FailureModel`` subclass stores must appear
     in its ``spec()`` payload (specs are the content that enters
     Monte-Carlo keys).

* **hygiene** — the evaluation *backend* is a pure performance knob: the
  python/numpy/native backends are bit-for-bit (sweep) or 1e-9-equivalent
  (one-shot) by contract, and a cache warmed by one serves the others.  So
  no backend or evaluator identifier may ever reach a key payload (RL002),
  and any change to a payload's shape must come with a ``KEY_VERSION``
  bump, enforced through the committed key-schema lock file
  (``.reprolint-keys.json``; refresh with ``repro lint --write-key-lock``).
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Iterator

from ..engine import Finding, LintContext, LintError, SourceFile, load_files
from ..projectmodel import (
    call_name,
    dataclass_fields,
    find_class,
    init_assigned_attrs,
    iter_functions,
    string_keys,
)
from ..registry import rule

__all__ = ["compute_key_schema", "key_lock_path", "load_key_lock", "write_key_lock"]

#: Spec classes whose construction must forward every same-named field of
#: the enclosing class (RL001 check 3).  Both live in ``core/platform.py``.
SPEC_CLASSES = ("Platform", "PlatformSpec")

_KEYS_REL = "runtime/keys.py"
_PLATFORM_REL = "core/platform.py"
_FAILURES_REL = "simulation/failures.py"

#: Identifier fragments that mark a backend/evaluator leak (RL002).
_BACKEND_RE = re.compile(r"backend|evaluator", re.IGNORECASE)

#: Default location of the key-schema lock, relative to the repo root.
KEY_LOCK_NAME = ".reprolint-keys.json"


# ----------------------------------------------------------------------
# Shared extraction helpers
# ----------------------------------------------------------------------
def _payload_dicts(func: ast.FunctionDef | ast.AsyncFunctionDef) -> list[ast.Dict]:
    """Key payload dict literals in ``func``: dicts with a ``"kind"`` key."""
    return [
        node
        for node in ast.walk(func)
        if isinstance(node, ast.Dict) and "kind" in string_keys(node)
    ]


def _is_key_builder(name: str) -> bool:
    return name.endswith("_key") or name.endswith("_fingerprint") or (
        name.endswith("_payload")
    )


def compute_key_schema(ctx: LintContext) -> dict | None:
    """The key-schema summary of the linted tree's ``runtime/keys.py``.

    ``{"key_version": int, "algo_version": int, "payloads": {function:
    sorted payload keys}}`` — the content the lock file pins.  ``None``
    when the linted tree carries no ``runtime/keys.py`` (fixture suites).
    """
    src = ctx.package_file(_KEYS_REL)
    if src is None or src.tree is None:
        return None
    versions: dict[str, int] = {}
    for node in src.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if (
                isinstance(target, ast.Name)
                and target.id in ("KEY_VERSION", "ALGO_VERSION")
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
            ):
                versions[target.id] = node.value.value
    payloads: dict[str, list[str]] = {}
    for func in iter_functions(src.tree):
        dicts = _payload_dicts(func)
        if dicts:
            keys: set[str] = set()
            for node in dicts:
                keys.update(string_keys(node))
            payloads[func.name] = sorted(keys)
    return {
        "key_version": versions.get("KEY_VERSION"),
        "algo_version": versions.get("ALGO_VERSION"),
        "payloads": payloads,
    }


def key_lock_path(ctx: LintContext) -> Path:
    configured = ctx.config.get("key_lock_path")
    if configured:
        return Path(str(configured))
    return ctx.repo_root / KEY_LOCK_NAME


def load_key_lock(path: Path) -> dict | None:
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise LintError(f"key lock {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or "payloads" not in payload:
        raise LintError(f"key lock {path} has an unexpected shape")
    return payload


def write_key_lock(ctx: LintContext, path: Path | None = None) -> Path:
    """Record the current key schema as the accepted one."""
    schema = compute_key_schema(ctx)
    if schema is None:
        raise LintError(
            "cannot write a key lock: the linted tree has no runtime/keys.py"
        )
    target = path or key_lock_path(ctx)
    target.write_text(
        json.dumps(schema, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


# ----------------------------------------------------------------------
# RL001 — cache-key completeness
# ----------------------------------------------------------------------
def _spec_class_fields(ctx: LintContext) -> dict[str, list[str]]:
    """Fields of every spec class found anywhere in the linted tree."""
    table: dict[str, list[str]] = {}
    for src in ctx.files:
        if src.tree is None:
            continue
        for name in SPEC_CLASSES:
            node = find_class(src, name)
            if node is not None and name not in table:
                fields = dataclass_fields(node)
                if fields:
                    table[name] = fields
    return table


def _check_platform_payload(
    ctx: LintContext, spec_fields: dict[str, list[str]]
) -> Iterator[Finding]:
    keys_src = ctx.package_file(_KEYS_REL)
    platform_fields = spec_fields.get("Platform")
    if keys_src is None or keys_src.tree is None or not platform_fields:
        return
    for func in iter_functions(keys_src.tree):
        if func.name != "_platform_payload":
            continue
        params = [a.arg for a in func.args.args + func.args.kwonlyargs]
        if not params:
            continue
        platform_param = params[0]
        read = {
            node.attr
            for node in ast.walk(func)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == platform_param
        }
        for field_name in platform_fields:
            if field_name not in read:
                yield Finding(
                    rule_id="RL001",
                    path=keys_src.rel,
                    line=func.lineno,
                    col=func.col_offset,
                    message=(
                        f"platform key payload never reads "
                        f"Platform.{field_name}: a platform differing only "
                        f"in {field_name!r} would alias a cached result"
                    ),
                )


def _check_builder_params(ctx: LintContext) -> Iterator[Finding]:
    keys_src = ctx.package_file(_KEYS_REL)
    if keys_src is None or keys_src.tree is None:
        return
    for func in iter_functions(keys_src.tree):
        if not _is_key_builder(func.name):
            continue
        params = [
            a.arg
            for a in func.args.args + func.args.kwonlyargs + func.args.posonlyargs
            if a.arg not in ("self", "cls")
        ]
        used = {
            node.id for node in ast.walk(func) if isinstance(node, ast.Name)
        }
        for param in params:
            if param not in used:
                yield Finding(
                    rule_id="RL001",
                    path=keys_src.rel,
                    line=func.lineno,
                    col=func.col_offset,
                    message=(
                        f"key builder {func.name}() accepts {param!r} but "
                        f"never uses it: the parameter does not reach the "
                        f"key payload"
                    ),
                )


def _enclosing_classes(tree: ast.Module) -> Iterator[tuple[ast.ClassDef, ast.Call]]:
    """(class, spec-construction call) pairs, innermost class wins."""

    class Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.stack: list[ast.ClassDef] = []
            self.hits: list[tuple[ast.ClassDef, ast.Call]] = []

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            self.stack.append(node)
            self.generic_visit(node)
            self.stack.pop()

        def visit_Call(self, node: ast.Call) -> None:
            if self.stack and call_name(node) in SPEC_CLASSES:
                self.hits.append((self.stack[-1], node))
            self.generic_visit(node)

    visitor = Visitor()
    visitor.visit(tree)
    yield from visitor.hits


def _check_spec_constructions(
    ctx: LintContext, spec_fields: dict[str, list[str]]
) -> Iterator[Finding]:
    for src in ctx.files:
        if src.tree is None:
            continue
        for cls, call in _enclosing_classes(src.tree):
            constructed = call_name(call)
            target_fields = spec_fields.get(constructed or "")
            if not target_fields:
                continue
            own_fields = set(dataclass_fields(cls))
            overlap = [f for f in target_fields if f in own_fields]
            if not overlap:
                continue
            passed = {kw.arg for kw in call.keywords if kw.arg is not None}
            passed.update(target_fields[: len(call.args)])  # positional args
            if any(kw.arg is None for kw in call.keywords):
                continue  # **kwargs forwarding: assume complete
            for field_name in overlap:
                if field_name not in passed:
                    yield Finding(
                        rule_id="RL001",
                        path=src.rel,
                        line=call.lineno,
                        col=call.col_offset,
                        message=(
                            f"{cls.name} constructs {constructed} without "
                            f"forwarding its own {field_name!r} field — the "
                            f"default silently replaces the carried value "
                            f"(the PR-4 downtime-drop bug class)"
                        ),
                    )


def _check_failure_specs(ctx: LintContext) -> Iterator[Finding]:
    src = ctx.package_file(_FAILURES_REL)
    if src is None or src.tree is None:
        return
    for node in src.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        spec_method = next(
            (
                item
                for item in node.body
                if isinstance(item, ast.FunctionDef) and item.name == "spec"
            ),
            None,
        )
        if spec_method is None:
            continue
        returned_keys: set[str] = set()
        has_dict_return = False
        for stmt in ast.walk(spec_method):
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Dict):
                has_dict_return = True
                returned_keys.update(string_keys(stmt.value))
        if not has_dict_return:
            continue  # abstract declaration or computed payload: not checkable
        if "law" not in returned_keys:
            yield Finding(
                rule_id="RL001",
                path=src.rel,
                line=spec_method.lineno,
                col=spec_method.col_offset,
                message=(
                    f"{node.name}.spec() payload has no 'law' entry; "
                    f"failure_model_from_spec and the Monte-Carlo keys "
                    f"require one"
                ),
            )
        stored = set(init_assigned_attrs(node)) | set(dataclass_fields(node))
        for attr in sorted(stored):
            if attr not in returned_keys:
                yield Finding(
                    rule_id="RL001",
                    path=src.rel,
                    line=spec_method.lineno,
                    col=spec_method.col_offset,
                    message=(
                        f"{node.name}.spec() omits stored parameter "
                        f"{attr!r}: two models differing only in {attr!r} "
                        f"would share a Monte-Carlo cache key"
                    ),
                )


@rule(
    "RL001",
    "cache-key-completeness",
    "every Scenario/PlatformSpec/FailureModel field flows into its key payload",
    scope="project",
)
def check_cache_key_completeness(ctx: LintContext) -> Iterator[Finding]:
    spec_fields = _spec_class_fields(ctx)
    yield from _check_platform_payload(ctx, spec_fields)
    yield from _check_builder_params(ctx)
    yield from _check_spec_constructions(ctx, spec_fields)
    yield from _check_failure_specs(ctx)


# ----------------------------------------------------------------------
# RL002 — backend hygiene + KEY_VERSION lock
# ----------------------------------------------------------------------
def _identifiers(node: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id, child
        elif isinstance(child, ast.Attribute):
            yield child.attr, child
        elif isinstance(child, ast.arg):
            yield child.arg, child


@rule(
    "RL002",
    "backend-hygiene",
    "no backend identifier reaches a key payload; shape changes bump KEY_VERSION",
    scope="project",
)
def check_backend_hygiene(ctx: LintContext) -> Iterator[Finding]:
    keys_src = ctx.package_file(_KEYS_REL)
    if keys_src is None or keys_src.tree is None:
        return

    # 1. No backend/evaluator identifier anywhere in a key builder.
    for func in iter_functions(keys_src.tree):
        if not (_is_key_builder(func.name) or _payload_dicts(func)):
            continue
        for name, node in _identifiers(func):
            if _BACKEND_RE.search(name):
                yield Finding(
                    rule_id="RL002",
                    path=keys_src.rel,
                    line=getattr(node, "lineno", func.lineno),
                    col=getattr(node, "col_offset", func.col_offset),
                    message=(
                        f"identifier {name!r} inside key builder "
                        f"{func.name}(): backends are bit-compatible by "
                        f"contract and must stay out of cache keys"
                    ),
                )
        for payload in _payload_dicts(func):
            for key in string_keys(payload):
                if _BACKEND_RE.search(key):
                    yield Finding(
                        rule_id="RL002",
                        path=keys_src.rel,
                        line=payload.lineno,
                        col=payload.col_offset,
                        message=(
                            f"payload key {key!r} in {func.name}() names a "
                            f"backend: keys must be backend-agnostic"
                        ),
                    )

    # 2. The payload schema must match the committed lock, or KEY_VERSION
    #    must have moved (and the lock refreshed) in the same change.
    schema = compute_key_schema(ctx)
    if schema is None:
        return
    lock_path = key_lock_path(ctx)
    lock = load_key_lock(lock_path)
    anchor = keys_src
    if lock is None:
        yield Finding(
            rule_id="RL002",
            path=anchor.rel,
            line=1,
            col=0,
            message=(
                f"no key-schema lock at {lock_path.name}; record the "
                f"current schema with 'repro lint --write-key-lock'"
            ),
        )
        return
    shape_changed = lock.get("payloads") != schema["payloads"]
    version_moved = (
        lock.get("key_version") != schema["key_version"]
        or lock.get("algo_version") != schema["algo_version"]
    )
    if shape_changed and not version_moved:
        changed = sorted(
            set(lock.get("payloads", {})) ^ set(schema["payloads"])
        ) or sorted(
            name
            for name, keys in schema["payloads"].items()
            if lock.get("payloads", {}).get(name) != keys
        )
        yield Finding(
            rule_id="RL002",
            path=anchor.rel,
            line=1,
            col=0,
            message=(
                f"key payload shape changed ({', '.join(changed)}) without a "
                f"KEY_VERSION bump: stale cache entries would alias the new "
                f"schema — bump KEY_VERSION and refresh the lock with "
                f"'repro lint --write-key-lock'"
            ),
        )
    elif shape_changed or version_moved:
        if lock != schema:
            yield Finding(
                rule_id="RL002",
                path=anchor.rel,
                line=1,
                col=0,
                message=(
                    f"key-schema lock {lock_path.name} is stale (recorded "
                    f"KEY_VERSION={lock.get('key_version')}/"
                    f"ALGO_VERSION={lock.get('algo_version')}, tree has "
                    f"{schema['key_version']}/{schema['algo_version']}): "
                    f"refresh it with 'repro lint --write-key-lock'"
                ),
            )


def compute_lock_for_paths(
    paths: list[Path], repo_root: Path, *, key_lock_path_override: str | None = None
) -> tuple[LintContext, dict | None]:
    """Build a context and schema for the CLI's ``--write-key-lock``."""
    from ..engine import LintContext as _Ctx, _detect_package_root

    files = load_files(paths, repo_root)
    ctx = _Ctx(files, package_root=_detect_package_root(files), repo_root=repo_root)
    if key_lock_path_override:
        ctx.config["key_lock_path"] = key_lock_path_override
    return ctx, compute_key_schema(ctx)
