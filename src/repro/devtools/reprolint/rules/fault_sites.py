"""RL006 — the fault-point site registry is closed and exercised.

``REPRO_FAULTS`` clauses are matched against site names by *string
equality* at runtime: a typo in a test's spec (``worker_crsh:unit=2``)
does not error — it silently arms nothing, and the chaos test passes
while exercising no fault path at all.  The defence is a closed registry:
``runtime/faults.py`` declares ``KNOWN_FAULT_SITES``, and this rule
cross-references it three ways:

* every ``fault_point(...)`` call site in the source must use a string
  literal naming a registered site (literals only — a computed site name
  cannot be checked statically *or* grepped for by an operator);
* every registered site must actually be invoked somewhere in the source
  (a registered-but-dead site documents a fault path that cannot fire);
* every site named in ``REPRO_FAULTS`` strings / ``active_faults`` /
  ``fault_fired`` calls under ``tests/`` and ``.github/workflows/`` must
  be registered (this is what catches the typo'd chaos test).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator

from ..engine import _PRAGMA_RE, Finding, LintContext
from ..projectmodel import call_name
from ..registry import rule

_FAULTS_REL = "runtime/faults.py"
_REGISTRY_NAME = "KNOWN_FAULT_SITES"

#: Textual fault-spec references in tests and workflow files.
_SPEC_RE = re.compile(
    r"""(?:
        REPRO_FAULTS["']?\s*[:=,]\s*   # setenv("REPRO_FAULTS", "...") / env syntax
        | active_faults\(\s*
        | with_faults\(\s*
        | fault_fired\(\s*
        | fault_point\(\s*
    )
    r?f?["']([^"']+)["']""",
    re.VERBOSE,
)


def _registry_sites(ctx: LintContext) -> tuple[set[str] | None, object]:
    """(registered sites, the faults SourceFile) — sites is None if the
    registry variable is missing or not a literal collection of strings."""
    src = ctx.package_file(_FAULTS_REL)
    if src is None or src.tree is None:
        return None, None
    for node in src.tree.body:
        if isinstance(node, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == _REGISTRY_NAME
            for t in node.targets
        ):
            value = node.value
            if isinstance(value, ast.Call) and call_name(value) in (
                "frozenset",
                "set",
                "tuple",
            ):
                value = value.args[0] if value.args else value
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                sites = {
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                }
                return sites, src
            return None, src
    return None, src


def _clause_sites(spec: str) -> Iterator[str]:
    for clause in spec.split(";"):
        site = clause.strip().split(":", 1)[0].strip()
        if site and "{" not in site and "$" not in site:
            yield site


@rule(
    "RL006",
    "fault-site-registry",
    "every fault site is registered in runtime/faults.py, invoked, and spelled right",
    scope="project",
)
def check_fault_sites(ctx: LintContext) -> Iterator[Finding]:
    sites, faults_src = _registry_sites(ctx)
    if faults_src is None:
        return  # fixture tree without a faults module: nothing to check
    if sites is None:
        yield Finding(
            rule_id="RL006",
            path=faults_src.rel,
            line=1,
            col=0,
            message=(
                f"runtime/faults.py declares no {_REGISTRY_NAME} literal: "
                f"the fault-site namespace must be a closed, greppable "
                f"registry"
            ),
        )
        return

    invoked: set[str] = set()
    for src in ctx.files:
        if src.tree is None or src is faults_src:
            continue
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.split(".")[-1] != "fault_point":
                continue
            if not node.args:
                continue
            site_arg = node.args[0]
            if not (
                isinstance(site_arg, ast.Constant)
                and isinstance(site_arg.value, str)
            ):
                yield Finding(
                    rule_id="RL006",
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "fault_point() site must be a string literal so the "
                        "registry cross-check (and operators grepping for a "
                        "site) can see it"
                    ),
                )
                continue
            site = site_arg.value
            invoked.add(site)
            if site not in sites:
                yield Finding(
                    rule_id="RL006",
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"fault site {site!r} is not in {_REGISTRY_NAME}: "
                        f"register it in runtime/faults.py (and document its "
                        f"default action)"
                    ),
                )

    # Textual references in tests and CI workflows.
    referenced: set[str] = set()
    for text_path, rel in _reference_files(ctx):
        try:
            text = text_path.read_text(encoding="utf-8")
        except OSError:
            continue
        text_lines = text.splitlines()
        for match in _SPEC_RE.finditer(text):
            line = text[: match.start()].count("\n") + 1
            # The text scan honours the same per-line pragma as parsed
            # sources (needed by reprolint's own fixtures, which spell out
            # deliberately-typo'd sites).
            pragma = _PRAGMA_RE.search(text_lines[line - 1])
            if pragma and {"RL006", "*"} & {
                p.strip() for p in pragma.group(1).split(",")
            }:
                continue
            for site in _clause_sites(match.group(1)):
                referenced.add(site)
                if site not in sites:
                    yield Finding(
                        rule_id="RL006",
                        path=rel,
                        line=line,
                        col=0,
                        message=(
                            f"fault spec names unregistered site {site!r}: "
                            f"a typo here arms nothing and the chaos test "
                            f"silently stops testing anything"
                        ),
                    )

    # A site is "exercised" if the runtime invokes it or the test suite
    # drives it directly (synthetic sites such as the fault tests' "demo").
    for site in sorted(sites - invoked - referenced):
        yield Finding(
            rule_id="RL006",
            path=faults_src.rel,
            line=1,
            col=0,
            message=(
                f"registered fault site {site!r} has no fault_point() call "
                f"site: either wire it into the runtime or drop it from "
                f"{_REGISTRY_NAME}"
            ),
        )


def _reference_files(ctx: LintContext) -> Iterator[tuple[Path, str]]:
    root = ctx.repo_root
    for directory, pattern in (("tests", "*.py"), (".github/workflows", "*.yml")):
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob(pattern)):
            if "__pycache__" in path.parts:
                continue
            yield path, path.relative_to(root).as_posix()
