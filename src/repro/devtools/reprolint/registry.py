"""Rule registry: every reprolint rule self-registers here.

A rule is a small object wrapping a checker callable.  ``scope`` decides
the calling convention:

* ``"file"`` — ``check(ctx, src)`` is invoked once per parsed source file
  and yields :class:`~repro.devtools.reprolint.engine.Finding` objects;
* ``"project"`` — ``check(ctx)`` is invoked once per lint run with the
  whole :class:`~repro.devtools.reprolint.engine.LintContext` (for
  cross-module invariants such as cache-key completeness).

Importing :mod:`repro.devtools.reprolint.rules` populates the table; the
engine and the CLI only ever read :data:`RULES`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = ["Rule", "RULES", "rule"]


@dataclass(frozen=True)
class Rule:
    """One registered invariant check."""

    rule_id: str
    name: str
    invariant: str  # one-line statement of the contract being enforced
    scope: str  # "file" | "project"
    check: Callable


RULES: dict[str, Rule] = {}


def rule(rule_id: str, name: str, invariant: str, *, scope: str) -> Callable:
    """Decorator registering a checker under ``rule_id``."""
    if scope not in ("file", "project"):
        raise ValueError(f"scope must be 'file' or 'project', got {scope!r}")

    def decorate(check: Callable) -> Callable:
        if rule_id in RULES:
            raise ValueError(f"rule {rule_id} registered twice")
        RULES[rule_id] = Rule(
            rule_id=rule_id,
            name=name,
            invariant=invariant,
            scope=scope,
            check=check,
        )
        return check

    return decorate
