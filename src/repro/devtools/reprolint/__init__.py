"""reprolint — AST invariant checker for determinism & cache-key hygiene.

Run it as ``repro lint [paths...]`` or programmatically::

    from repro.devtools.reprolint import run_lint
    result = run_lint(["src/repro"], repo_root=".")
    assert result.clean, result.findings

The engine (:mod:`.engine`) loads and parses files, applies
``# reprolint: allow[RLxxx]`` pragmas and baseline grandfathering, and
drives the registered rules (:mod:`.rules`).  Importing this package
registers every rule.
"""

from __future__ import annotations

from . import rules  # noqa: F401  (registration side effects)
from .engine import (
    Finding,
    LintContext,
    LintError,
    LintResult,
    SourceFile,
    load_baseline,
    run_lint,
    write_baseline,
)
from .registry import RULES, Rule
from .reporters import render_json, render_text
from .rules.cache_keys import (
    compute_key_schema,
    key_lock_path,
    load_key_lock,
    write_key_lock,
)

__all__ = [
    "Finding",
    "LintContext",
    "LintError",
    "LintResult",
    "RULES",
    "Rule",
    "SourceFile",
    "compute_key_schema",
    "key_lock_path",
    "load_baseline",
    "load_key_lock",
    "render_json",
    "render_text",
    "run_lint",
    "write_baseline",
    "write_key_lock",
]
