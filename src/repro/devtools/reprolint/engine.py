"""reprolint engine: file loading, pragmas, baselines and the lint driver.

reprolint is a project-specific static-analysis pass: where generic linters
check style, these rules check the *invariants this reproduction's
guarantees rest on* — cache-key completeness, backend-agnostic keys,
determinism of everything that feeds a cached or journaled result, fsync
discipline on durability paths, the fault-site registry, and the
``BackendSpec`` threading convention.  Each rule is the machine-checked
form of a contract some PR established; see the rule modules under
:mod:`repro.devtools.reprolint.rules` and the invariant catalog in
``EXPERIMENTS.md``.

Suppression
-----------
A finding on a line carrying the pragma ``# reprolint: allow[RLxxx]``
(several ids comma-separated, or ``allow[*]``) is *suppressed* — the
sanctioned way to mark a deliberate exception, reviewed where it lives.
``# reprolint: skip-file`` anywhere in a file exempts the whole file.

Baseline
--------
A baseline file (JSON list of finding fingerprints) grandfathers known
findings so the gate can be enabled before the backlog is empty; findings
whose fingerprint is listed are reported as ``baselined`` and do not fail
the run.  Fingerprints deliberately exclude line numbers, so unrelated
edits above a grandfathered finding do not resurrect it.

Exit codes (the CLI contract): 0 — clean, 1 — findings, 2 — usage or
internal error.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "LintContext",
    "LintError",
    "LintResult",
    "SourceFile",
    "run_lint",
]

#: Pragma grammar: ``# reprolint: allow[RL001]`` / ``allow[RL001,RL004]`` /
#: ``allow[*]`` / ``# reprolint: skip-file``.
_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*allow\[([A-Za-z0-9*,\s]+)\]")
_SKIP_FILE_RE = re.compile(r"#\s*reprolint:\s*skip-file\b")


class LintError(RuntimeError):
    """A usage or internal error (maps to exit code 2 in the CLI)."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str  # repo-root-relative, POSIX separators
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-insensitive identity used by baseline files."""
        return f"{self.rule_id}::{self.path}::{self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id, self.message)


class SourceFile:
    """One parsed python source file plus its suppression pragmas."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree: ast.Module | None = None
        self.parse_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(text, filename=rel)
        except SyntaxError as exc:
            self.parse_error = exc
        self.skip_file = bool(_SKIP_FILE_RE.search(text))
        self.allowed: dict[int, set[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = _PRAGMA_RE.search(line)
            if match:
                ids = {part.strip() for part in match.group(1).split(",")}
                self.allowed[number] = {i for i in ids if i}

    def is_allowed(self, line: int, rule_id: str) -> bool:
        ids = self.allowed.get(line)
        if not ids:
            return False
        return rule_id in ids or "*" in ids


@dataclass
class LintResult:
    """Outcome of one lint run (what the reporters render)."""

    findings: list[Finding]
    suppressed: list[Finding]
    baselined: list[Finding]
    files_scanned: int
    rules_run: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings


class LintContext:
    """Everything a rule may look at: parsed files plus project lookups.

    ``package_root`` is the directory of the ``repro`` package being linted
    (detected as the directory containing ``runtime/keys.py``); project
    rules that cross-reference specific modules resolve them against it and
    skip quietly when linting a tree that does not carry them (fixture
    suites).  ``repo_root`` is where repo-level artifacts (``tests/``,
    ``.github/workflows``) are looked up for cross-file registries.
    """

    def __init__(
        self,
        files: list[SourceFile],
        *,
        package_root: Path | None,
        repo_root: Path,
    ) -> None:
        self.files = files
        self.package_root = package_root
        self.repo_root = repo_root
        self._by_rel: dict[str, SourceFile] = {f.rel: f for f in files}
        self.config: dict[str, object] = {}

    def package_file(self, rel_to_package: str) -> SourceFile | None:
        """The parsed file at ``<package_root>/<rel_to_package>``, if linted."""
        if self.package_root is None:
            return None
        target = (self.package_root / rel_to_package).resolve()
        for src in self.files:
            if src.path == target:
                return src
        return None

    def package_rel(self, src: SourceFile) -> str | None:
        """``src``'s path relative to the package root (POSIX), or ``None``."""
        if self.package_root is None:
            return None
        try:
            return src.path.relative_to(self.package_root).as_posix()
        except ValueError:
            return None


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            candidates = [path] if path.suffix == ".py" else []
        elif path.is_dir():
            candidates = sorted(
                p
                for p in path.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield resolved


def _detect_package_root(files: list[SourceFile]) -> Path | None:
    """The ``repro`` package dir: the one holding ``runtime/keys.py``."""
    for src in files:
        parts = src.path.parts
        if parts[-2:] == ("runtime", "keys.py"):
            return src.path.parents[1]
    return None


def load_files(paths: Iterable[Path], repo_root: Path) -> list[SourceFile]:
    files = []
    for path in _iter_python_files(paths):
        try:
            rel = path.relative_to(repo_root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        files.append(SourceFile(path, rel, path.read_text(encoding="utf-8")))
    return files


def load_baseline(path: Path) -> set[str]:
    """Fingerprints grandfathered by a baseline file."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from exc
    entries = payload.get("findings") if isinstance(payload, dict) else payload
    if not isinstance(entries, list) or not all(
        isinstance(e, str) for e in entries
    ):
        raise LintError(
            f"baseline {path} must be a JSON list of fingerprints "
            '(or {"findings": [...]})'
        )
    return set(entries)


def write_baseline(path: Path, result: LintResult) -> None:
    """Grandfather every active finding of ``result`` into ``path``."""
    fingerprints = sorted({f.fingerprint for f in result.findings})
    path.write_text(
        json.dumps({"findings": fingerprints}, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def run_lint(
    paths: Iterable[Path | str],
    *,
    repo_root: Path | str | None = None,
    baseline: set[str] | None = None,
    only_rules: Iterable[str] | None = None,
    config: dict[str, object] | None = None,
) -> LintResult:
    """Lint ``paths`` and return the classified findings.

    ``only_rules`` restricts the run to a subset of rule ids (unknown ids
    raise :class:`LintError`).  ``config`` entries are made available to
    rules through ``ctx.config`` (the key-lock path travels this way).
    """
    from .registry import RULES

    path_objs = [Path(p) for p in paths]
    root = Path(repo_root).resolve() if repo_root is not None else Path.cwd().resolve()
    files = load_files(path_objs, root)
    ctx = LintContext(
        files,
        package_root=_detect_package_root(files),
        repo_root=root,
    )
    if config:
        ctx.config.update(config)

    if only_rules is not None:
        wanted = list(only_rules)
        unknown = [r for r in wanted if r not in RULES]
        if unknown:
            raise LintError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(RULES))}"
            )
        active = {r: RULES[r] for r in wanted}
    else:
        active = dict(RULES)

    raw: list[Finding] = []
    for src in files:
        if src.parse_error is not None:
            raw.append(
                Finding(
                    rule_id="RL000",
                    path=src.rel,
                    line=src.parse_error.lineno or 1,
                    col=(src.parse_error.offset or 1) - 1,
                    message=f"file does not parse: {src.parse_error.msg}",
                )
            )
    for rule in active.values():
        if rule.scope == "file":
            for src in files:
                if src.tree is None or src.skip_file:
                    continue
                raw.extend(rule.check(ctx, src))
        else:
            raw.extend(rule.check(ctx))

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    baselined: list[Finding] = []
    grandfathered = baseline or set()
    for finding in sorted(raw, key=Finding.sort_key):
        src = ctx._by_rel.get(finding.path)
        if src is not None and (
            src.skip_file or src.is_allowed(finding.line, finding.rule_id)
        ):
            suppressed.append(finding)
        elif finding.fingerprint in grandfathered:
            baselined.append(finding)
        else:
            findings.append(finding)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        baselined=baselined,
        files_scanned=len(files),
        rules_run=tuple(sorted(active)),
    )
