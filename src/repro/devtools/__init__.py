"""Developer tooling shipped with the package.

Nothing under :mod:`repro.devtools` is imported by the library's runtime
paths: these modules exist for contributors and CI (static analysis,
invariant checking), and the CLI loads them lazily so ``import repro``
stays exactly as cheap as before.
"""
