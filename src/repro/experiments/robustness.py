"""Failure-law robustness campaign: how far does Theorem 3 carry?

The paper's analytical results assume memoryless exponential failures.  The
repository ships Weibull and LogNormal failure models — the classical
non-memoryless alternatives of the checkpointing literature — precisely to
probe the robustness of the heuristics beyond that assumption, and the
batched Monte-Carlo engine makes the required replica counts affordable.
This module drives the study end to end:

* sweep **failure law x shape parameter x scenario grid**, solving one
  heuristic per scenario and simulating the resulting schedule under every
  law (all laws are matched to the platform's MTBF, so rows are comparable);
* **validate** the analytical backend against the simulation on the
  exponential rows, where Theorem 3 is exact: the expectation must fall
  within the simulation's 95% confidence interval;
* **quantify** the non-exponential gap: the relative deviation between the
  analytical expectation and the empirical mean under Weibull / LogNormal
  failures of the same MTBF;
* emit a machine-readable JSON report and (when matplotlib is available) a
  figure.

Everything routes through the campaign runtime
(:meth:`repro.runtime.runner.CampaignRunner.run_mc_units`): rows are
content-addressed by scenario, heuristic, law spec and replica count, so a
re-run with a warm cache is free, and ``--jobs N`` fans the grid out over
worker processes without changing a single sample.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..core.platform import Platform
from .scenarios import SMOKE_TASK_COUNTS, Scenario, scenario_grid

__all__ = [
    "DEFAULT_LAWS",
    "RobustnessRow",
    "RobustnessReport",
    "law_specs_for",
    "run_robustness",
    "save_robustness_report",
    "plot_robustness",
]

#: Failure laws of the campaign, in report order.  ``exponential`` is the
#: paper's model (and the validation baseline); the other two probe the
#: robustness of the analytical ranking to non-memoryless failures.
DEFAULT_LAWS: tuple[str, ...] = ("exponential", "weibull", "lognormal")

#: Weibull shape parameters swept by default: ``k < 1`` is the infant-
#: mortality regime observed on real platforms, ``k = 1`` recovers the
#: exponential law (a useful internal consistency check).
DEFAULT_WEIBULL_SHAPES: tuple[float, ...] = (0.5, 0.7)

#: LogNormal sigma parameters swept by default.
DEFAULT_LOGNORMAL_SIGMAS: tuple[float, ...] = (1.0,)


@dataclass(frozen=True)
class RobustnessRow:
    """One (scenario instance, heuristic, failure law) comparison."""

    family: str
    n_tasks: int
    seed: int
    heuristic: str
    law: str
    law_label: str
    law_params: dict[str, float]
    mtbf: float
    n_checkpointed: int
    analytical: float
    mc_mean: float
    mc_std: float
    ci_low: float
    ci_high: float
    mean_failures: float
    n_runs: int
    downtime: float = 0.0
    processors: int = 1

    @property
    def scenario_label(self) -> str:
        """Scenario tag for tables and figures; platform axes appear as
        soon as they leave the paper's defaults, so a D > 0 or p > 1 row
        never shares a label with the baseline point."""
        label = f"{self.family}-{self.n_tasks}"
        if self.downtime != 0.0:
            label += f"-D{self.downtime:g}"
        if self.processors != 1:
            label += f"-p{self.processors}"
        return label

    @property
    def within_ci(self) -> bool:
        """Whether the analytical expectation falls in the simulation 95% CI."""
        return self.ci_low <= self.analytical <= self.ci_high

    @property
    def relative_gap(self) -> float:
        """Signed relative deviation of the MC mean from the analytical value."""
        if self.analytical == 0.0:
            return 0.0 if self.mc_mean == 0.0 else math.inf
        return (self.mc_mean - self.analytical) / self.analytical


@dataclass(frozen=True)
class RobustnessReport:
    """Outcome of one robustness campaign."""

    rows: tuple[RobustnessRow, ...]
    n_runs: int
    heuristic: str
    seed: int
    mc_seed: int

    @property
    def exponential_rows(self) -> tuple[RobustnessRow, ...]:
        """The rows where Theorem 3 is exact (the validation baseline)."""
        return tuple(row for row in self.rows if row.law == "exponential")

    @property
    def exponential_validated(self) -> bool:
        """Whether every exponential row's analytical value lies in its CI."""
        rows = self.exponential_rows
        return bool(rows) and all(row.within_ci for row in rows)

    def worst_gap(self, law: str) -> float:
        """Largest absolute relative gap across the rows of one law."""
        gaps = [abs(row.relative_gap) for row in self.rows if row.law == law]
        return max(gaps) if gaps else 0.0

    def to_payload(self) -> dict[str, Any]:
        """JSON-able report payload (consumed by the CI gate and the docs)."""
        return {
            "kind": "robustness-report",
            "heuristic": self.heuristic,
            "n_runs": self.n_runs,
            "seed": self.seed,
            "mc_seed": self.mc_seed,
            "exponential_validated": self.exponential_validated,
            "worst_gaps": {
                law: self.worst_gap(law)
                for law in sorted({row.law for row in self.rows})
            },
            "rows": [
                {
                    **asdict(row),
                    "within_ci": row.within_ci,
                    "relative_gap": row.relative_gap,
                }
                for row in self.rows
            ],
        }

    def render(self) -> str:
        """Human-readable table of the campaign."""
        lines = [
            f"robustness campaign — heuristic {self.heuristic}, "
            f"{self.n_runs} replicas/row, seed {self.seed}",
            f"{'scenario':<16} {'law':<16} {'analytical':>11} {'MC mean':>11} "
            f"{'95% CI':>23} {'gap':>8}  {'in CI'}",
        ]
        for row in self.rows:
            scenario = row.scenario_label
            ci = f"[{row.ci_low:9.1f},{row.ci_high:9.1f}]"
            lines.append(
                f"{scenario:<16} {row.law_label:<16} {row.analytical:>11.1f} "
                f"{row.mc_mean:>11.1f} {ci:>23} {100 * row.relative_gap:>+7.2f}%  "
                f"{'yes' if row.within_ci else 'NO'}"
            )
        verdict = "PASS" if self.exponential_validated else "FAIL"
        lines.append(
            f"exponential validation (Theorem 3 within every 95% CI): {verdict}"
        )
        return "\n".join(lines)


def law_specs_for(
    platform: Platform,
    laws: Sequence[str],
    *,
    weibull_shapes: Sequence[float] = DEFAULT_WEIBULL_SHAPES,
    lognormal_sigmas: Sequence[float] = DEFAULT_LOGNORMAL_SIGMAS,
) -> list[tuple[str, str, dict[str, Any]]]:
    """Expand law names into ``(law, label, spec)`` triples matched to the MTBF.

    Every law is parameterized so its mean inter-arrival time equals the
    platform's MTBF — the comparison isolates the *shape* of the law, not
    its rate.
    """
    from ..simulation.failures import (
        LogNormalFailures,
        WeibullFailures,
        failure_model_for,
    )

    if platform.is_failure_free:
        raise ValueError("robustness campaigns need a failing platform")
    mtbf = 1.0 / platform.failure_rate
    triples: list[tuple[str, str, dict[str, Any]]] = []
    for law in laws:
        law = law.strip().lower()
        if law == "exponential":
            triples.append((law, "exponential", failure_model_for(platform).spec()))
        elif law == "weibull":
            for shape in weibull_shapes:
                model = WeibullFailures.from_mtbf(mtbf, shape=float(shape))
                triples.append((law, f"weibull(k={shape:g})", model.spec()))
        elif law == "lognormal":
            for sigma in lognormal_sigmas:
                model = LogNormalFailures.from_mtbf(mtbf, sigma=float(sigma))
                triples.append((law, f"lognormal(s={sigma:g})", model.spec()))
        else:
            raise ValueError(
                f"unknown failure law {law!r}; expected one of {DEFAULT_LAWS}"
            )
    return triples


def run_robustness(
    families: Iterable[str],
    *,
    sizes: Sequence[int] = SMOKE_TASK_COUNTS,
    downtimes: Sequence[float] = (0.0,),
    processors: Sequence[int] = (1,),
    laws: Sequence[str] = DEFAULT_LAWS,
    weibull_shapes: Sequence[float] = DEFAULT_WEIBULL_SHAPES,
    lognormal_sigmas: Sequence[float] = DEFAULT_LOGNORMAL_SIGMAS,
    n_runs: int = 2000,
    heuristic: str = "DF-CkptW",
    seed: int = 0,
    mc_seed: int = 0,
    search_mode: str = "geometric",
    max_candidates: int = 30,
    checkpoint_mode: str = "proportional",
    checkpoint_factor: float = 0.1,
    checkpoint_value: float = 0.0,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    backend: str | None = None,
) -> RobustnessReport:
    """Run the failure-law robustness campaign over a scenario grid.

    One row per (family, size, downtime, processors, law, shape): the
    heuristic's schedule is simulated for ``n_runs`` replicas under the law
    (MTBF-matched to the platform — including the :math:`p \\cdot
    \\lambda_{proc}` aggregation when ``processors > 1``) and compared
    against the analytical Theorem-3 expectation.  ``downtimes`` extends
    the validation beyond the paper's ``D = 0``: Theorem 3 stays exact
    under constant downtime, so exponential rows must validate there too.
    """
    from ..runtime.runner import CampaignRunner, MonteCarloUnit

    scenarios = scenario_grid(
        list(families),
        list(sizes),
        downtimes=downtimes,
        processors=processors,
        checkpoint_mode=checkpoint_mode,
        checkpoint_factor=checkpoint_factor,
        checkpoint_value=checkpoint_value,
        heuristics=(heuristic,),
        seed=seed,
        label="robustness",
    )
    units: list[MonteCarloUnit] = []
    labels: list[tuple[Scenario, str, str, dict[str, Any]]] = []
    for scenario in scenarios:
        for law, label, spec in law_specs_for(
            scenario.platform,
            laws,
            weibull_shapes=weibull_shapes,
            lognormal_sigmas=lognormal_sigmas,
        ):
            units.append(
                MonteCarloUnit(
                    scenario=scenario,
                    heuristic=heuristic,
                    failure_spec=spec,
                    n_runs=n_runs,
                    mc_seed=mc_seed,
                    search_mode=search_mode,
                    max_candidates=max_candidates,
                    backend=backend,
                )
            )
            labels.append((scenario, law, label, spec))

    with CampaignRunner(
        jobs=jobs,
        cache=cache,
        search_mode=search_mode,
        max_candidates=max_candidates,
        progress=progress,
        backend=backend,
    ) as runner:
        outcomes = runner.run_mc_units(units)

    from ..simulation import MonteCarloSummary

    rows = []
    for (scenario, law, label, spec), outcome in zip(labels, outcomes):
        # Rebuild the summary so the confidence interval is the one
        # definition of MonteCarloSummary.ci95, not a re-derivation.
        summary = MonteCarloSummary(
            n_runs=int(outcome["n_runs"]),
            mean_makespan=float(outcome["mc_mean"]),
            std_makespan=float(outcome["mc_std"]),
            min_makespan=float(outcome["mc_min"]),
            max_makespan=float(outcome["mc_max"]),
            mean_failures=float(outcome["mean_failures"]),
        )
        ci_low, ci_high = summary.ci95
        rows.append(
            RobustnessRow(
                family=scenario.family,
                n_tasks=scenario.n_tasks,
                seed=scenario.seed,
                heuristic=heuristic,
                law=law,
                law_label=label,
                law_params={k: v for k, v in spec.items() if k != "law"},
                mtbf=scenario.platform.mtbf,
                downtime=scenario.downtime,
                processors=scenario.processors,
                n_checkpointed=int(outcome["n_checkpointed"]),
                analytical=float(outcome["expected_makespan"]),
                mc_mean=summary.mean_makespan,
                mc_std=summary.std_makespan,
                ci_low=ci_low,
                ci_high=ci_high,
                mean_failures=summary.mean_failures,
                n_runs=summary.n_runs,
            )
        )
    return RobustnessReport(
        rows=tuple(rows),
        n_runs=n_runs,
        heuristic=heuristic,
        seed=seed,
        mc_seed=mc_seed,
    )


def save_robustness_report(report: RobustnessReport, path: str | Path) -> Path:
    """Write the machine-readable JSON report; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report.to_payload(), indent=2) + "\n")
    return path


def plot_robustness(report: RobustnessReport, path: str | Path) -> Path:
    """Render the campaign as a grouped bar figure (requires matplotlib)."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError as exc:  # pragma: no cover - matplotlib-less envs
        raise ValueError(
            "matplotlib is required to render the robustness figure; "
            "install it or drop the figure output"
        ) from exc

    # Group bars by the full scenario label (family, size and — when they
    # leave the defaults — downtime / processors), so distinct platform
    # points of a sweep never stack into one indistinguishable group.
    scenarios = list(dict.fromkeys(row.scenario_label for row in report.rows))
    law_labels = list(dict.fromkeys(row.law_label for row in report.rows))
    width = 0.8 / max(1, len(law_labels) + 1)
    fig, ax = plt.subplots(figsize=(1.8 + 2.2 * len(scenarios), 4.5))
    for offset, label in enumerate(law_labels):
        xs, ys, errs = [], [], []
        for index, scenario in enumerate(scenarios):
            for row in report.rows:
                if row.scenario_label == scenario and row.law_label == label:
                    xs.append(index + offset * width)
                    ys.append(row.mc_mean)
                    errs.append(row.ci_high - row.mc_mean)
        ax.bar(xs, ys, width=width, label=label, yerr=errs, capsize=2)
    analytical_xs = list(range(len(scenarios)))
    analytical_ys = []
    for scenario in scenarios:
        row = next(r for r in report.rows if r.scenario_label == scenario)
        analytical_ys.append(row.analytical)
    ax.plot(
        [x + 0.4 - width / 2 for x in analytical_xs],
        analytical_ys,
        "k_",
        markersize=18,
        label="analytical (Theorem 3)",
    )
    ax.set_xticks([x + 0.4 - width / 2 for x in analytical_xs])
    ax.set_xticklabels(scenarios)
    ax.set_ylabel("expected makespan (s)")
    ax.set_title(
        f"Failure-law robustness — {report.heuristic}, {report.n_runs} replicas"
    )
    ax.legend(fontsize=8)
    fig.tight_layout()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fig.savefig(path, dpi=150)
    plt.close(fig)
    return path
