"""Experiment harness reproducing the paper's Section 6 evaluation."""

from .campaign import AggregatedResult, CampaignResult, aggregate_rows, run_campaign
from .figures import (
    FigureResult,
    LINEARIZATION_FOCUS_HEURISTICS,
    all_figures,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from .harness import (
    SERIES_AXES,
    ResultRow,
    best_by_strategy,
    run_grid,
    run_heuristic,
    run_scenario,
    series_by_heuristic,
)
from .reporting import (
    SHARD_MARKER_PREFIX,
    format_ratio_table,
    load_rows_csv,
    ratio_table,
    read_shard_marker,
    row_identity,
    rows_from_csv,
    rows_to_csv,
    rows_to_markdown,
    save_rows_csv,
)
from .robustness import (
    DEFAULT_LAWS,
    RobustnessReport,
    RobustnessRow,
    law_specs_for,
    plot_robustness,
    run_robustness,
    save_robustness_report,
)
from .scenarios import (
    DEFAULT_FAILURE_RATES,
    LAMBDA_DOWNTIME_DOWNTIMES,
    LAMBDA_DOWNTIME_RATES,
    PAPER_TASK_COUNTS,
    SMOKE_TASK_COUNTS,
    Scenario,
    build_workflow,
    lambda_downtime_grid,
    parse_shard,
    scenario_grid,
    shard_scenarios,
)

__all__ = [
    "AggregatedResult",
    "CampaignResult",
    "DEFAULT_FAILURE_RATES",
    "DEFAULT_LAWS",
    "FigureResult",
    "LAMBDA_DOWNTIME_DOWNTIMES",
    "LAMBDA_DOWNTIME_RATES",
    "RobustnessReport",
    "RobustnessRow",
    "aggregate_rows",
    "lambda_downtime_grid",
    "law_specs_for",
    "load_rows_csv",
    "parse_shard",
    "plot_robustness",
    "read_shard_marker",
    "row_identity",
    "rows_from_csv",
    "run_campaign",
    "run_robustness",
    "save_robustness_report",
    "shard_scenarios",
    "LINEARIZATION_FOCUS_HEURISTICS",
    "PAPER_TASK_COUNTS",
    "ResultRow",
    "SERIES_AXES",
    "SMOKE_TASK_COUNTS",
    "Scenario",
    "all_figures",
    "best_by_strategy",
    "build_workflow",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "format_ratio_table",
    "ratio_table",
    "rows_to_csv",
    "rows_to_markdown",
    "run_grid",
    "run_heuristic",
    "run_scenario",
    "save_rows_csv",
    "scenario_grid",
    "series_by_heuristic",
    "SHARD_MARKER_PREFIX",
    "ControlClient",
    "FabricCoordinator",
    "FabricError",
    "FabricSpec",
    "FabricWorker",
]

#: Lazily re-exported from :mod:`repro.experiments.fabric`: the fabric layer
#: pulls in :mod:`repro.service` (for its metrics registry), which the rest
#: of the experiments package deliberately avoids importing eagerly.
_FABRIC_EXPORTS = {
    "ControlClient",
    "FabricCoordinator",
    "FabricError",
    "FabricSpec",
    "FabricWorker",
}


def __getattr__(name: str) -> object:
    if name in _FABRIC_EXPORTS:
        from . import fabric

        return getattr(fabric, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
