"""Experiment harness reproducing the paper's Section 6 evaluation."""

from .campaign import AggregatedResult, CampaignResult, aggregate_rows, run_campaign
from .figures import (
    FigureResult,
    LINEARIZATION_FOCUS_HEURISTICS,
    all_figures,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)
from .harness import (
    ResultRow,
    best_by_strategy,
    run_grid,
    run_heuristic,
    run_scenario,
    series_by_heuristic,
)
from .reporting import (
    format_ratio_table,
    ratio_table,
    rows_to_csv,
    rows_to_markdown,
    save_rows_csv,
)
from .scenarios import (
    DEFAULT_FAILURE_RATES,
    PAPER_TASK_COUNTS,
    SMOKE_TASK_COUNTS,
    Scenario,
    build_workflow,
    scenario_grid,
)

__all__ = [
    "AggregatedResult",
    "CampaignResult",
    "DEFAULT_FAILURE_RATES",
    "FigureResult",
    "aggregate_rows",
    "run_campaign",
    "LINEARIZATION_FOCUS_HEURISTICS",
    "PAPER_TASK_COUNTS",
    "ResultRow",
    "SMOKE_TASK_COUNTS",
    "Scenario",
    "all_figures",
    "best_by_strategy",
    "build_workflow",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "format_ratio_table",
    "ratio_table",
    "rows_to_csv",
    "rows_to_markdown",
    "run_grid",
    "run_heuristic",
    "run_scenario",
    "save_rows_csv",
    "scenario_grid",
    "series_by_heuristic",
]
