"""Rendering of experiment results (CSV, markdown, console tables).

Every renderer here is platform-aware: when the downtime or processor-count
grid axes vary across the rows (they are 0 / 1 in the paper, but first-class
dimensions in this reproduction), the labels carry them, so two distinct
grid points can never render identically.  CSV is also the interchange
format of sharded campaigns — :func:`load_rows_csv` reads back what
:func:`save_rows_csv` wrote, which is how ``repro campaign merge``
re-assembles shard outputs.
"""

from __future__ import annotations

import csv
import io
from dataclasses import MISSING, asdict, fields
from pathlib import Path
from typing import Sequence, get_type_hints

from .harness import ResultRow

__all__ = [
    "SHARD_MARKER_PREFIX",
    "row_identity",
    "rows_to_csv",
    "save_rows_csv",
    "rows_from_csv",
    "read_shard_marker",
    "load_rows_csv",
    "rows_to_markdown",
    "ratio_table",
    "format_ratio_table",
]

#: Comment line stamped at the top of sharded campaign CSVs
#: (``# repro-shard: k/N``).  ``repro campaign merge`` uses it to check shard
#: completeness; merged outputs stay unmarked so their bytes are unchanged.
SHARD_MARKER_PREFIX = "# repro-shard:"


def row_identity(row: ResultRow) -> tuple:
    """The full grid-point identity of a row, as a sortable tuple.

    This is the canonical row order of merged campaign CSVs (so a merge
    does not depend on the order the shards are passed in) and the duplicate
    detector of ``repro campaign merge`` — two rows with equal identity are
    the same (scenario, seed, heuristic) unit counted twice.
    """
    return (
        row.label,
        row.family,
        row.n_tasks,
        row.failure_rate,
        row.downtime,
        row.processors,
        row.checkpoint_mode,
        row.checkpoint_parameter,
        row.seed,
        row.heuristic,
    )


def rows_to_csv(rows: Sequence[ResultRow], *, shard: tuple[int, int] | None = None) -> str:
    """Serialize result rows to CSV text (header + one line per row).

    ``shard=(k, n)`` stamps a ``# repro-shard: k/N`` comment line above the
    header, marking the file as shard ``k`` of an ``N``-way campaign;
    :func:`rows_from_csv` skips comment lines, so marked and unmarked files
    parse identically.
    """
    output = io.StringIO()
    if shard is not None:
        index, count = shard
        output.write(f"{SHARD_MARKER_PREFIX} {int(index)}/{int(count)}\n")
    writer = csv.writer(output)
    header = [f.name for f in fields(ResultRow)]
    writer.writerow(header)
    for row in rows:
        data = asdict(row)
        writer.writerow([data[name] for name in header])
    return output.getvalue()


def save_rows_csv(
    rows: Sequence[ResultRow],
    path: str | Path,
    *,
    shard: tuple[int, int] | None = None,
) -> Path:
    """Write result rows to a CSV file; returns the path."""
    path = Path(path)
    path.write_text(rows_to_csv(rows, shard=shard))
    return path


def read_shard_marker(text: str) -> tuple[int, int] | None:
    """The ``(k, n)`` of a CSV's shard marker, or ``None`` when unmarked.

    Unmarked files are fine — they predate the marker or hold a full
    (unsharded or merged) campaign — which is why the merge validation only
    engages when at least one input carries a marker.
    """
    for line in text.splitlines():
        if not line.startswith("#"):
            return None
        if line.startswith(SHARD_MARKER_PREFIX):
            designator = line[len(SHARD_MARKER_PREFIX) :].strip()
            index_text, _, count_text = designator.partition("/")
            try:
                index, count = int(index_text), int(count_text)
            except ValueError:
                raise ValueError(
                    f"malformed shard marker line {line!r}; expected "
                    f"'{SHARD_MARKER_PREFIX} k/N'"
                ) from None
            if count < 1 or not 1 <= index <= count:
                raise ValueError(f"shard marker {designator!r} is out of range")
            return index, count
    return None


def _field_types() -> dict[str, type]:
    hints = get_type_hints(ResultRow)
    return {f.name: hints[f.name] for f in fields(ResultRow)}


def rows_from_csv(text: str) -> list[ResultRow]:
    """Parse CSV text produced by :func:`rows_to_csv` back into rows.

    Columns are matched by name, so CSVs written before a (defaulted) field
    existed still load; unknown columns are rejected loudly rather than
    silently dropped, since a mismatched file is more likely a wrong path
    than a deliberate extension.
    """
    types = _field_types()
    # Strip comment lines (e.g. the shard marker) before the DictReader sees
    # the text — it would otherwise mistake a leading comment for the header.
    data = "\n".join(
        line for line in text.splitlines() if not line.startswith("#")
    )
    reader = csv.DictReader(io.StringIO(data))
    header = reader.fieldnames or []
    unknown = [name for name in header if name not in types]
    if unknown:
        raise ValueError(
            f"unknown result-row column(s) {unknown}; expected a CSV written "
            "by 'repro campaign -o' / save_rows_csv"
        )
    required = [
        f.name
        for f in fields(ResultRow)
        if f.default is MISSING and f.default_factory is MISSING
    ]
    missing = [name for name in required if name not in header]
    if missing:
        raise ValueError(f"result-row CSV is missing required column(s) {missing}")
    rows: list[ResultRow] = []
    for record in reader:
        if None in record:
            # DictReader collects surplus fields under the None restkey.
            raise ValueError("result-row CSV has a line with too many fields")
        kwargs = {}
        for name, value in record.items():
            if value is None:
                raise ValueError("result-row CSV has a short line")
            kwargs[name] = types[name](value)
        rows.append(ResultRow(**kwargs))
    return rows


def load_rows_csv(path: str | Path) -> list[ResultRow]:
    """Read result rows from a CSV file written by :func:`save_rows_csv`."""
    return rows_from_csv(Path(path).read_text())


def rows_to_markdown(rows: Sequence[ResultRow], *, columns: Sequence[str] | None = None) -> str:
    """Render rows as a GitHub-flavoured markdown table.

    The default column set grows a ``downtime`` / ``processors`` column
    whenever that platform axis varies across the rows.
    """
    if columns is None:
        columns = [
            "family",
            "n_tasks",
            "heuristic",
            "n_checkpointed",
            "expected_makespan",
            "overhead_ratio",
        ]
        # Insert processors first so the final order is downtime-then-
        # processors, matching every other renderer's D, p column order.
        for dim in ("processors", "downtime"):
            if len({getattr(row, dim) for row in rows}) > 1:
                columns.insert(2, dim)
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, separator]
    for row in rows:
        data = asdict(row)
        cells = []
        for name in columns:
            value = data[name]
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def ratio_table(
    rows: Sequence[ResultRow],
) -> dict[tuple[str, int, float, float, int], dict[str, float]]:
    """Pivot rows into ``grid point -> {heuristic: overhead_ratio}``.

    The key is ``(family, n_tasks, failure_rate, downtime, processors)`` —
    one entry per platform point, so a rate, downtime or processor sweep
    never overwrites one point's ratios with another's.
    """
    table: dict[tuple[str, int, float, float, int], dict[str, float]] = {}
    for row in rows:
        key = (row.family, row.n_tasks, row.failure_rate, row.downtime, row.processors)
        table.setdefault(key, {})[row.heuristic] = row.overhead_ratio
    return table


def format_ratio_table(rows: Sequence[ResultRow], *, digits: int = 3) -> str:
    """Console-friendly pivot of the ``T / T_inf`` ratios.

    One line per grid point; one column per heuristic; the best value of
    each line is starred — this is the textual analogue of the paper's
    figures.  Downtime / processor columns appear when those axes vary.
    """
    table = ratio_table(rows)
    heuristics = sorted({h for values in table.values() for h in values})
    show_rate = len({(key[0], key[2]) for key in table}) > len({key[0] for key in table})
    show_downtime = len({key[3] for key in table}) > 1
    show_processors = len({key[4] for key in table}) > 1
    width = max(12, digits + 6)
    header = f"{'family':<12} {'n':>5} "
    if show_rate:
        header += f"{'lambda':>9} "
    if show_downtime:
        header += f"{'D':>7} "
    if show_processors:
        header += f"{'p':>4} "
    header += " ".join(f"{h:>{width}}" for h in heuristics)
    lines = [header, "-" * len(header)]
    for (family, n_tasks, rate, downtime, processors), values in sorted(table.items()):
        best = min(values.values()) if values else float("nan")
        cells = []
        for heuristic in heuristics:
            value = values.get(heuristic)
            if value is None:
                cells.append(" " * width)
            else:
                marker = "*" if abs(value - best) < 1e-12 else " "
                cells.append(f"{value:>{width - 1}.{digits}f}{marker}")
        prefix = f"{family:<12} {n_tasks:>5} "
        if show_rate:
            prefix += f"{rate:>9g} "
        if show_downtime:
            prefix += f"{downtime:>7g} "
        if show_processors:
            prefix += f"{processors:>4} "
        lines.append(prefix + " ".join(cells))
    return "\n".join(lines)
