"""Rendering of experiment results (CSV, markdown, console tables)."""

from __future__ import annotations

import csv
import io
from dataclasses import asdict, fields
from pathlib import Path
from typing import Sequence

from .harness import ResultRow

__all__ = [
    "rows_to_csv",
    "save_rows_csv",
    "rows_to_markdown",
    "ratio_table",
    "format_ratio_table",
]


def rows_to_csv(rows: Sequence[ResultRow]) -> str:
    """Serialize result rows to CSV text (header + one line per row)."""
    output = io.StringIO()
    writer = csv.writer(output)
    header = [f.name for f in fields(ResultRow)]
    writer.writerow(header)
    for row in rows:
        data = asdict(row)
        writer.writerow([data[name] for name in header])
    return output.getvalue()


def save_rows_csv(rows: Sequence[ResultRow], path: str | Path) -> Path:
    """Write result rows to a CSV file; returns the path."""
    path = Path(path)
    path.write_text(rows_to_csv(rows))
    return path


def rows_to_markdown(rows: Sequence[ResultRow], *, columns: Sequence[str] | None = None) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    if columns is None:
        columns = (
            "family",
            "n_tasks",
            "heuristic",
            "n_checkpointed",
            "expected_makespan",
            "overhead_ratio",
        )
    header = "| " + " | ".join(columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    lines = [header, separator]
    for row in rows:
        data = asdict(row)
        cells = []
        for name in columns:
            value = data[name]
            if isinstance(value, float):
                cells.append(f"{value:.4g}")
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def ratio_table(
    rows: Sequence[ResultRow],
) -> dict[tuple[str, int], dict[str, float]]:
    """Pivot rows into ``(family, n_tasks) -> {heuristic: overhead_ratio}``."""
    table: dict[tuple[str, int], dict[str, float]] = {}
    for row in rows:
        table.setdefault((row.family, row.n_tasks), {})[row.heuristic] = row.overhead_ratio
    return table


def format_ratio_table(rows: Sequence[ResultRow], *, digits: int = 3) -> str:
    """Console-friendly pivot of the ``T / T_inf`` ratios.

    One line per (family, n_tasks); one column per heuristic; the best value of
    each line is starred — this is the textual analogue of the paper's figures.
    """
    table = ratio_table(rows)
    heuristics = sorted({h for values in table.values() for h in values})
    width = max(12, digits + 6)
    header = f"{'family':<12} {'n':>5} " + " ".join(f"{h:>{width}}" for h in heuristics)
    lines = [header, "-" * len(header)]
    for (family, n_tasks), values in sorted(table.items()):
        best = min(values.values()) if values else float("nan")
        cells = []
        for heuristic in heuristics:
            value = values.get(heuristic)
            if value is None:
                cells.append(" " * width)
            else:
                marker = "*" if abs(value - best) < 1e-12 else " "
                cells.append(f"{value:>{width - 1}.{digits}f}{marker}")
        lines.append(f"{family:<12} {n_tasks:>5} " + " ".join(cells))
    return "\n".join(lines)
