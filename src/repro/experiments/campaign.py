"""Multi-seed experiment campaigns with aggregation.

The paper evaluates one generated instance per (family, size) point.  When the
generator is randomized — as this reproduction's structural generators are — a
single instance can be noisy, so the harness also supports *campaigns*: the
same scenario repeated over several seeds, with the `T / T_inf` ratios
aggregated (mean, standard deviation, min, max) per heuristic.  Campaigns are
what `EXPERIMENTS.md` calls "paper-scale sweeps with error bars" and what a
downstream user should run before trusting a ranking on their own workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from .harness import ResultRow
from .scenarios import Scenario

__all__ = ["AggregatedResult", "CampaignResult", "run_campaign", "aggregate_rows"]


@dataclass(frozen=True)
class AggregatedResult:
    """Statistics of one heuristic on one scenario point, across seeds."""

    family: str
    n_tasks: int
    failure_rate: float
    heuristic: str
    n_seeds: int
    mean_ratio: float
    std_ratio: float
    min_ratio: float
    max_ratio: float
    mean_makespan: float
    mean_checkpoints: float
    downtime: float = 0.0
    processors: int = 1

    @property
    def sem_ratio(self) -> float:
        """Standard error of the mean overhead ratio."""
        if self.n_seeds <= 1:
            return 0.0
        return self.std_ratio / math.sqrt(self.n_seeds)


@dataclass(frozen=True)
class CampaignResult:
    """All rows of a campaign plus their per-heuristic aggregation.

    ``failures`` lists quarantined units (as
    :class:`~repro.runtime.runner.UnitFailure`) when the campaign ran with
    quarantining enabled; it stays out of :meth:`render` so the report of a
    clean run — including a crash-then-resume run — is byte-identical
    regardless of supervision settings.
    """

    rows: tuple[ResultRow, ...]
    aggregated: tuple[AggregatedResult, ...]
    failures: tuple[Any, ...] = ()

    @classmethod
    def from_rows(cls, rows: Sequence[ResultRow]) -> "CampaignResult":
        """Re-aggregate loose rows (e.g. loaded from sharded CSV outputs).

        This is what ``repro campaign merge`` runs on the concatenated
        shard rows: aggregation groups each (grid point, heuristic) across
        seeds, and because a shard always carries *whole* scenarios (every
        seed of a grid point), the per-group member order — hence the
        floating-point sums — matches the unsharded run exactly.
        """
        rows = tuple(rows)
        return cls(rows=rows, aggregated=aggregate_rows(rows))

    def ranking(
        self,
        family: str,
        n_tasks: int,
        *,
        downtime: float | None = None,
        processors: int | None = None,
    ) -> tuple[AggregatedResult, ...]:
        """Heuristics of one point ordered by mean overhead ratio (best first).

        ``downtime`` / ``processors`` restrict the ranking to one platform
        point; ``None`` keeps every platform of the (family, size) pair —
        fine for paper-style grids where those axes do not vary.
        """
        entries = [
            a
            for a in self.aggregated
            if a.family == family
            and a.n_tasks == n_tasks
            and (downtime is None or a.downtime == downtime)
            and (processors is None or a.processors == processors)
        ]
        return tuple(sorted(entries, key=lambda a: a.mean_ratio))

    def best_heuristic(self, family: str, n_tasks: int) -> str:
        """Name of the heuristic with the lowest mean ratio at one point."""
        ranking = self.ranking(family, n_tasks)
        if not ranking:
            raise KeyError(f"no results for family={family!r}, n_tasks={n_tasks}")
        return ranking[0].heuristic

    def render(self) -> str:
        """Compact text table: one line per (grid point, heuristic).

        The downtime / processor columns appear as soon as any point leaves
        the paper's defaults (D = 0, p = 1), so platform-sweep points are
        always distinguishable.  The decision depends only on the aggregated
        data, which keeps the rendering byte-identical between an unsharded
        run and a merged sharded one.
        """
        platform_axes = any(
            a.downtime != 0.0 or a.processors != 1 for a in self.aggregated
        )
        # A per-family rate is the paper's setting and stays implicit; a
        # rate *sweep* (lambda x D grids) must label every point with it.
        rate_varies = len({(a.family, a.failure_rate) for a in self.aggregated}) > len(
            {a.family for a in self.aggregated}
        )
        platform_header = (f" {'lambda':>9}" if rate_varies else "") + (
            f" {'D':>7} {'p':>4}" if platform_axes else ""
        )
        lines = [
            f"{'family':<12} {'n':>5}{platform_header} {'heuristic':<12} "
            f"{'mean':>8} {'std':>7} {'min':>7} {'max':>7} {'seeds':>6}"
        ]
        for entry in sorted(
            self.aggregated,
            key=lambda a: (
                a.family,
                a.n_tasks,
                a.failure_rate,
                a.downtime,
                a.processors,
                a.mean_ratio,
            ),
        ):
            platform_cells = (f" {entry.failure_rate:>9g}" if rate_varies else "") + (
                f" {entry.downtime:>7g} {entry.processors:>4}" if platform_axes else ""
            )
            lines.append(
                f"{entry.family:<12} {entry.n_tasks:>5}{platform_cells} "
                f"{entry.heuristic:<12} "
                f"{entry.mean_ratio:>8.3f} {entry.std_ratio:>7.3f} "
                f"{entry.min_ratio:>7.3f} {entry.max_ratio:>7.3f} {entry.n_seeds:>6}"
            )
        return "\n".join(lines)


def aggregate_rows(rows: Sequence[ResultRow]) -> tuple[AggregatedResult, ...]:
    """Aggregate harness rows per heuristic and grid point.

    The grouping key is the full grid point — family, size, failure rate,
    downtime and processor count — so distinct platform points of a
    downtime or processor sweep are never averaged together.
    """
    groups: dict[tuple[str, int, float, float, int, str], list[ResultRow]] = {}
    for row in rows:
        key = (
            row.family,
            row.n_tasks,
            row.failure_rate,
            row.downtime,
            row.processors,
            row.heuristic,
        )
        groups.setdefault(key, []).append(row)

    aggregated: list[AggregatedResult] = []
    for (family, n_tasks, rate, downtime, processors, heuristic), members in sorted(
        groups.items()
    ):
        ratios = [m.overhead_ratio for m in members]
        count = len(ratios)
        mean = sum(ratios) / count
        variance = (
            sum((value - mean) ** 2 for value in ratios) / (count - 1) if count > 1 else 0.0
        )
        aggregated.append(
            AggregatedResult(
                family=family,
                n_tasks=n_tasks,
                failure_rate=rate,
                heuristic=heuristic,
                n_seeds=count,
                mean_ratio=mean,
                std_ratio=math.sqrt(variance),
                min_ratio=min(ratios),
                max_ratio=max(ratios),
                mean_makespan=sum(m.expected_makespan for m in members) / count,
                mean_checkpoints=sum(m.n_checkpointed for m in members) / count,
                downtime=downtime,
                processors=processors,
            )
        )
    return tuple(aggregated)


def run_campaign(
    scenarios: Iterable[Scenario],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    search_mode: str = "geometric",
    max_candidates: int = 30,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    backend: str | None = None,
    journal: Any = None,
    max_retries: int = 2,
    retry_backoff: float = 0.5,
    unit_timeout: float | None = None,
    quarantine: bool = False,
) -> CampaignResult:
    """Run every scenario once per seed and aggregate the results.

    Each seed controls both the workflow-instance generation and the RF
    linearization, so the aggregation captures the full instance-to-instance
    variability of the reported ratios.

    ``jobs``, ``cache``, ``progress`` and ``backend`` are forwarded to the campaign
    runtime (:mod:`repro.runtime`): ``jobs=4`` fans the
    (scenario × seed × heuristic) work units over four worker processes,
    and a :class:`~repro.runtime.cache.ResultCache` makes repeated points
    free.  Because every work unit draws from its own seed-derived random
    stream, the aggregates of a parallel run are identical to the serial
    ones.

    The crash-safety knobs are forwarded likewise: ``journal`` (a
    :class:`~repro.runtime.journal.CampaignJournal` or a path) makes every
    completed unit durable and replays it on the next run; ``max_retries``,
    ``retry_backoff`` and ``unit_timeout`` configure worker supervision; and
    ``quarantine=True`` lets a poison unit be reported in
    :attr:`CampaignResult.failures` instead of aborting the rest.
    """
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ValueError("at least one seed is required")

    from ..runtime.runner import CampaignRunner

    with CampaignRunner(
        jobs=jobs,
        cache=cache,
        search_mode=search_mode,
        max_candidates=max_candidates,
        progress=progress,
        backend=backend,
        journal=journal,
        max_retries=max_retries,
        retry_backoff=retry_backoff,
        unit_timeout=unit_timeout,
        quarantine=quarantine,
    ) as runner:
        rows = runner.run_rows(scenarios, seeds=seeds)
        failures = tuple(runner.failures)
    return CampaignResult(
        rows=tuple(rows), aggregated=aggregate_rows(rows), failures=failures
    )
