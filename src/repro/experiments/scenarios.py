"""Experimental scenarios of Section 6 of the paper.

A :class:`Scenario` bundles everything needed to reproduce one point of one
figure: the workflow family and size, the platform (failure rate, downtime,
processor count), how checkpoint / recovery costs are assigned, which
heuristics compete, and the random seed.

The paper's settings (Section 6.1):

* four workflow families — Montage, Ligo, CyberShake, Genome;
* 50 to 700 tasks;
* ``c_i = r_i`` always, downtime ``D = 0``;
* main experiments: ``c_i = 0.1 w_i`` with platform MTBF :math:`10^3` s
  (:math:`\\lambda = 10^{-3}`), except Genome which uses MTBF :math:`10^4` s
  (:math:`\\lambda = 10^{-4}`) because its tasks are an order of magnitude
  longer;
* additional experiments: ``c_i = 0.01 w_i``, constant ``c_i = 5`` s or 10 s,
  and a sweep over :math:`\\lambda` at fixed size (200 tasks).

Beyond the paper's ``D = 0``, single-processor setting, the platform is a
first-class grid dimension here: every scenario carries a
:class:`~repro.core.platform.PlatformSpec` (downtime and processor count are
grid axes alongside family and size — see :func:`scenario_grid`), and
:func:`lambda_downtime_grid` provides the :math:`\\lambda \\times D` sweep
preset.  Large platform grids can be partitioned deterministically across
machines with :func:`shard_scenarios` and re-assembled with
``repro campaign merge``.

Two preset grids are exposed per figure: ``paper`` (the full sizes of the
paper) and ``smoke`` (small sizes that run in seconds, used by the test-suite
and the default benchmark configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..core.dag import Workflow
from ..core.platform import Platform, PlatformSpec
from ..heuristics.registry import HEURISTIC_NAMES
from ..workflows import pegasus

__all__ = [
    "Scenario",
    "PAPER_TASK_COUNTS",
    "SMOKE_TASK_COUNTS",
    "DEFAULT_FAILURE_RATES",
    "LAMBDA_DOWNTIME_RATES",
    "LAMBDA_DOWNTIME_DOWNTIMES",
    "build_workflow",
    "scenario_grid",
    "lambda_downtime_grid",
    "parse_shard",
    "shard_scenarios",
]

#: Task counts used by the paper's figures (x-axis of Figures 2-6).
PAPER_TASK_COUNTS: tuple[int, ...] = (50, 100, 200, 300, 400, 500, 600, 700)

#: Reduced task counts for fast smoke runs / CI.
SMOKE_TASK_COUNTS: tuple[int, ...] = (30, 60)

#: Failure rate per family for the main experiments (Section 6.1).
DEFAULT_FAILURE_RATES: dict[str, float] = {
    "montage": 1e-3,
    "cybershake": 1e-3,
    "ligo": 1e-3,
    "genome": 1e-4,
}

#: Failure rates of the :math:`\lambda \times D` sweep preset.
LAMBDA_DOWNTIME_RATES: tuple[float, ...] = (1e-4, 5e-4, 1e-3)

#: Downtimes of the :math:`\lambda \times D` sweep preset (seconds).  The
#: largest value is a third of the paper's main MTBF, so the downtime term
#: of Equation (1) is clearly visible in the resulting ratios.
LAMBDA_DOWNTIME_DOWNTIMES: tuple[float, ...] = (0.0, 60.0, 300.0)


@dataclass(frozen=True)
class Scenario:
    """One experimental configuration (one workflow instance, one platform).

    Attributes
    ----------
    family:
        Workflow family name (``montage`` / ``cybershake`` / ``ligo`` /
        ``genome``).
    n_tasks:
        Requested number of tasks.
    failure_rate:
        Per-processor failure rate :math:`\\lambda_{proc}`.  With the default
        single processor this is exactly the platform rate :math:`\\lambda`
        the paper is parameterised by; with ``processors = p`` the effective
        platform rate is :math:`\\lambda = p \\cdot \\lambda_{proc}`.
    downtime:
        Constant downtime ``D`` (seconds) after each failure (the paper uses
        0; any non-negative value is supported end to end).
    processors:
        Number of processors ``p`` enrolled by the application.
    checkpoint_mode:
        ``"proportional"`` or ``"constant"`` (see
        :meth:`Workflow.with_checkpoint_costs`).
    checkpoint_factor:
        Factor for the proportional mode (0.1 or 0.01 in the paper).
    checkpoint_value:
        Constant checkpoint cost in seconds (5 or 10 in the paper).
    heuristics:
        Names of the heuristics to compare.
    seed:
        Seed for both the workflow generator and the RF linearization.
    label:
        Free-form tag used in reports (e.g. ``"fig3"``).
    """

    family: str
    n_tasks: int
    failure_rate: float
    downtime: float = 0.0
    processors: int = 1
    checkpoint_mode: str = "proportional"
    checkpoint_factor: float = 0.1
    checkpoint_value: float = 0.0
    heuristics: tuple[str, ...] = HEURISTIC_NAMES
    seed: int = 0
    label: str = ""

    def with_updates(self, **kwargs) -> "Scenario":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)

    @property
    def platform_spec(self) -> PlatformSpec:
        """Declarative platform description of the scenario."""
        return PlatformSpec(
            failure_rate=self.failure_rate,
            downtime=self.downtime,
            processors=self.processors,
        )

    @property
    def platform(self) -> Platform:
        """Platform of the scenario (rate, downtime and processor count)."""
        return self.platform_spec.build()

    @property
    def checkpoint_parameter(self) -> float:
        """The parameter reported for the active checkpoint mode."""
        if self.checkpoint_mode == "proportional":
            return self.checkpoint_factor
        return self.checkpoint_value

    def describe(self) -> str:
        """One-line description used in reports.

        Downtime and processor count appear as soon as they leave the
        paper's defaults (``D = 0``, ``p = 1``), so distinct grid points of
        a platform sweep never render identical labels.
        """
        if self.checkpoint_mode == "proportional":
            ckpt = f"c={self.checkpoint_factor:g}*w"
        else:
            ckpt = f"c={self.checkpoint_value:g}s"
        platform = f"lambda={self.failure_rate:g}"
        if self.downtime != 0.0:
            platform += f" D={self.downtime:g}"
        if self.processors != 1:
            platform += f" p={self.processors}"
        return f"{self.family} n={self.n_tasks} {platform} {ckpt} seed={self.seed}"


def build_workflow(scenario: Scenario) -> Workflow:
    """Instantiate the workflow of a scenario (with checkpoint costs assigned)."""
    workflow = pegasus.generate(scenario.family, scenario.n_tasks, seed=scenario.seed)
    return workflow.with_checkpoint_costs(
        mode=scenario.checkpoint_mode,
        factor=scenario.checkpoint_factor,
        value=scenario.checkpoint_value,
        recovery="equal",
    )


def scenario_grid(
    families: Iterable[str],
    task_counts: Sequence[int],
    *,
    failure_rates: dict[str, float] | None = None,
    downtimes: Sequence[float] = (0.0,),
    processors: Sequence[int] = (1,),
    checkpoint_mode: str = "proportional",
    checkpoint_factor: float = 0.1,
    checkpoint_value: float = 0.0,
    heuristics: Sequence[str] = HEURISTIC_NAMES,
    seed: int = 0,
    label: str = "",
    shard: tuple[int, int] | None = None,
) -> list[Scenario]:
    """Cartesian product of families, task counts and platform axes.

    The grid is ordered ``family -> n_tasks -> downtime -> processors`` and
    that order is deterministic: it is the contract that makes sharding
    (``shard=(k, n)``, 1-based, see :func:`shard_scenarios`) reproducible
    across machines — every shard of the same grid parameters partitions
    the same list in the same order.
    """
    rates = dict(DEFAULT_FAILURE_RATES)
    if failure_rates:
        rates.update(failure_rates)
    points = []
    for family in families:
        family_key = family.strip().lower()
        if family_key not in rates:
            raise ValueError(f"no default failure rate known for family {family!r}")
        for n in task_counts:
            points.append((family_key, int(n), rates[family_key]))
    return _expand_platform_axes(
        points,
        downtimes=downtimes,
        processors=processors,
        checkpoint_mode=checkpoint_mode,
        checkpoint_factor=checkpoint_factor,
        checkpoint_value=checkpoint_value,
        heuristics=heuristics,
        seed=seed,
        label=label,
        shard=shard,
    )


def lambda_downtime_grid(
    families: Iterable[str] = ("montage",),
    *,
    n_tasks: int = 200,
    rates: Sequence[float] = LAMBDA_DOWNTIME_RATES,
    downtimes: Sequence[float] = LAMBDA_DOWNTIME_DOWNTIMES,
    processors: Sequence[int] = (1,),
    checkpoint_mode: str = "proportional",
    checkpoint_factor: float = 0.1,
    checkpoint_value: float = 0.0,
    heuristics: Sequence[str] = HEURISTIC_NAMES,
    seed: int = 0,
    label: str = "lambda-x-downtime",
    shard: tuple[int, int] | None = None,
) -> list[Scenario]:
    """The :math:`\\lambda \\times D` sweep preset at a fixed workflow size.

    One scenario per (family, failure rate, downtime, processor count) —
    the platform analogue of Figure 7's :math:`\\lambda` sweep, extended
    with the downtime axis the paper holds at zero.  Deterministic order:
    ``family -> rate -> downtime -> processors`` (shardable like
    :func:`scenario_grid`).
    """
    rates = tuple(float(r) for r in rates)
    if not rates:
        raise ValueError("at least one failure rate is required")
    points = []
    for family in families:
        family_key = family.strip().lower()
        if family_key not in DEFAULT_FAILURE_RATES:
            raise ValueError(f"unknown workflow family {family!r}")
        for rate in rates:
            points.append((family_key, int(n_tasks), rate))
    return _expand_platform_axes(
        points,
        downtimes=downtimes,
        processors=processors,
        checkpoint_mode=checkpoint_mode,
        checkpoint_factor=checkpoint_factor,
        checkpoint_value=checkpoint_value,
        heuristics=heuristics,
        seed=seed,
        label=label,
        shard=shard,
    )


def _expand_platform_axes(
    points: Sequence[tuple[str, int, float]],
    *,
    downtimes: Sequence[float],
    processors: Sequence[int],
    checkpoint_mode: str,
    checkpoint_factor: float,
    checkpoint_value: float,
    heuristics: Sequence[str],
    seed: int,
    label: str,
    shard: tuple[int, int] | None,
) -> list[Scenario]:
    """Cross ``(family, n_tasks, rate)`` points with the platform axes.

    The single grid expansion behind :func:`scenario_grid` and
    :func:`lambda_downtime_grid`: one deterministic nesting order
    (``point -> downtime -> processors``) and one shard tail, so the
    sharding contract can never diverge between the two builders.
    """
    downtimes = tuple(float(d) for d in downtimes)
    processors = tuple(int(p) for p in processors)
    if not downtimes:
        raise ValueError("at least one downtime is required")
    if not processors:
        raise ValueError("at least one processor count is required")
    scenarios = [
        Scenario(
            family=family,
            n_tasks=n_tasks,
            failure_rate=rate,
            downtime=downtime,
            processors=procs,
            checkpoint_mode=checkpoint_mode,
            checkpoint_factor=checkpoint_factor,
            checkpoint_value=checkpoint_value,
            heuristics=tuple(heuristics),
            seed=seed,
            label=label,
        )
        for family, n_tasks, rate in points
        for downtime in downtimes
        for procs in processors
    ]
    if shard is not None:
        scenarios = shard_scenarios(scenarios, *shard)
    return scenarios


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``"k/N"`` shard designator (1-based, e.g. ``"1/2"``)."""
    parts = text.strip().split("/")
    if len(parts) != 2:
        raise ValueError(f"shard must look like 'k/N' (e.g. '1/2'), got {text!r}")
    try:
        index, count = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(
            f"shard must look like 'k/N' (e.g. '1/2'), got {text!r}"
        ) from None
    _check_shard(index, count)
    return index, count


def _check_shard(index: int, count: int) -> None:
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    if not 1 <= index <= count:
        raise ValueError(f"shard index must be in 1..{count}, got {index}")


def shard_scenarios(
    scenarios: Sequence[Scenario], index: int, count: int
) -> list[Scenario]:
    """Deterministic shard ``index`` (1-based) of ``count`` of a scenario list.

    Round-robin over the grid's deterministic order, so the shards are
    balanced (sizes differ by at most one scenario), disjoint, and their
    union — in any order — is exactly the original grid.  Seeds are expanded
    *inside* each scenario by the campaign runner, so every (scenario x
    seed x heuristic) group of the unsharded run lives in exactly one shard
    with its member order intact; merged aggregates are therefore
    bit-for-bit those of the unsharded run.
    """
    _check_shard(index, count)
    return list(scenarios[index - 1 :: count])
