"""Experimental scenarios of Section 6 of the paper.

A :class:`Scenario` bundles everything needed to reproduce one point of one
figure: the workflow family and size, the failure rate, how checkpoint /
recovery costs are assigned, which heuristics compete, and the random seed.

The paper's settings (Section 6.1):

* four workflow families — Montage, Ligo, CyberShake, Genome;
* 50 to 700 tasks;
* ``c_i = r_i`` always, downtime ``D = 0``;
* main experiments: ``c_i = 0.1 w_i`` with platform MTBF :math:`10^3` s
  (:math:`\\lambda = 10^{-3}`), except Genome which uses MTBF :math:`10^4` s
  (:math:`\\lambda = 10^{-4}`) because its tasks are an order of magnitude
  longer;
* additional experiments: ``c_i = 0.01 w_i``, constant ``c_i = 5`` s or 10 s,
  and a sweep over :math:`\\lambda` at fixed size (200 tasks).

Two preset grids are exposed per figure: ``paper`` (the full sizes of the
paper) and ``smoke`` (small sizes that run in seconds, used by the test-suite
and the default benchmark configuration).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from ..core.dag import Workflow
from ..core.platform import Platform
from ..heuristics.registry import HEURISTIC_NAMES
from ..workflows import pegasus

__all__ = [
    "Scenario",
    "PAPER_TASK_COUNTS",
    "SMOKE_TASK_COUNTS",
    "DEFAULT_FAILURE_RATES",
    "build_workflow",
    "scenario_grid",
]

#: Task counts used by the paper's figures (x-axis of Figures 2-6).
PAPER_TASK_COUNTS: tuple[int, ...] = (50, 100, 200, 300, 400, 500, 600, 700)

#: Reduced task counts for fast smoke runs / CI.
SMOKE_TASK_COUNTS: tuple[int, ...] = (30, 60)

#: Failure rate per family for the main experiments (Section 6.1).
DEFAULT_FAILURE_RATES: dict[str, float] = {
    "montage": 1e-3,
    "cybershake": 1e-3,
    "ligo": 1e-3,
    "genome": 1e-4,
}


@dataclass(frozen=True)
class Scenario:
    """One experimental configuration (one workflow instance, one platform).

    Attributes
    ----------
    family:
        Workflow family name (``montage`` / ``cybershake`` / ``ligo`` /
        ``genome``).
    n_tasks:
        Requested number of tasks.
    failure_rate:
        Platform failure rate :math:`\\lambda` (downtime is always 0, as in the
        paper).
    checkpoint_mode:
        ``"proportional"`` or ``"constant"`` (see
        :meth:`Workflow.with_checkpoint_costs`).
    checkpoint_factor:
        Factor for the proportional mode (0.1 or 0.01 in the paper).
    checkpoint_value:
        Constant checkpoint cost in seconds (5 or 10 in the paper).
    heuristics:
        Names of the heuristics to compare.
    seed:
        Seed for both the workflow generator and the RF linearization.
    label:
        Free-form tag used in reports (e.g. ``"fig3"``).
    """

    family: str
    n_tasks: int
    failure_rate: float
    checkpoint_mode: str = "proportional"
    checkpoint_factor: float = 0.1
    checkpoint_value: float = 0.0
    heuristics: tuple[str, ...] = HEURISTIC_NAMES
    seed: int = 0
    label: str = ""

    def with_updates(self, **kwargs) -> "Scenario":
        """Return a copy with some fields replaced."""
        return replace(self, **kwargs)

    @property
    def platform(self) -> Platform:
        """Platform of the scenario (rate :math:`\\lambda`, zero downtime)."""
        return Platform.from_platform_rate(self.failure_rate, downtime=0.0)

    @property
    def checkpoint_parameter(self) -> float:
        """The parameter reported for the active checkpoint mode."""
        if self.checkpoint_mode == "proportional":
            return self.checkpoint_factor
        return self.checkpoint_value

    def describe(self) -> str:
        """One-line description used in reports."""
        if self.checkpoint_mode == "proportional":
            ckpt = f"c={self.checkpoint_factor:g}*w"
        else:
            ckpt = f"c={self.checkpoint_value:g}s"
        return (
            f"{self.family} n={self.n_tasks} lambda={self.failure_rate:g} {ckpt} "
            f"seed={self.seed}"
        )


def build_workflow(scenario: Scenario) -> Workflow:
    """Instantiate the workflow of a scenario (with checkpoint costs assigned)."""
    workflow = pegasus.generate(scenario.family, scenario.n_tasks, seed=scenario.seed)
    return workflow.with_checkpoint_costs(
        mode=scenario.checkpoint_mode,
        factor=scenario.checkpoint_factor,
        value=scenario.checkpoint_value,
        recovery="equal",
    )


def scenario_grid(
    families: Iterable[str],
    task_counts: Sequence[int],
    *,
    failure_rates: dict[str, float] | None = None,
    checkpoint_mode: str = "proportional",
    checkpoint_factor: float = 0.1,
    checkpoint_value: float = 0.0,
    heuristics: Sequence[str] = HEURISTIC_NAMES,
    seed: int = 0,
    label: str = "",
) -> list[Scenario]:
    """Cartesian product of families and task counts, one scenario each."""
    rates = dict(DEFAULT_FAILURE_RATES)
    if failure_rates:
        rates.update(failure_rates)
    scenarios = []
    for family in families:
        family_key = family.strip().lower()
        if family_key not in rates:
            raise ValueError(f"no default failure rate known for family {family!r}")
        for n in task_counts:
            scenarios.append(
                Scenario(
                    family=family_key,
                    n_tasks=int(n),
                    failure_rate=rates[family_key],
                    checkpoint_mode=checkpoint_mode,
                    checkpoint_factor=checkpoint_factor,
                    checkpoint_value=checkpoint_value,
                    heuristics=tuple(heuristics),
                    seed=seed,
                    label=label,
                )
            )
    return scenarios
