"""Reproduction entry points for every figure of the paper's evaluation.

Each ``figureN`` function returns a :class:`FigureResult` containing the rows
produced by the harness plus the plottable series, and can run either at the
paper's scale (``preset="paper"``: 50-700 tasks, exhaustive checkpoint-count
search — expensive) or at smoke scale (``preset="smoke"``: small sizes,
subsampled search — seconds).  The benchmark modules under ``benchmarks/``
call these functions and print the resulting series; EXPERIMENTS.md records the
paper-vs-measured comparison.

Figure map (paper -> here):

* Figure 2 (a, b, c): impact of the linearization strategy, CkptW / CkptC
  only, on CyberShake, Ligo, Genome with proportional checkpoints (0.1 w).
* Figure 3 (a-d): impact of the checkpointing strategy (best linearization per
  strategy) on the four families, proportional checkpoints (0.1 w).
* Figure 4 (a, b, c): linearization impact on CyberShake with constant
  checkpoint costs (10 s, 5 s) and small proportional costs (0.01 w).
* Figure 5 (a-d): checkpointing strategies with ``c = 0.01 w``.
* Figure 6 (a-d): checkpointing strategies with constant ``c = 5`` s.
* Figure 7 (a-d): checkpointing strategies versus the failure rate
  :math:`\\lambda`, 200-task workflows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..heuristics.registry import HEURISTIC_NAMES
from .harness import ResultRow, run_grid, series_by_heuristic, wants_runtime
from .scenarios import (
    DEFAULT_FAILURE_RATES,
    PAPER_TASK_COUNTS,
    SMOKE_TASK_COUNTS,
    Scenario,
    scenario_grid,
)

__all__ = [
    "FigureResult",
    "LINEARIZATION_FOCUS_HEURISTICS",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "all_figures",
]

#: Heuristics compared in the linearization-impact figures (2 and 4): the two
#: best checkpointing strategies combined with every linearization.
LINEARIZATION_FOCUS_HEURISTICS: tuple[str, ...] = (
    "DF-CkptW",
    "BF-CkptW",
    "RF-CkptW",
    "DF-CkptC",
    "BF-CkptC",
    "RF-CkptC",
)


@dataclass(frozen=True)
class FigureResult:
    """Rows and plottable series reproducing one figure."""

    figure: str
    description: str
    rows: tuple[ResultRow, ...]
    x_axis: str = "n_tasks"
    panels: tuple[str, ...] = ()

    def series(self, family: str | None = None) -> dict[str, list[tuple[float, float]]]:
        """``heuristic -> [(x, T/T_inf), ...]`` series, optionally per family.

        When the rows span several platform points in a dimension other
        than the x-axis (downtime / processor sweeps built from custom
        grids), the series keys carry that dimension — e.g.
        ``"DF-CkptW [D=60]"`` — so distinct grid points keep distinct
        labels (see :func:`repro.experiments.series_by_heuristic`).
        """
        rows = self.rows if family is None else tuple(r for r in self.rows if r.family == family)
        return series_by_heuristic(rows, x_axis=self.x_axis)

    def best_heuristic_per_x(self, family: str) -> dict[float, str]:
        """For each x value of a family, the heuristic with the lowest ratio."""
        best: dict[float, tuple[str, float]] = {}
        for row in self.rows:
            if row.family != family:
                continue
            x = float(getattr(row, self.x_axis))
            current = best.get(x)
            if current is None or row.overhead_ratio < current[1]:
                best[x] = (row.heuristic, row.overhead_ratio)
        return {x: name for x, (name, _) in sorted(best.items())}


def _preset_sizes(preset: str, sizes: Sequence[int] | None) -> tuple[int, ...]:
    if sizes is not None:
        return tuple(int(s) for s in sizes)
    if preset == "paper":
        return PAPER_TASK_COUNTS
    if preset == "smoke":
        return SMOKE_TASK_COUNTS
    raise ValueError(f"unknown preset {preset!r}; expected 'paper' or 'smoke'")


def _search_mode(preset: str) -> str:
    return "exhaustive" if preset == "paper" else "geometric"


def _figure_rows(
    scenarios,
    *,
    preset: str,
    search_mode: str | None,
    jobs: int | None,
    cache: Any,
    progress: Any,
    runner: Any,
    backend: str | None = None,
) -> list[ResultRow]:
    """One figure sweep through the grid runner: shared option plumbing."""
    return run_grid(
        scenarios,
        search_mode=search_mode or _search_mode(preset),
        jobs=jobs,
        cache=cache,
        progress=progress,
        runner=runner,
        backend=backend,
    )


def figure2(
    *,
    preset: str = "smoke",
    sizes: Sequence[int] | None = None,
    seed: int = 0,
    search_mode: str | None = None,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    runner: Any = None,
    backend: str | None = None,
) -> FigureResult:
    """Figure 2: impact of the linearization strategy (CkptW and CkptC)."""
    sizes = _preset_sizes(preset, sizes)
    scenarios = scenario_grid(
        ("cybershake", "ligo", "genome"),
        sizes,
        checkpoint_mode="proportional",
        checkpoint_factor=0.1,
        heuristics=LINEARIZATION_FOCUS_HEURISTICS,
        seed=seed,
        label="fig2",
    )
    rows = _figure_rows(
        scenarios, preset=preset, search_mode=search_mode,
        jobs=jobs, cache=cache, progress=progress, runner=runner,
        backend=backend,
    )
    return FigureResult(
        figure="figure2",
        description="Impact of the linearization strategy (c = 0.1 w)",
        rows=tuple(rows),
        panels=("cybershake", "ligo", "genome"),
    )


def figure3(
    *,
    preset: str = "smoke",
    sizes: Sequence[int] | None = None,
    seed: int = 0,
    search_mode: str | None = None,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    runner: Any = None,
    backend: str | None = None,
) -> FigureResult:
    """Figure 3: impact of the checkpointing strategy (c = 0.1 w)."""
    sizes = _preset_sizes(preset, sizes)
    scenarios = scenario_grid(
        ("montage", "ligo", "cybershake", "genome"),
        sizes,
        checkpoint_mode="proportional",
        checkpoint_factor=0.1,
        heuristics=HEURISTIC_NAMES,
        seed=seed,
        label="fig3",
    )
    rows = _figure_rows(
        scenarios, preset=preset, search_mode=search_mode,
        jobs=jobs, cache=cache, progress=progress, runner=runner,
        backend=backend,
    )
    return FigureResult(
        figure="figure3",
        description="Impact of the checkpointing strategy (c = 0.1 w)",
        rows=tuple(rows),
        panels=("montage", "ligo", "cybershake", "genome"),
    )


def figure4(
    *,
    preset: str = "smoke",
    sizes: Sequence[int] | None = None,
    seed: int = 0,
    search_mode: str | None = None,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    runner: Any = None,
    backend: str | None = None,
) -> FigureResult:
    """Figure 4: CyberShake with constant (10 s, 5 s) and small (0.01 w) checkpoints."""
    sizes = _preset_sizes(preset, sizes)
    mode = search_mode or _search_mode(preset)
    owned = _owned_runner(jobs, cache, progress) if runner is None else None
    rows: list[ResultRow] = []
    panels = []
    try:
        for panel, (ckpt_mode, factor, value) in {
            "cybershake-c10": ("constant", 0.0, 10.0),
            "cybershake-c5": ("constant", 0.0, 5.0),
            "cybershake-0.01w": ("proportional", 0.01, 0.0),
        }.items():
            panels.append(panel)
            scenarios = scenario_grid(
                ("cybershake",),
                sizes,
                checkpoint_mode=ckpt_mode,
                checkpoint_factor=factor,
                checkpoint_value=value,
                heuristics=LINEARIZATION_FOCUS_HEURISTICS,
                seed=seed,
                label=panel,
            )
            rows.extend(
                run_grid(
                    scenarios, search_mode=mode, jobs=jobs, cache=cache,
                    progress=progress, runner=runner or owned, backend=backend,
                )
            )
    finally:
        if owned is not None:
            owned.close()
    return FigureResult(
        figure="figure4",
        description="Linearization impact for constant / small checkpoint costs (CyberShake)",
        rows=tuple(rows),
        panels=tuple(panels),
    )


def figure5(
    *,
    preset: str = "smoke",
    sizes: Sequence[int] | None = None,
    seed: int = 0,
    search_mode: str | None = None,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    runner: Any = None,
    backend: str | None = None,
) -> FigureResult:
    """Figure 5: checkpointing strategies with c = 0.01 w."""
    sizes = _preset_sizes(preset, sizes)
    scenarios = scenario_grid(
        ("montage", "ligo", "cybershake", "genome"),
        sizes,
        checkpoint_mode="proportional",
        checkpoint_factor=0.01,
        heuristics=HEURISTIC_NAMES,
        seed=seed,
        label="fig5",
    )
    rows = _figure_rows(
        scenarios, preset=preset, search_mode=search_mode,
        jobs=jobs, cache=cache, progress=progress, runner=runner,
        backend=backend,
    )
    return FigureResult(
        figure="figure5",
        description="Impact of the checkpointing strategy (c = 0.01 w)",
        rows=tuple(rows),
        panels=("montage", "ligo", "cybershake", "genome"),
    )


def figure6(
    *,
    preset: str = "smoke",
    sizes: Sequence[int] | None = None,
    seed: int = 0,
    search_mode: str | None = None,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    runner: Any = None,
    backend: str | None = None,
) -> FigureResult:
    """Figure 6: checkpointing strategies with constant c = 5 s."""
    sizes = _preset_sizes(preset, sizes)
    scenarios = scenario_grid(
        ("montage", "ligo", "cybershake", "genome"),
        sizes,
        checkpoint_mode="constant",
        checkpoint_value=5.0,
        heuristics=HEURISTIC_NAMES,
        seed=seed,
        label="fig6",
    )
    rows = _figure_rows(
        scenarios, preset=preset, search_mode=search_mode,
        jobs=jobs, cache=cache, progress=progress, runner=runner,
        backend=backend,
    )
    return FigureResult(
        figure="figure6",
        description="Impact of the checkpointing strategy (c = 5 s)",
        rows=tuple(rows),
        panels=("montage", "ligo", "cybershake", "genome"),
    )


#: Failure-rate sweeps of Figure 7 (per family; Genome uses smaller rates).
FIGURE7_RATES: dict[str, tuple[float, ...]] = {
    "montage": (1e-4, 2.5e-4, 3.8e-4, 5.2e-4, 6.6e-4, 8e-4, 9.3e-4),
    "ligo": (1e-4, 2.5e-4, 3.8e-4, 5.2e-4, 6.6e-4, 8e-4, 9.3e-4),
    "cybershake": (1e-4, 2.5e-4, 3.8e-4, 5.2e-4, 6.6e-4, 8e-4, 9.3e-4),
    "genome": (1e-6, 5e-5, 9e-5, 1.4e-4, 1.8e-4, 2.3e-4, 2.7e-4),
}


def figure7(
    *,
    preset: str = "smoke",
    n_tasks: int | None = None,
    seed: int = 0,
    search_mode: str | None = None,
    rates: dict[str, Sequence[float]] | None = None,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    runner: Any = None,
    backend: str | None = None,
) -> FigureResult:
    """Figure 7: checkpointing strategies versus the failure rate (200 tasks)."""
    size = n_tasks if n_tasks is not None else (200 if preset == "paper" else 40)
    mode = search_mode or _search_mode(preset)
    sweep = {k: tuple(v) for k, v in (rates or FIGURE7_RATES).items()}
    if preset == "smoke" and rates is None:
        # Keep only the endpoints and the middle of each sweep for smoke runs.
        sweep = {k: (v[0], v[len(v) // 2], v[-1]) for k, v in sweep.items()}
    scenarios: list[Scenario] = []
    for family, family_rates in sweep.items():
        for rate in family_rates:
            scenarios.append(
                Scenario(
                    family=family,
                    n_tasks=size,
                    failure_rate=float(rate),
                    checkpoint_mode="proportional",
                    checkpoint_factor=0.1,
                    heuristics=HEURISTIC_NAMES,
                    seed=seed,
                    label="fig7",
                )
            )
    rows = _figure_rows(
        scenarios, preset=preset, search_mode=mode,
        jobs=jobs, cache=cache, progress=progress, runner=runner,
        backend=backend,
    )
    return FigureResult(
        figure="figure7",
        description="Impact of the checkpointing strategy versus the failure rate",
        rows=tuple(rows),
        x_axis="failure_rate",
        panels=tuple(sweep.keys()),
    )


def _owned_runner(jobs: int | None, cache: Any, progress: Any) -> Any:
    """A CampaignRunner for multi-sweep drivers, or ``None`` for the plain
    serial path (so the figure functions keep their loop-free fast path)."""
    if not wants_runtime(jobs, cache, progress):
        return None
    from ..runtime.runner import CampaignRunner

    return CampaignRunner(jobs=jobs, cache=cache, progress=progress)


def all_figures(
    *,
    preset: str = "smoke",
    seed: int = 0,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    backend: str | None = None,
) -> dict[str, FigureResult]:
    """Run every figure reproduction and return them keyed by name.

    ``jobs``, ``cache`` and ``progress`` are forwarded to the campaign
    runtime; with a persistent cache a re-run of the same preset performs
    zero evaluator calls (see EXPERIMENTS.md).  One worker pool is shared
    by all eight grid sweeps (six figures; figure 4 runs three panels), so
    pool start-up is paid once.
    """
    shared = _owned_runner(jobs, cache, progress)
    kwargs = dict(preset=preset, seed=seed, runner=shared, backend=backend)
    try:
        return {
            "figure2": figure2(**kwargs),
            "figure3": figure3(**kwargs),
            "figure4": figure4(**kwargs),
            "figure5": figure5(**kwargs),
            "figure6": figure6(**kwargs),
            "figure7": figure7(**kwargs),
        }
    finally:
        if shared is not None:
            shared.close()
