"""Experiment harness: run heuristic sweeps and collect result rows.

The harness evaluates every requested heuristic on every scenario and records
the paper's metric ``T / T_inf`` (expected makespan over the failure-free,
checkpoint-free makespan).  Results are plain dataclass rows so they can be
rendered to CSV / markdown by :mod:`repro.experiments.reporting` or
post-processed with numpy.

The unit of work is :func:`run_heuristic` — one (scenario instance,
heuristic) pair.  Each unit draws from its own
:func:`~repro.heuristics.registry.heuristic_rng` stream, so units are
independent of each other and of execution order: the serial loops here and
the parallel :class:`~repro.runtime.runner.CampaignRunner` produce exactly
the same rows.  ``run_grid`` accepts ``jobs`` / ``cache`` and routes through
the runtime whenever either is requested; see EXPERIMENTS.md for usage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..core.dag import Workflow
from ..heuristics.registry import heuristic_rng, parse_heuristic_name, solve_heuristic
from ..heuristics.search import SEARCH_MODES, candidate_counts
from .scenarios import Scenario, build_workflow

__all__ = [
    "ResultRow",
    "SERIES_AXES",
    "run_heuristic",
    "run_scenario",
    "run_grid",
    "best_by_strategy",
    "series_by_heuristic",
    "wants_runtime",
]


def wants_runtime(jobs: int | None, cache: Any, progress: Any) -> bool:
    """Whether these options require the campaign runtime.

    The single source of truth for the serial-fast-path predicate shared by
    :func:`run_grid` and the figure drivers.  ``progress=False`` means
    "silent" (mirroring :func:`repro.runtime.progress.coerce_progress`), so
    it keeps the fast path just like ``None``.
    """
    return not (jobs == 1 and cache is None and progress in (None, False))


@dataclass(frozen=True)
class ResultRow:
    """One (scenario, heuristic) measurement."""

    label: str
    family: str
    n_tasks: int
    actual_n_tasks: int
    failure_rate: float
    checkpoint_mode: str
    checkpoint_parameter: float
    heuristic: str
    linearization: str
    checkpoint_strategy: str
    n_checkpointed: int
    expected_makespan: float
    failure_free_work: float
    overhead_ratio: float
    solve_seconds: float
    seed: int
    # Platform dimensions beyond the failure rate.  They default to the
    # paper's setting (D = 0, single processor) so rows written before the
    # platform became a grid axis keep loading.
    downtime: float = 0.0
    processors: int = 1


def run_heuristic(
    scenario: Scenario,
    heuristic: str,
    *,
    search_mode: str = "exhaustive",
    max_candidates: int = 30,
    workflow: Workflow | None = None,
    backend: str | None = None,
) -> ResultRow:
    """Evaluate one heuristic on one scenario instance; returns its row.

    This is the campaign runtime's work unit.  ``workflow`` lets callers
    reuse an already-generated instance (the runner memoizes one per
    scenario instance and process); when omitted it is built from the
    scenario.  The heuristic's random stream is derived from
    ``(scenario.seed, heuristic)`` alone, so the result does not depend on
    what else runs in the same process.  ``backend`` selects the evaluation
    backend (any registered name or a
    :class:`~repro.core.backend.BackendSpec`); all backends produce rows
    that agree within floating-point noise, so cache keys ignore it.
    """
    # Validate eagerly: CkptNvr/CkptAlws never consume the candidate counts,
    # but a typoed search_mode must not pass silently (nor reach cache keys).
    if search_mode not in SEARCH_MODES:
        raise ValueError(
            f"unknown search mode {search_mode!r}; expected one of {SEARCH_MODES}"
        )
    if workflow is None:
        workflow = build_workflow(scenario)
    platform = scenario.platform
    linearization, strategy = parse_heuristic_name(heuristic)
    counts = (
        None
        if strategy in ("CkptNvr", "CkptAlws")
        else candidate_counts(
            workflow.n_tasks, mode=search_mode, max_candidates=max_candidates
        )
    )
    start = time.perf_counter()
    result = solve_heuristic(
        workflow,
        platform,
        heuristic,
        rng=heuristic_rng(scenario.seed, heuristic),
        counts=counts,
        backend=backend,
    )
    elapsed = time.perf_counter() - start
    evaluation = result.evaluation
    return ResultRow(
        label=scenario.label,
        family=scenario.family,
        n_tasks=scenario.n_tasks,
        actual_n_tasks=workflow.n_tasks,
        failure_rate=scenario.failure_rate,
        checkpoint_mode=scenario.checkpoint_mode,
        checkpoint_parameter=scenario.checkpoint_parameter,
        heuristic=heuristic,
        linearization=linearization,
        checkpoint_strategy=strategy,
        n_checkpointed=result.checkpoint_count,
        expected_makespan=evaluation.expected_makespan,
        failure_free_work=evaluation.failure_free_work,
        overhead_ratio=evaluation.overhead_ratio,
        solve_seconds=elapsed,
        seed=scenario.seed,
        downtime=scenario.downtime,
        processors=scenario.processors,
    )


def run_scenario(
    scenario: Scenario,
    *,
    search_mode: str = "exhaustive",
    max_candidates: int = 30,
    backend: str | None = None,
) -> list[ResultRow]:
    """Evaluate every heuristic of a scenario; returns one row per heuristic.

    Parameters
    ----------
    scenario:
        The experimental configuration to run.
    search_mode:
        ``"exhaustive"`` reproduces the paper's search over every checkpoint
        count; ``"geometric"`` subsamples the counts (see
        :func:`repro.heuristics.search.candidate_counts`) to keep large sweeps
        affordable.
    max_candidates:
        Budget for the ``"geometric"`` mode.
    """
    workflow = build_workflow(scenario)
    return [
        run_heuristic(
            scenario,
            heuristic,
            search_mode=search_mode,
            max_candidates=max_candidates,
            workflow=workflow,
            backend=backend,
        )
        for heuristic in scenario.heuristics
    ]


def run_grid(
    scenarios: Iterable[Scenario],
    *,
    search_mode: str | None = None,
    max_candidates: int | None = None,
    jobs: int | None = 1,
    cache: Any = None,
    progress: Any = None,
    runner: Any = None,
    backend: str | None = None,
) -> list[ResultRow]:
    """Run several scenarios back to back and concatenate their rows.

    ``search_mode`` defaults to ``"exhaustive"`` and ``max_candidates`` to
    30 — except when an existing
    :class:`~repro.runtime.runner.CampaignRunner` is passed as ``runner``,
    where an omitted value defers to the runner's own configuration
    (``jobs`` / ``cache`` / ``progress`` are then taken from the runner
    too, which also reuses its cache and worker pool across grids).

    ``jobs`` and ``cache`` route the grid through the campaign runtime:
    ``jobs > 1`` fans the (scenario × heuristic) units out over a process
    pool, and a :class:`~repro.runtime.cache.ResultCache` answers repeated
    units without any evaluator call.  The default (``jobs=1``, no cache)
    is the plain serial loop; both paths produce identical rows.
    """
    if runner is not None:
        return runner.run_rows(
            scenarios,
            search_mode=search_mode,
            max_candidates=max_candidates,
            backend=backend,
        )
    search_mode = "exhaustive" if search_mode is None else search_mode
    max_candidates = 30 if max_candidates is None else max_candidates

    if not wants_runtime(jobs, cache, progress):
        rows: list[ResultRow] = []
        for scenario in scenarios:
            rows.extend(
                run_scenario(
                    scenario,
                    search_mode=search_mode,
                    max_candidates=max_candidates,
                    backend=backend,
                )
            )
        return rows

    from ..runtime.runner import CampaignRunner

    with CampaignRunner(
        jobs=jobs,
        cache=cache,
        search_mode=search_mode,
        max_candidates=max_candidates,
        progress=progress,
        backend=backend,
    ) as owned:
        return owned.run_rows(scenarios)


def best_by_strategy(rows: Sequence[ResultRow]) -> dict[tuple[str, int, str], ResultRow]:
    """For each (family, n_tasks, checkpoint strategy), keep the best linearization.

    This mirrors how the paper plots Figure 3 and Figures 5-7: "for each
    checkpointing strategy, we plot the best linearization strategy".
    """
    best: dict[tuple[str, int, str], ResultRow] = {}
    for row in rows:
        key = (row.family, row.n_tasks, row.checkpoint_strategy)
        current = best.get(key)
        if current is None or row.overhead_ratio < current.overhead_ratio:
            best[key] = row
    return best


#: Valid x-axes for :func:`series_by_heuristic` (and the figure drivers).
SERIES_AXES = ("n_tasks", "failure_rate", "downtime", "processors")


def series_by_heuristic(
    rows: Sequence[ResultRow], *, x_axis: str = "n_tasks"
) -> dict[str, list[tuple[float, float]]]:
    """Group rows into plottable ``heuristic -> [(x, overhead_ratio), ...]`` series.

    When a platform dimension that is *not* the x-axis varies across the
    rows (a D > 0 point next to the paper's D = 0 one, a processor sweep,
    or a rate sweep within one family), it enters the series key —
    ``"DF-CkptW [D=60]"`` — so distinct grid points never collapse into
    one indistinguishable line.  A purely *per-family* rate (the paper
    gives Genome its own :math:`\\lambda`) stays implicit, as families are
    separated into panels, not series.
    """
    if x_axis not in SERIES_AXES:
        raise ValueError(f"x_axis must be one of {SERIES_AXES}")
    hidden = [
        dim
        for dim in ("downtime", "processors")
        if dim != x_axis and len({getattr(row, dim) for row in rows}) > 1
    ]
    if x_axis != "failure_rate" and len(
        {(row.family, row.failure_rate) for row in rows}
    ) > len({row.family for row in rows}):
        hidden.append("failure_rate")
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        key = row.heuristic
        if hidden:
            tags = []
            if "failure_rate" in hidden:
                tags.append(f"lambda={row.failure_rate:g}")
            if "downtime" in hidden:
                tags.append(f"D={row.downtime:g}")
            if "processors" in hidden:
                tags.append(f"p={row.processors}")
            key = f"{key} [{' '.join(tags)}]"
        x = float(getattr(row, x_axis))
        series.setdefault(key, []).append((x, row.overhead_ratio))
    for values in series.values():
        values.sort()
    return series
