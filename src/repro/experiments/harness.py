"""Experiment harness: run heuristic sweeps and collect result rows.

The harness evaluates every requested heuristic on every scenario and records
the paper's metric ``T / T_inf`` (expected makespan over the failure-free,
checkpoint-free makespan).  Results are plain dataclass rows so they can be
rendered to CSV / markdown by :mod:`repro.experiments.reporting` or
post-processed with numpy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..core.evaluator import evaluate_schedule
from ..core.platform import Platform
from ..heuristics.registry import parse_heuristic_name, solve_heuristic
from ..heuristics.search import candidate_counts
from .scenarios import Scenario, build_workflow

__all__ = ["ResultRow", "run_scenario", "run_grid", "best_by_strategy", "series_by_heuristic"]


@dataclass(frozen=True)
class ResultRow:
    """One (scenario, heuristic) measurement."""

    label: str
    family: str
    n_tasks: int
    actual_n_tasks: int
    failure_rate: float
    checkpoint_mode: str
    checkpoint_parameter: float
    heuristic: str
    linearization: str
    checkpoint_strategy: str
    n_checkpointed: int
    expected_makespan: float
    failure_free_work: float
    overhead_ratio: float
    solve_seconds: float
    seed: int


def run_scenario(
    scenario: Scenario,
    *,
    search_mode: str = "exhaustive",
    max_candidates: int = 30,
) -> list[ResultRow]:
    """Evaluate every heuristic of a scenario; returns one row per heuristic.

    Parameters
    ----------
    scenario:
        The experimental configuration to run.
    search_mode:
        ``"exhaustive"`` reproduces the paper's search over every checkpoint
        count; ``"geometric"`` subsamples the counts (see
        :func:`repro.heuristics.search.candidate_counts`) to keep large sweeps
        affordable.
    max_candidates:
        Budget for the ``"geometric"`` mode.
    """
    workflow = build_workflow(scenario)
    platform = scenario.platform
    counts = candidate_counts(workflow.n_tasks, mode=search_mode, max_candidates=max_candidates)
    rng = np.random.default_rng(scenario.seed)

    rows: list[ResultRow] = []
    for heuristic in scenario.heuristics:
        linearization, strategy = parse_heuristic_name(heuristic)
        start = time.perf_counter()
        result = solve_heuristic(
            workflow,
            platform,
            heuristic,
            rng=rng,
            counts=counts if strategy not in ("CkptNvr", "CkptAlws") else None,
        )
        elapsed = time.perf_counter() - start
        evaluation = result.evaluation
        rows.append(
            ResultRow(
                label=scenario.label,
                family=scenario.family,
                n_tasks=scenario.n_tasks,
                actual_n_tasks=workflow.n_tasks,
                failure_rate=scenario.failure_rate,
                checkpoint_mode=scenario.checkpoint_mode,
                checkpoint_parameter=(
                    scenario.checkpoint_factor
                    if scenario.checkpoint_mode == "proportional"
                    else scenario.checkpoint_value
                ),
                heuristic=heuristic,
                linearization=linearization,
                checkpoint_strategy=strategy,
                n_checkpointed=result.checkpoint_count,
                expected_makespan=evaluation.expected_makespan,
                failure_free_work=evaluation.failure_free_work,
                overhead_ratio=evaluation.overhead_ratio,
                solve_seconds=elapsed,
                seed=scenario.seed,
            )
        )
    return rows


def run_grid(
    scenarios: Iterable[Scenario],
    *,
    search_mode: str = "exhaustive",
    max_candidates: int = 30,
) -> list[ResultRow]:
    """Run several scenarios back to back and concatenate their rows."""
    rows: list[ResultRow] = []
    for scenario in scenarios:
        rows.extend(
            run_scenario(scenario, search_mode=search_mode, max_candidates=max_candidates)
        )
    return rows


def best_by_strategy(rows: Sequence[ResultRow]) -> dict[tuple[str, int, str], ResultRow]:
    """For each (family, n_tasks, checkpoint strategy), keep the best linearization.

    This mirrors how the paper plots Figure 3 and Figures 5-7: "for each
    checkpointing strategy, we plot the best linearization strategy".
    """
    best: dict[tuple[str, int, str], ResultRow] = {}
    for row in rows:
        key = (row.family, row.n_tasks, row.checkpoint_strategy)
        current = best.get(key)
        if current is None or row.overhead_ratio < current.overhead_ratio:
            best[key] = row
    return best


def series_by_heuristic(
    rows: Sequence[ResultRow], *, x_axis: str = "n_tasks"
) -> dict[str, list[tuple[float, float]]]:
    """Group rows into plottable ``heuristic -> [(x, overhead_ratio), ...]`` series."""
    if x_axis not in ("n_tasks", "failure_rate"):
        raise ValueError("x_axis must be 'n_tasks' or 'failure_rate'")
    series: dict[str, list[tuple[float, float]]] = {}
    for row in rows:
        x = float(getattr(row, x_axis))
        series.setdefault(row.heuristic, []).append((x, row.overhead_ratio))
    for values in series.values():
        values.sort()
    return series
