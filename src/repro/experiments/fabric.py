"""Distributed campaign fabric: coordinator, workers, and the wire spec.

``repro fabric`` runs one campaign across many worker processes (or hosts)
with the robustness layer the single-process runtime cannot provide:

* the **coordinator** (:class:`FabricCoordinator`) owns the campaign spec,
  partitions it into its ``N`` deterministic shards, and hands them out as
  TTL leases through :class:`~repro.runtime.leases.LeaseQueue` — dead or
  stalled workers are detected by lease expiry and their shards reassigned,
  with bounded-attempt poison-shard quarantine;
* **workers** (:class:`FabricWorker`) request leases over a JSON-lines TCP
  control plane, renew them from a heartbeat thread, run their shard through
  the ordinary :func:`~repro.experiments.campaign.run_campaign`, and ship
  the resulting rows back as CSV text;
* shard completions are journaled into the PR 7
  :class:`~repro.runtime.journal.CampaignJournal` (keyed by
  :func:`~repro.runtime.keys.fabric_shard_key`), so ``--resume`` after a
  *coordinator* crash re-leases only the unfinished shards;
* workers share results through the cache-net remote cache
  (:mod:`repro.runtime.cachenet`), degrading to their local cache when the
  cache server is unreachable.

Determinism contract: shards split *whole* scenarios (every seed and
heuristic of a grid point stays together), each shard's rows are computed by
the same serial reference path as ``repro campaign --shard k/N``, and the
coordinator re-assembles them in shard order — the merged report is
byte-identical to a serial unsharded run, whatever died along the way.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable

from ..core.hashing import digest
from ..heuristics.registry import HEURISTIC_NAMES
from ..runtime.cache import ResultCache
from ..runtime.cachenet import (
    CacheNetClient,
    CircuitBreaker,
    FallbackResultCache,
    parse_address,
    read_message,
    write_message,
)
from ..runtime.faults import fault_point
from ..runtime.journal import CampaignJournal
from ..runtime.keys import fabric_shard_key
from ..runtime.leases import POISON, LeaseQueue, ShardLease
from ..runtime.retry import RetryPolicy
from ..service.metrics import MetricsRegistry, build_fabric_registry
from .campaign import CampaignResult, run_campaign
from .harness import ResultRow
from .reporting import rows_from_csv, rows_to_csv
from .scenarios import Scenario, lambda_downtime_grid, scenario_grid, shard_scenarios

__all__ = [
    "FabricError",
    "FabricSpec",
    "FabricCoordinator",
    "FabricWorker",
    "ControlClient",
    "FABRIC_PROTOCOL_VERSION",
]

#: Wire protocol version of the coordinator control plane.
FABRIC_PROTOCOL_VERSION = 1


class FabricError(RuntimeError):
    """A fabric control-plane operation failed for good."""


# ----------------------------------------------------------------------
# The campaign spec, as the coordinator ships it to workers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FabricSpec:
    """Content of one fabric campaign: the grid, the seeds, the budget.

    Mirrors the grid-building arguments of ``repro campaign`` exactly, so a
    fabric run and a serial ``repro campaign`` over the same arguments
    enumerate the same scenarios in the same deterministic order — the
    foundation of the byte-identity contract.  The evaluation backend stays
    *out* of the spec (and its digest): backends are bit-compatible by
    contract, and the choice rides the worker config instead.
    """

    families: tuple[str, ...] = ("montage",)
    sizes: tuple[int, ...] = (30, 60)
    downtimes: tuple[float, ...] | None = None
    processors: tuple[int, ...] | None = None
    preset: str = "grid"
    seeds: tuple[int, ...] = (0, 1, 2)
    heuristics: tuple[str, ...] = field(default_factory=tuple)
    checkpoint_mode: str = "proportional"
    checkpoint_factor: float = 0.1
    checkpoint_value: float = 0.0
    search_mode: str = "geometric"
    max_candidates: int = 30
    n_shards: int = 2

    def __post_init__(self) -> None:
        if self.preset not in ("grid", "lambda-downtime"):
            raise ValueError(f"unknown preset {self.preset!r}")
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if not self.families:
            raise ValueError("at least one family is required")
        if not self.sizes:
            raise ValueError("at least one size is required")
        if not self.seeds:
            raise ValueError("at least one seed is required")
        if not self.heuristics:
            object.__setattr__(self, "heuristics", tuple(HEURISTIC_NAMES))

    def scenarios(self) -> list[Scenario]:
        """The full (unsharded) scenario list, in deterministic grid order."""
        if self.preset == "lambda-downtime":
            preset_kwargs: dict[str, Any] = {}
            if self.downtimes is not None:
                preset_kwargs["downtimes"] = self.downtimes
            if self.processors is not None:
                preset_kwargs["processors"] = self.processors
            return lambda_downtime_grid(
                self.families,
                n_tasks=self.sizes[0],
                checkpoint_mode=self.checkpoint_mode,
                checkpoint_factor=self.checkpoint_factor,
                checkpoint_value=self.checkpoint_value,
                heuristics=self.heuristics,
                **preset_kwargs,
            )
        return scenario_grid(
            self.families,
            self.sizes,
            downtimes=self.downtimes if self.downtimes is not None else (0.0,),
            processors=self.processors if self.processors is not None else (1,),
            checkpoint_mode=self.checkpoint_mode,
            checkpoint_factor=self.checkpoint_factor,
            checkpoint_value=self.checkpoint_value,
            heuristics=self.heuristics,
            label="campaign",
        )

    def shard(self, k: int) -> list[Scenario]:
        """Deterministic shard ``k`` (1-based) of :attr:`n_shards`."""
        return shard_scenarios(self.scenarios(), k, self.n_shards)

    def to_payload(self) -> dict[str, Any]:
        """JSON-serializable wire form (lossless round-trip)."""
        payload: dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            payload[spec_field.name] = list(value) if isinstance(value, tuple) else value
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "FabricSpec":
        """Rebuild a spec from :meth:`to_payload` output (strict)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown fabric spec field(s) {unknown}")
        kwargs: dict[str, Any] = {}
        for spec_field in fields(cls):
            if spec_field.name not in payload:
                continue
            value = payload[spec_field.name]
            kwargs[spec_field.name] = tuple(value) if isinstance(value, list) else value
        return cls(**kwargs)

    def content_digest(self) -> str:
        """Content digest of the spec (enters every shard's journal key)."""
        return digest({"fabric-spec": self.to_payload()})

    def with_updates(self, **kwargs: Any) -> "FabricSpec":
        return replace(self, **kwargs)


# ----------------------------------------------------------------------
# Control-plane client (shared by workers and tests)
# ----------------------------------------------------------------------
class ControlClient:
    """JSON-lines client of the coordinator with per-op timeout + retries."""

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        timeout: float = 10.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.address = parse_address(address) if isinstance(address, str) else address
        self.timeout = float(timeout)
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=5, base_delay=0.05, max_delay=2.0, jitter=0.5
        )
        self._sock: socket.socket | None = None
        self._rfile: Any = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.address, timeout=self.timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
            self._rfile = sock.makefile("rb")
        return self._sock

    def _disconnect(self) -> None:
        for closer in (self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:
                    pass
        self._rfile = None
        self._sock = None

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response round-trip; transport failures are retried."""
        with self._lock:
            failures = 0
            while True:
                try:
                    sock = self._connect()
                    sock.sendall(
                        json.dumps(payload, separators=(",", ":")).encode("utf-8")
                        + b"\n"
                    )
                    response = read_message(self._rfile)
                except (OSError, TimeoutError) as exc:
                    self._disconnect()
                    failures += 1
                    if failures >= self.retry.max_attempts:
                        raise FabricError(
                            f"coordinator {self.address[0]}:{self.address[1]} "
                            f"unreachable after {failures} attempt(s): "
                            f"{type(exc).__name__}: {exc}"
                        ) from exc
                    self.retry.sleep(failures)
                    continue
                if response is None:
                    self._disconnect()
                    failures += 1
                    if failures >= self.retry.max_attempts:
                        raise FabricError("coordinator closed the connection")
                    self.retry.sleep(failures)
                    continue
                if not response.get("ok"):
                    raise FabricError(
                        f"coordinator rejected {payload.get('op')}: "
                        f"{response.get('error', 'unknown error')}"
                    )
                return response

    def close(self) -> None:
        with self._lock:
            self._disconnect()


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------
class _FabricRequestHandler(socketserver.StreamRequestHandler):
    server: "_FabricTCPServer"

    def handle(self) -> None:
        while True:
            try:
                request = read_message(self.rfile)
            except (OSError, ValueError):
                return
            if request is None:
                return
            try:
                response = self.server.coordinator._dispatch(request)
            except Exception as exc:
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                write_message(self.wfile, response)
            except OSError:
                return


class _FabricTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], coordinator: "FabricCoordinator"
    ) -> None:
        super().__init__(address, _FabricRequestHandler)
        self.coordinator = coordinator


class FabricCoordinator:
    """Own one fabric campaign: lease shards out, collect rows, merge.

    Parameters
    ----------
    spec:
        The campaign content (grid, seeds, budget, shard count).
    host / port:
        Control-plane bind address (``port=0`` picks an ephemeral port).
    ttl:
        Lease TTL in seconds; workers heartbeat at ``ttl / 3``.
    max_attempts:
        Grants per shard before poison-quarantine.
    journal:
        Optional :class:`CampaignJournal` (or path): completed shards are
        recorded under :func:`fabric_shard_key` and replayed on open, so a
        crashed coordinator resumes without re-running finished shards.
    cache_endpoint:
        Optional ``host:port`` of a ``repro fabric cache-server``; forwarded
        to workers in the hello config.
    backend:
        Optional evaluation backend name forwarded to workers (results are
        backend-agnostic; this is a deployment knob, not campaign content).
    registry:
        Optional :class:`MetricsRegistry`; defaults to a fresh
        :func:`build_fabric_registry` wired to the lease queue.
    """

    def __init__(
        self,
        spec: FabricSpec,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        ttl: float = 15.0,
        max_attempts: int = 3,
        journal: CampaignJournal | str | os.PathLike[str] | None = None,
        cache_endpoint: str | None = None,
        backend: str | None = None,
        registry: MetricsRegistry | None = None,
        sweep_interval: float = 0.05,
    ) -> None:
        self.spec = spec
        self.ttl = float(ttl)
        self.cache_endpoint = cache_endpoint
        self.backend = backend
        self.sweep_interval = float(sweep_interval)
        self.queue = LeaseQueue(spec.n_shards, ttl=ttl, max_attempts=max_attempts)
        self.journal = (
            journal
            if isinstance(journal, CampaignJournal) or journal is None
            else CampaignJournal(journal)
        )
        self._spec_digest = spec.content_digest()
        self._rows_csv: dict[int, str] = {}
        self._lock = threading.Lock()
        self._counters_seen: dict[str, int] = {}
        self._last_report_degraded = False
        self.registry = registry if registry is not None else build_fabric_registry(
            active_leases=lambda: float(self.queue.active_leases),
            pending_shards=lambda: float(
                sum(1 for s in self.queue.snapshot().values() if s[0] == "pending")
            ),
            breaker_open=lambda: 1.0 if self._last_report_degraded else 0.0,
        )
        self._replay_journal()
        self._server = _FabricTCPServer((host, port), self)
        self._server_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "FabricCoordinator":
        """Serve the control plane from a background thread; returns self."""
        thread = threading.Thread(
            # A tight poll keeps shutdown() latency (and thus the cost of a
            # short-lived coordinator) well under socketserver's 0.5s default.
            target=lambda: self._server.serve_forever(poll_interval=0.05),
            name="repro-fabric",
            daemon=True,
        )
        thread.start()
        self._server_thread = thread
        return self

    def serve(self, *, timeout: float | None = None) -> None:
        """Block until every shard is done or poisoned (then stop serving).

        ``timeout`` bounds the wait in seconds — with no live workers a
        lease-based queue would otherwise wait forever for a reassignment
        that never comes.
        """
        deadline = time.monotonic() + timeout if timeout is not None else None
        try:
            while not self.queue.finished:
                if deadline is not None and time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"fabric campaign did not finish within {timeout}s "
                        f"(shards: {self.queue.snapshot()})"
                    )
                time.sleep(self.sweep_interval)
                self.queue.expire()
                self._sync_counters()
        finally:
            self._sync_counters()
            self.stop()

    def stop(self) -> None:
        """Stop the control plane (idempotent); the journal stays open."""
        try:
            self._server.shutdown()
            self._server.server_close()
        except OSError:  # pragma: no cover - double close on teardown paths
            pass
        if self._server_thread is not None:
            self._server_thread.join(timeout=5.0)
            self._server_thread = None

    def close(self) -> None:
        self.stop()
        if self.journal is not None:
            self.journal.close()

    # -- journal replay ------------------------------------------------
    def _replay_journal(self) -> None:
        if self.journal is None:
            return
        for k in range(1, self.spec.n_shards + 1):
            outcome = self.journal.get(self._shard_key(k))
            if outcome is None:
                continue
            rows_csv = outcome.get("rows_csv")
            if isinstance(rows_csv, str):
                self._rows_csv[k] = rows_csv
                self.queue.mark_done(k)

    def _shard_key(self, shard: int) -> str:
        return fabric_shard_key(
            spec_digest=self._spec_digest,
            shard=shard,
            n_shards=self.spec.n_shards,
        )

    # -- request dispatch (handler threads) ------------------------------
    def _dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        worker = str(request.get("worker", "?"))
        if op == "hello":
            return {
                "ok": True,
                "v": FABRIC_PROTOCOL_VERSION,
                "spec": self.spec.to_payload(),
                "config": {
                    "ttl": self.ttl,
                    "cache": self.cache_endpoint,
                    "backend": self.backend,
                },
            }
        if op == "lease":
            lease = self.queue.grant(worker)
            self._sync_counters()
            if lease is None:
                return {"ok": True, "shard": None, "finished": self.queue.finished}
            return {
                "ok": True,
                "shard": lease.shard,
                "n_shards": lease.n_shards,
                "attempt": lease.attempts,
            }
        if op == "renew":
            renewed = self.queue.renew(worker, int(request.get("shard", 0)))
            self._sync_counters()
            return {"ok": True, "renewed": renewed}
        if op == "complete":
            return self._handle_complete(worker, request)
        if op == "fail":
            shard = int(request.get("shard", 0))
            error = request.get("error")
            state = self.queue.fail(
                worker, shard, error if isinstance(error, dict) else None
            )
            if state == POISON and self.journal is not None:
                with self._lock:
                    self.journal.record_failure(
                        self._shard_key(shard),
                        error if isinstance(error, dict) else {"type": "unknown"},
                    )
            self._sync_counters()
            return {"ok": True, "state": state}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _handle_complete(self, worker: str, request: dict[str, Any]) -> dict[str, Any]:
        shard = int(request.get("shard", 0))
        rows_csv = request.get("rows_csv")
        if not isinstance(rows_csv, str):
            return {"ok": False, "error": "complete requires 'rows_csv' text"}
        first = self.queue.complete(worker, shard)
        if first:
            with self._lock:
                self._rows_csv[shard] = rows_csv
                if self.journal is not None:
                    self.journal.record(
                        self._shard_key(shard),
                        {
                            "rows_csv": rows_csv,
                            "shard": shard,
                            "n_shards": self.spec.n_shards,
                        },
                    )
        stats = request.get("stats")
        if isinstance(stats, dict):
            retries = stats.get("cache_net_retries")
            if isinstance(retries, (int, float)) and retries > 0:
                self.registry.get("repro_fabric_cache_net_retries_total").inc(retries)
            degraded = bool(stats.get("degraded"))
            self._last_report_degraded = degraded
            if degraded:
                self.registry.get("repro_fabric_cache_degradations_total").inc()
        self._sync_counters()
        return {"ok": True, "accepted": first}

    def _sync_counters(self) -> None:
        """Fold the queue's lifetime counters into the metrics registry."""
        snapshot = {
            "repro_fabric_leases_granted_total": self.queue.granted,
            "repro_fabric_lease_renewals_total": self.queue.renewals,
            "repro_fabric_lease_expirations_total": self.queue.expirations,
            "repro_fabric_shard_reassignments_total": self.queue.reassignments,
            "repro_fabric_shards_completed_total": self.queue.completions,
            "repro_fabric_shards_poisoned_total": len(self.queue.poisoned),
        }
        with self._lock:
            for name, total in snapshot.items():
                seen = self._counters_seen.get(name, 0)
                if total > seen:
                    self.registry.get(name).inc(total - seen)
                    self._counters_seen[name] = total

    # -- results -------------------------------------------------------
    @property
    def failures(self) -> list[ShardLease]:
        """The poisoned shards (empty on a fully successful campaign)."""
        return self.queue.poisoned

    def result(self) -> CampaignResult:
        """Merge the completed shards' rows (byte-identity path).

        Rows concatenate in shard order ``1..N``; every (grid point,
        heuristic, seed) group lives whole inside one shard, and
        aggregation sorts groups, so the rendered report equals the serial
        unsharded run's byte for byte.
        """
        rows: list[ResultRow] = []
        with self._lock:
            collected = dict(self._rows_csv)
        for k in sorted(collected):
            rows.extend(rows_from_csv(collected[k]))
        if not rows and self.failures:
            raise FabricError(
                "no shard completed: "
                + "; ".join(lease.describe() for lease in self.failures)
            )
        return CampaignResult.from_rows(rows)


# ----------------------------------------------------------------------
# Worker
# ----------------------------------------------------------------------
class FabricWorker:
    """One fabric worker process: lease, compute, heartbeat, report, repeat.

    Parameters
    ----------
    coordinator:
        ``host:port`` of the coordinator control plane.
    name:
        Worker identity in lease bookkeeping (default ``host-pid``).
    jobs:
        Worker-local parallelism forwarded to :func:`run_campaign`.
    local_cache_path:
        Optional sqlite path of the worker-local cache layer; in-memory
        when omitted.
    backend:
        Evaluation backend override (else the coordinator's hello config).
    poll:
        Seconds between lease polls when nothing is grantable yet.
    """

    def __init__(
        self,
        coordinator: str | tuple[str, int],
        *,
        name: str | None = None,
        jobs: int = 1,
        local_cache_path: str | None = None,
        backend: str | None = None,
        poll: float = 0.2,
        retry: RetryPolicy | None = None,
        on_event: Callable[[str], None] | None = None,
    ) -> None:
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.jobs = int(jobs)
        self.local_cache_path = local_cache_path
        self.backend = backend
        self.poll = float(poll)
        self.client = ControlClient(coordinator, retry=retry)
        self.shards_completed = 0
        self.shards_failed = 0
        self._on_event = on_event

    def _log(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def _open_cache(
        self, cache_endpoint: str | None
    ) -> ResultCache | FallbackResultCache:
        local = ResultCache(path=self.local_cache_path)
        if not cache_endpoint:
            return local
        return FallbackResultCache(
            CacheNetClient(cache_endpoint, timeout=5.0),
            local,
            breaker=CircuitBreaker(failure_threshold=3, reset_timeout=2.0),
        )

    def run(self, *, max_shards: int | None = None) -> int:
        """Work until the coordinator reports the campaign finished.

        Returns the number of shards this worker completed.  ``max_shards``
        bounds the take (tests; drain-one-shard invocations).
        """
        hello = self.client.request({"op": "hello", "worker": self.name})
        spec = FabricSpec.from_payload(dict(hello.get("spec") or {}))
        config = dict(hello.get("config") or {})
        ttl = float(config.get("ttl") or 15.0)
        cache_endpoint = config.get("cache")
        backend = self.backend or config.get("backend")
        cache = self._open_cache(
            cache_endpoint if isinstance(cache_endpoint, str) else None
        )
        try:
            lease_rejections = 0
            while True:
                if max_shards is not None and self.shards_completed >= max_shards:
                    break
                try:
                    reply = self.client.request({"op": "lease", "worker": self.name})
                except FabricError:
                    # A rejected lease request (e.g. a coordinator-side
                    # lease_grant fault) is transient: the shard stayed
                    # pending, so back off and ask again — bounded, so a
                    # genuinely broken coordinator still surfaces.
                    lease_rejections += 1
                    if lease_rejections >= self.client.retry.max_attempts:
                        raise
                    self.client.retry.sleep(lease_rejections)
                    continue
                lease_rejections = 0
                shard = reply.get("shard")
                if shard is None:
                    if reply.get("finished"):
                        break
                    time.sleep(self.poll)
                    continue
                self._run_shard(spec, int(shard), ttl, cache, backend)
        finally:
            stats = self._cache_stats(cache)
            cache.close()
            self.client.close()
            self._log(
                f"worker {self.name}: {self.shards_completed} shard(s) "
                f"completed, {self.shards_failed} failed ({stats})"
            )
        return self.shards_completed

    def _cache_stats(self, cache: ResultCache | FallbackResultCache) -> str:
        if isinstance(cache, FallbackResultCache):
            return (
                f"cache: {cache.remote_hits} remote hits, "
                f"{cache.client.retries} net retries, "
                f"breaker {cache.breaker.state}"
            )
        return f"cache: {cache.stats.hits} hits"

    def _heartbeat_loop(
        self, shard: int, interval: float, stop: threading.Event
    ) -> None:
        while not stop.wait(interval):
            try:
                # A stalled heartbeat thread (sleep action) models exactly
                # the slow-but-alive worker the TTL machinery exists for.
                fault_point(
                    "worker_heartbeat",
                    default="sleep=30",
                    worker=self.name,
                    shard=shard,
                )
                reply = self.client.request(
                    {"op": "renew", "worker": self.name, "shard": shard}
                )
                if not reply.get("renewed"):
                    return  # lease lost (expired + reassigned); stop beating
            except FabricError:
                continue  # transient control-plane outage; keep trying
            except Exception:
                return

    def _run_shard(
        self,
        spec: FabricSpec,
        shard: int,
        ttl: float,
        cache: ResultCache | FallbackResultCache,
        backend: Any,
    ) -> None:
        self._log(f"worker {self.name}: leased shard {shard}/{spec.n_shards}")
        stop = threading.Event()
        beat = threading.Thread(
            target=self._heartbeat_loop,
            args=(shard, max(ttl / 3.0, 0.05), stop),
            name=f"repro-fabric-heartbeat-{shard}",
            daemon=True,
        )
        beat.start()
        try:
            fault_point(
                "fabric_shard",
                default="raise=RuntimeError",
                worker=self.name,
                shard=shard,
            )
            result = run_campaign(
                spec.shard(shard),
                seeds=spec.seeds,
                search_mode=spec.search_mode,
                max_candidates=spec.max_candidates,
                jobs=self.jobs,
                cache=cache,
                backend=backend if isinstance(backend, str) else None,
            )
            rows_csv = rows_to_csv(list(result.rows))
        except Exception as exc:
            stop.set()
            beat.join(timeout=5.0)
            self.shards_failed += 1
            self._log(
                f"worker {self.name}: shard {shard} failed "
                f"({type(exc).__name__}: {exc})"
            )
            self.client.request(
                {
                    "op": "fail",
                    "worker": self.name,
                    "shard": shard,
                    "error": {"type": type(exc).__name__, "message": str(exc)},
                }
            )
            return
        stop.set()
        beat.join(timeout=5.0)
        stats: dict[str, Any] = {}
        if isinstance(cache, FallbackResultCache):
            stats = {
                "cache_net_retries": cache.client.retries,
                "degraded": cache.degraded,
            }
        self.client.request(
            {
                "op": "complete",
                "worker": self.name,
                "shard": shard,
                "rows_csv": rows_csv,
                "stats": stats,
            }
        )
        self.shards_completed += 1
        self._log(f"worker {self.name}: completed shard {shard}/{spec.n_shards}")
