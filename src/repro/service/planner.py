"""The service's bridge into the campaign runtime.

:class:`ServicePlanner` turns batches of validated solve requests into
response payloads by the cheapest available route, in order:

1. **cache** — the shared :class:`~repro.runtime.cache.ResultCache`, through
   the unchanged content-addressed keys of :mod:`repro.runtime.keys` (a
   cache warmed by ``repro campaign`` serves the daemon and vice versa);
2. **single-flight** — identical requests already being computed (by this
   batch or a concurrent one) are joined instead of recomputed;
3. **family batching** — the remaining misses are grouped by (workflow
   content, platform content, linearization, backend); each group's
   searches share one :class:`SharedSweepScorer`, i.e. one
   :class:`~repro.core.sweep.SweepState` pass over the common
   linearization instead of one per request.

Sharing a sweep cannot change any response: sweep evaluations are pinned
order-independent (the PR-5 hypothesis tests), the scorer memoises by exact
checkpoint set, and the search still re-evaluates its winner through the
plain evaluator — so a daemon response is bit-for-bit the direct
:func:`~repro.heuristics.registry.solve_heuristic` result.

Everything here is synchronous and thread-safe; the asyncio side lives in
:mod:`repro.service.batcher`.  With ``jobs > 1`` the planner fans groups out
over a process pool (one group per worker, scorer and all), mirroring the
campaign runner's worker model.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Sequence

from ..analysis import analyse_schedule, checkpoint_utilities
from ..core.backend import BackendSpec
from ..core.evaluator import MakespanEvaluation, evaluate_schedule
from ..core.sweep import SweepState
from ..heuristics.registry import heuristic_rng, parse_heuristic_name, solve_heuristic
from ..heuristics.linearization import linearize
from ..heuristics.search import candidate_counts
from ..runtime.cache import LRUCache, ResultCache
from ..runtime.faults import fault_point
from ..runtime.keys import platform_fingerprint, scenario_unit_key
from ..runtime.parallel import dispose_executor, resolve_jobs
from ..runtime.runner import _memoized_instance, _normalized_search
from .metrics import MetricsRegistry
from .schema import ScheduleRequest, ServiceError, SolveRequest

__all__ = ["ServicePlanner", "SharedSweepScorer"]


class SharedSweepScorer:
    """One incremental sweep shared by several checkpoint-count searches.

    Wraps a :class:`~repro.core.sweep.SweepState` over one (workflow,
    linearization, platform) and memoises evaluations by exact checkpoint
    set, so N concurrent searches over the same family cost one sweep pass
    and each *distinct* candidate set is priced exactly once.  ``order`` is
    exposed so :func:`~repro.heuristics.search.search_checkpoint_count` can
    verify the scorer matches its linearization.
    """

    def __init__(
        self,
        workflow,
        order,
        platform,
        *,
        backend: "str | BackendSpec | None" = None,
    ):
        self.order = tuple(order)
        backend = BackendSpec.coerce(backend).backend
        self._sweep = SweepState(workflow, self.order, platform, backend=backend)
        self._memo: dict[frozenset[int], MakespanEvaluation] = {}
        #: Underlying sweep evaluations (memo misses) performed so far.
        self.evaluations = 0
        #: Searches that scored at least one set through this scorer.
        self.searches = 0
        self._clients: set[int] = set()

    def __call__(self, selected: frozenset[int]) -> MakespanEvaluation:
        selected = frozenset(selected)
        evaluation = self._memo.get(selected)
        if evaluation is None:
            evaluation = self._sweep.evaluate(selected, keep_task_times=False)
            self._memo[selected] = evaluation
            self.evaluations += 1
        return evaluation


@dataclass(frozen=True)
class _PlannedUnit:
    """One solve request, keyed and normalised, ready to group and compute."""

    request: SolveRequest
    key: str
    group: tuple
    counts: tuple[int, ...] | None
    linearization: str
    strategy: str


def _solve_group(
    units: Sequence[_PlannedUnit], attempt: int = 1
) -> list[dict[str, Any]]:
    """Compute one family group (module-level, hence picklable for jobs>1).

    All units share workflow content, platform content, linearization and
    backend, so the parameterised searches ride one
    :class:`SharedSweepScorer`.  Returns, per unit, the cacheable outcome
    payload, the schedule (order + checkpoint set) and the group's share of
    the sweep-pass / evaluation counters (stamped on the first entry).
    ``attempt`` exists so fault specs can target only the first try of a
    group (``service_group:attempt=1``) and let the retry succeed.
    """
    fault_point("service_group", default="raise=RuntimeError", attempt=attempt)
    first = units[0].request
    workflow, _ = _memoized_instance(first.scenario)
    platform = first.scenario.platform
    scorer: SharedSweepScorer | None = None
    passes = 0
    private_evaluations = 0
    results: list[dict[str, Any]] = []
    for unit in units:
        request = unit.request
        evaluator = None
        if unit.counts is not None:
            if unit.linearization == "RF":
                # RF draws its order from the (seed, heuristic) stream, so
                # it can never share a linearization: give it a private
                # scorer (its own single sweep pass).
                order = linearize(
                    workflow,
                    unit.linearization,
                    rng=heuristic_rng(request.scenario.seed, request.heuristic),
                )
                evaluator = SharedSweepScorer(
                    workflow, order, platform, backend=request.backend
                )
                passes += 1
            else:
                if scorer is None:
                    order = linearize(workflow, unit.linearization)
                    scorer = SharedSweepScorer(
                        workflow, order, platform, backend=request.backend
                    )
                    passes += 1
                evaluator = scorer
        # One spec carries both the backend name and the shared scorer —
        # what used to travel as parallel backend= / sweep_evaluator= kwargs.
        result = solve_heuristic(
            workflow,
            platform,
            request.heuristic,
            rng=heuristic_rng(request.scenario.seed, request.heuristic),
            counts=unit.counts,
            backend=BackendSpec(backend=request.backend, evaluator=evaluator),
        )
        if evaluator is not None:
            evaluator.searches += 1
            if evaluator is not scorer:
                private_evaluations += evaluator.evaluations
        results.append(
            {
                # Exactly the campaign runner's cached outcome payload
                # (_OUTCOME_FIELDS), so daemon and campaign entries are
                # interchangeable under the same key.
                "outcome": {
                    "actual_n_tasks": workflow.n_tasks,
                    "n_checkpointed": result.checkpoint_count,
                    "expected_makespan": result.expected_makespan,
                    "failure_free_work": result.evaluation.failure_free_work,
                    "overhead_ratio": result.overhead_ratio,
                },
                "schedule": {
                    "order": list(result.schedule.order),
                    "checkpointed": sorted(result.schedule.checkpointed),
                },
            }
        )
    evaluations = private_evaluations + (scorer.evaluations if scorer else 0)
    results[0]["stats"] = {"passes": passes, "evaluations": evaluations}
    return results


class ServicePlanner:
    """Cache-aware, deduplicating, batch-coalescing solve executor.

    Parameters
    ----------
    cache:
        Optional shared :class:`~repro.runtime.cache.ResultCache` (its
        thread-safe since this PR); ``None`` still coalesces in-flight and
        in-batch duplicates, it just cannot answer repeats across batches.
    registry:
        Optional :class:`~repro.service.metrics.MetricsRegistry` built by
        :func:`~repro.service.metrics.build_service_registry`; ``None``
        skips instrumentation (library / test use).
    jobs:
        Worker processes for computing groups (``1`` = in-thread, the
        reference path).
    group_retries:
        How many times a group is re-submitted after the worker pool
        breaks underneath it (crashed / OOM-killed worker).  Each break
        disposes and recreates the pool; once the budget is exhausted the
        affected requests fail with a retryable 503 (``pool-crashed``)
        while every other group's results are delivered normally.
    schedule_memory:
        Bound of the in-memory schedule LRU.  Outcomes persist to the disk
        cache, but schedules (order + checkpoint set) are only kept here:
        ``include_schedule`` requests that miss this layer recompute.
    """

    def __init__(
        self,
        *,
        cache: ResultCache | None = None,
        registry: MetricsRegistry | None = None,
        jobs: int | None = 1,
        group_retries: int = 1,
        schedule_memory: int = 512,
    ) -> None:
        self.cache = cache
        self.registry = registry
        self.jobs = resolve_jobs(jobs)
        self.group_retries = max(0, int(group_retries))
        self._schedules = LRUCache(maxsize=schedule_memory)
        self._inflight: dict[str, Future] = {}
        self._inflight_lock = threading.Lock()
        self._pool: Any = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def _inc(self, name: str, amount: float = 1.0) -> None:
        if self.registry is not None:
            self.registry.get(name).inc(amount)

    def cache_hit_rate(self) -> float:
        """Lifetime hit rate of the shared cache (0.0 without a cache)."""
        if self.cache is None:
            return 0.0
        stats = self.cache.stats
        total = stats.hits + stats.misses
        return stats.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Solve path
    # ------------------------------------------------------------------
    def solve_batch(self, requests: Sequence[SolveRequest]) -> list[Any]:
        """Solve one batch; returns one payload (or exception) per request.

        Runs on a worker thread.  Never raises for a single bad unit — the
        per-request entry is the exception instead, so co-batched requests
        are isolated from each other's failures.
        """
        self._inc("repro_solve_requests_total", len(requests))
        self._inc("repro_solve_batches_total")
        results: list[Any] = [None] * len(requests)
        planned: list[_PlannedUnit | None] = [None] * len(requests)
        pending: list[int] = []

        for index, request in enumerate(requests):
            try:
                unit = self._plan(request)
            except Exception as exc:  # noqa: BLE001 - reported per request
                self._inc("repro_solve_errors_total")
                results[index] = exc
                continue
            planned[index] = unit
            served = self._from_cache(request, unit)
            if served is not None:
                self._inc("repro_solve_cache_hits_total")
                results[index] = served
            else:
                pending.append(index)

        # Single-flight: the first pending occurrence of a key (across this
        # batch and any concurrently running batch) owns the computation;
        # the rest join its future.
        owned: list[int] = []
        joined: list[tuple[int, Future]] = []
        with self._inflight_lock:
            for index in pending:
                unit = planned[index]
                future = self._inflight.get(unit.key)
                if future is None:
                    self._inflight[unit.key] = Future()
                    owned.append(index)
                else:
                    joined.append((index, future))
        if joined:
            self._inc("repro_solve_coalesced_total", len(joined))

        groups: dict[tuple, list[int]] = {}
        for index in owned:
            groups.setdefault(planned[index].group, []).append(index)
        try:
            self._compute_groups(groups, planned, results)
        finally:
            # Any owned key whose future was not resolved (a bug or an
            # interpreter-level error) must not wedge future requests.
            with self._inflight_lock:
                for index in owned:
                    future = self._inflight.pop(planned[index].key, None)
                    if future is not None and not future.done():
                        future.set_exception(
                            ServiceError(
                                "solve computation was abandoned",
                                status=500,
                                code="internal",
                            )
                        )

        for index, future in joined:
            unit = planned[index]
            try:
                outcome, schedule = future.result()
            except Exception as exc:  # noqa: BLE001 - reported per request
                results[index] = exc
                continue
            results[index] = self._response(
                unit.request, unit, outcome, schedule, source="coalesced"
            )
        return results

    def _plan(self, request: SolveRequest) -> _PlannedUnit:
        workflow, fingerprint = _memoized_instance(request.scenario, digest=True)
        linearization, strategy = parse_heuristic_name(request.heuristic)
        search_mode, max_candidates = _normalized_search(
            request.heuristic,
            workflow.n_tasks,
            request.search_mode,
            request.max_candidates,
        )
        key = scenario_unit_key(
            workflow_digest=fingerprint,
            platform=request.scenario.platform,
            heuristic=request.heuristic,
            search_mode=search_mode,
            max_candidates=max_candidates,
            seed=request.scenario.seed,
        )
        counts = (
            None
            if strategy in ("CkptNvr", "CkptAlws")
            else candidate_counts(
                workflow.n_tasks,
                mode=request.search_mode,
                max_candidates=request.max_candidates,
            )
        )
        group: tuple = (
            fingerprint,
            platform_fingerprint(request.scenario.platform),
            linearization,
            request.backend,
        )
        if linearization == "RF":
            # RF orders depend on (seed, heuristic): no shared sweep, so
            # make the group unique to keep each unit a singleton.
            group += (request.scenario.seed, request.heuristic)
        return _PlannedUnit(
            request=request,
            key=key,
            group=group,
            counts=counts,
            linearization=linearization,
            strategy=strategy,
        )

    def _from_cache(
        self, request: SolveRequest, unit: _PlannedUnit
    ) -> dict[str, Any] | None:
        if self.cache is None:
            return None
        outcome = self.cache.get(unit.key)
        if outcome is None:
            return None
        schedule = self._schedules.get(unit.key)
        if request.include_schedule and schedule is None:
            # The disk layer only persists outcomes; honouring the schedule
            # request needs a recomputation (which reproduces the cached
            # outcome bit-for-bit).
            return None
        return self._response(request, unit, outcome, schedule, source="cache")

    def _compute_groups(
        self,
        groups: dict[tuple, list[int]],
        planned: Sequence[_PlannedUnit | None],
        results: list[Any],
    ) -> None:
        if not groups:
            return
        items = [
            (indices, tuple(planned[i] for i in indices))
            for indices in groups.values()
        ]
        computed: dict[int, Any] = {}
        remaining = list(range(len(items)))
        attempt = 1
        while remaining:
            # Re-acquire each round: a broken pool is disposed below, so the
            # retry round gets a freshly forked set of workers.
            executor = self._executor() if len(items) > 1 else None
            broken: list[int] = []
            crash: BaseException | None = None
            if executor is None:
                for item_index in remaining:
                    try:
                        computed[item_index] = _solve_group(
                            items[item_index][1], attempt
                        )
                    except BrokenProcessPool as exc:
                        broken.append(item_index)
                        crash = exc
                    except Exception as exc:  # noqa: BLE001 - reported per unit
                        computed[item_index] = exc
            else:
                futures = {
                    item_index: executor.submit(
                        _solve_group, items[item_index][1], attempt
                    )
                    for item_index in remaining
                }
                for item_index, future in futures.items():
                    try:
                        computed[item_index] = future.result()
                    except BrokenProcessPool as exc:
                        broken.append(item_index)
                        crash = exc
                    except Exception as exc:  # noqa: BLE001 - reported per unit
                        computed[item_index] = exc
            if not broken:
                break
            self._inc("repro_pool_crashes_total")
            self._heal_pool()
            if attempt > self.group_retries:
                error = ServiceError(
                    "solve worker pool crashed; retry shortly",
                    status=503,
                    code="pool-crashed",
                )
                error.__cause__ = crash
                for item_index in broken:
                    computed[item_index] = error
                break
            self._inc("repro_solve_retries_total", len(broken))
            remaining = broken
            attempt += 1
        for item_index, (indices, units) in enumerate(items):
            group_result = computed[item_index]
            if isinstance(group_result, Exception):
                self._inc("repro_solve_errors_total", len(indices))
                for index, unit in zip(indices, units):
                    results[index] = group_result
                    self._resolve_inflight(unit.key, error=group_result)
                continue
            stats = group_result[0].get("stats") or {}
            self._inc("repro_solve_sweep_passes_total", stats.get("passes", 0))
            self._inc("repro_solve_evaluations_total", stats.get("evaluations", 0))
            self._inc("repro_solve_computed_total", len(indices))
            for index, unit, entry in zip(indices, units, group_result):
                outcome = entry["outcome"]
                schedule = entry["schedule"]
                if self.cache is not None:
                    self.cache.put(unit.key, outcome)
                self._schedules.put(unit.key, schedule)
                self._resolve_inflight(unit.key, value=(outcome, schedule))
                results[index] = self._response(
                    unit.request, unit, outcome, schedule, source="computed"
                )

    def _resolve_inflight(
        self, key: str, *, value: Any = None, error: Exception | None = None
    ) -> None:
        with self._inflight_lock:
            future = self._inflight.pop(key, None)
        if future is None or future.done():
            return
        if error is not None:
            future.set_exception(error)
        else:
            future.set_result(value)

    def _response(
        self,
        request: SolveRequest,
        unit: _PlannedUnit,
        outcome: dict[str, Any],
        schedule: dict[str, Any] | None,
        *,
        source: str,
    ) -> dict[str, Any]:
        scenario = request.scenario
        payload: dict[str, Any] = {
            "heuristic": request.heuristic,
            "family": scenario.family,
            "n_tasks": scenario.n_tasks,
            "actual_n_tasks": int(outcome["actual_n_tasks"]),
            "seed": scenario.seed,
            "failure_rate": scenario.failure_rate,
            "downtime": scenario.downtime,
            "processors": scenario.processors,
            "search_mode": request.search_mode,
            "max_candidates": request.max_candidates,
            "expected_makespan": float(outcome["expected_makespan"]),
            "failure_free_work": float(outcome["failure_free_work"]),
            "overhead_ratio": float(outcome["overhead_ratio"]),
            "n_checkpointed": int(outcome["n_checkpointed"]),
            "cache": source,
            "cache_key": unit.key,
        }
        if request.include_schedule and schedule is not None:
            payload["schedule"] = {
                "order": list(schedule["order"]),
                "checkpointed": list(schedule["checkpointed"]),
            }
        return payload

    # ------------------------------------------------------------------
    # Evaluate / analyse paths (no batching; direct library calls)
    # ------------------------------------------------------------------
    def evaluate(self, request: ScheduleRequest) -> dict[str, Any]:
        """Price a schedule; the JSON mirror of ``repro evaluate``."""
        if self.cache is not None:
            from ..runtime.runner import evaluate_schedule_cached

            evaluation = evaluate_schedule_cached(
                request.schedule, request.platform, self.cache, backend=request.backend
            )
        else:
            evaluation = evaluate_schedule(
                request.schedule, request.platform, backend=request.backend
            )
        return {
            "expected_makespan": evaluation.expected_makespan,
            "failure_free_makespan": evaluation.failure_free_makespan,
            "failure_free_work": evaluation.failure_free_work,
            "overhead_ratio": evaluation.overhead_ratio,
            "n_checkpointed": request.schedule.n_checkpointed,
        }

    def analyse(self, request: ScheduleRequest) -> dict[str, Any]:
        """Expected-time breakdown; the JSON mirror of ``repro analyse``."""
        breakdown = analyse_schedule(
            request.schedule, request.platform, backend=request.backend
        )
        workflow = request.schedule.workflow
        payload: dict[str, Any] = {
            "expected_makespan": breakdown.expected_makespan,
            "useful_work": breakdown.useful_work,
            "checkpoint_time": breakdown.checkpoint_time,
            "expected_waste": breakdown.expected_waste,
            "waste_fraction": breakdown.waste_fraction,
            "worst_tasks": [
                {
                    "task_index": entry.task_index,
                    "name": workflow.task(entry.task_index).name,
                    "position": entry.position,
                    "expected_time": entry.expected_time,
                    "expected_overhead": entry.expected_overhead,
                    "overhead_ratio": entry.overhead_ratio,
                }
                for entry in breakdown.worst_tasks(request.top)
            ],
        }
        if request.utilities:
            payload["utilities"] = [
                {"task_index": utility.task_index, "utility": utility.utility}
                for utility in sorted(
                    checkpoint_utilities(
                        request.schedule, request.platform, backend=request.backend
                    ),
                    key=lambda u: -u.utility,
                )
            ]
        return payload

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _executor(self):
        if self.jobs <= 1:
            return None
        with self._pool_lock:
            if self._pool is None:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.jobs)
            return self._pool

    def _heal_pool(self) -> None:
        """Dispose a (possibly broken) pool so the next round forks anew.

        ``dispose_executor`` also terminates worker processes outright —
        ``shutdown`` alone would hang on a wedged worker.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            dispose_executor(pool)

    def close(self) -> None:
        """Shut down the worker pool (if one was started)."""
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
