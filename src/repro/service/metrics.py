"""Prometheus-style metrics: counters, gauges, histograms, text exposition.

A deliberately small, dependency-free subset of the Prometheus client model —
exactly what the service daemon needs to expose cache hit rate, queue depth,
batch coalescing and solve-latency percentiles on ``GET /metrics``:

* :class:`Counter` — monotonically increasing totals, with optional labels;
* :class:`Gauge` — settable values, or computed at scrape time through a
  callback (e.g. the current queue depth, the lifetime hit rate);
* :class:`Histogram` — cumulative buckets plus ``_sum`` / ``_count``, from
  which Prometheus derives p50/p99 via ``histogram_quantile``;
* :class:`MetricsRegistry` — owns the metrics and renders the `text
  exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_.

All mutating operations are thread-safe (one registry-wide lock): the daemon
observes metrics from asyncio handlers, worker threads and pool callbacks
alike.  Scraping renders under the same lock, so a scrape never sees a
histogram whose bucket counts and sum disagree.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "build_fabric_registry",
    "build_service_registry",
    "format_value",
]

#: Default buckets of the latency histograms (seconds).  Spans sub-millisecond
#: cache hits up to multi-second exhaustive searches on large instances.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def format_value(value: float) -> str:
    """Render a sample value the way Prometheus text exposition expects."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(ch not in _NAME_OK for ch in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class _Metric:
    """Shared plumbing of the three metric types (naming, labels, lock)."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        *,
        label_names: Sequence[str] = (),
        lock: threading.RLock | None = None,
    ) -> None:
        self.name = _check_name(name)
        self.help_text = str(help_text)
        self.label_names = tuple(str(n) for n in label_names)
        for label in self.label_names:
            _check_name(label)
        self._lock = lock if lock is not None else threading.RLock()
        # Label-value tuple -> per-series state.  Unlabelled metrics use the
        # empty tuple, created eagerly so they always appear in a scrape.
        self._series: dict[tuple[str, ...], Any] = {}
        if not self.label_names:
            self._series[()] = self._new_series()

    def _new_series(self) -> Any:
        raise NotImplementedError

    def _series_for(self, labels: Mapping[str, Any] | None) -> Any:
        values = self._label_values(labels)
        with self._lock:
            series = self._series.get(values)
            if series is None:
                series = self._new_series()
                self._series[values] = series
            return series

    def _label_values(self, labels: Mapping[str, Any] | None) -> tuple[str, ...]:
        labels = dict(labels or {})
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def header_lines(self) -> list[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]

    def sample_lines(self) -> list[str]:
        lines: list[str] = []
        with self._lock:
            for values, series in sorted(self._series.items()):
                labels = dict(zip(self.label_names, values))
                lines.extend(self._render_series(labels, series))
        return lines

    def _render_series(self, labels: dict[str, str], series: Any) -> list[str]:
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing total (optionally labelled)."""

    kind = "counter"

    def _new_series(self) -> list[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        series = self._series_for(labels)
        with self._lock:
            series[0] += amount

    def value(self, **labels: Any) -> float:
        """Current total of one series (0.0 if never incremented)."""
        values = self._label_values(labels)
        with self._lock:
            series = self._series.get(values)
            return float(series[0]) if series is not None else 0.0

    def _render_series(self, labels: dict[str, str], series: list[float]) -> list[str]:
        return [f"{self.name}{_render_labels(labels)} {format_value(series[0])}"]


class Gauge(_Metric):
    """Settable value; ``callback`` computes the value at scrape time."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        *,
        label_names: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
        lock: threading.RLock | None = None,
    ) -> None:
        if callback is not None and label_names:
            raise ValueError("callback gauges cannot be labelled")
        self.callback = callback
        super().__init__(name, help_text, label_names=label_names, lock=lock)

    def _new_series(self) -> list[float]:
        return [0.0]

    def set_callback(self, callback: Callable[[], float]) -> None:
        """Attach a scrape-time callback to an (unlabelled) gauge.

        Lets the registry be declared before the objects the gauge reads
        exist (the server wires queue depth / hit rate in as it assembles).
        """
        if self.label_names:
            raise ValueError("callback gauges cannot be labelled")
        self.callback = callback

    def set(self, value: float, **labels: Any) -> None:
        if self.callback is not None:
            raise ValueError(f"gauge {self.name} is computed by a callback")
        series = self._series_for(labels)
        with self._lock:
            series[0] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if self.callback is not None:
            raise ValueError(f"gauge {self.name} is computed by a callback")
        series = self._series_for(labels)
        with self._lock:
            series[0] += amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        if self.callback is not None:
            return float(self.callback())
        values = self._label_values(labels)
        with self._lock:
            series = self._series.get(values)
            return float(series[0]) if series is not None else 0.0

    def _render_series(self, labels: dict[str, str], series: list[float]) -> list[str]:
        value = float(self.callback()) if self.callback is not None else series[0]
        return [f"{self.name}{_render_labels(labels)} {format_value(value)}"]


class Histogram(_Metric):
    """Cumulative-bucket histogram (``le`` buckets, ``_sum`` and ``_count``)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        label_names: Sequence[str] = (),
        lock: threading.RLock | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if bounds and bounds[-1] == math.inf:
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds
        super().__init__(name, help_text, label_names=label_names, lock=lock)

    def _new_series(self) -> dict[str, Any]:
        return {"counts": [0] * (len(self.bounds) + 1), "sum": 0.0, "count": 0}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation."""
        value = float(value)
        series = self._series_for(labels)
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            series["counts"][index] += 1
            series["sum"] += value
            series["count"] += 1

    def snapshot(self, **labels: Any) -> dict[str, Any]:
        """Copy of one series: cumulative bucket counts, sum and count."""
        values = self._label_values(labels)
        with self._lock:
            series = self._series.get(values)
            if series is None:
                series = self._new_series()
            cumulative: list[int] = []
            running = 0
            for count in series["counts"]:
                running += count
                cumulative.append(running)
            return {
                "bounds": self.bounds,
                "cumulative": cumulative,
                "sum": float(series["sum"]),
                "count": int(series["count"]),
            }

    def quantile(self, q: float, **labels: Any) -> float:
        """Bucket-interpolated quantile (the ``histogram_quantile`` estimate).

        Good enough for reports and the load benchmark; Prometheus itself
        computes the same estimate server-side from the exposed buckets.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        snap = self.snapshot(**labels)
        total = snap["count"]
        if total == 0:
            return float("nan")
        rank = q * total
        previous_bound = 0.0
        previous_cumulative = 0
        for bound, cumulative in zip(snap["bounds"], snap["cumulative"]):
            if cumulative >= rank:
                in_bucket = cumulative - previous_cumulative
                if in_bucket == 0:
                    return bound
                fraction = (rank - previous_cumulative) / in_bucket
                return previous_bound + fraction * (bound - previous_bound)
            previous_bound = bound
            previous_cumulative = cumulative
        return snap["bounds"][-1] if snap["bounds"] else float("nan")

    def _render_series(self, labels: dict[str, str], series: dict[str, Any]) -> list[str]:
        lines: list[str] = []
        running = 0
        for bound, count in zip(self.bounds, series["counts"]):
            running += count
            bucket_labels = dict(labels)
            bucket_labels["le"] = format_value(bound)
            lines.append(
                f"{self.name}_bucket{_render_labels(bucket_labels)} {running}"
            )
        running += series["counts"][len(self.bounds)]
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf"
        lines.append(f"{self.name}_bucket{_render_labels(bucket_labels)} {running}")
        rendered = _render_labels(labels)
        lines.append(f"{self.name}_sum{rendered} {format_value(series['sum'])}")
        lines.append(f"{self.name}_count{rendered} {series['count']}")
        return lines


class MetricsRegistry:
    """Ordered collection of metrics with Prometheus text exposition."""

    #: Content type of the exposition format (what ``GET /metrics`` serves).
    CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: dict[str, _Metric] = {}

    def _register(self, metric: _Metric) -> Any:
        with self._lock:
            if metric.name in self._metrics:
                raise ValueError(f"metric {metric.name} is already registered")
            self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help_text: str, *, labels: Sequence[str] = ()
    ) -> Counter:
        """Create and register a :class:`Counter`."""
        return self._register(
            Counter(name, help_text, label_names=labels, lock=self._lock)
        )

    def gauge(
        self,
        name: str,
        help_text: str,
        *,
        labels: Sequence[str] = (),
        callback: Callable[[], float] | None = None,
    ) -> Gauge:
        """Create and register a :class:`Gauge`."""
        return self._register(
            Gauge(name, help_text, label_names=labels, callback=callback, lock=self._lock)
        )

    def histogram(
        self,
        name: str,
        help_text: str,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Sequence[str] = (),
    ) -> Histogram:
        """Create and register a :class:`Histogram`."""
        return self._register(
            Histogram(name, help_text, buckets=buckets, label_names=labels, lock=self._lock)
        )

    def get(self, name: str) -> Any:
        """Look up a registered metric by name (KeyError when absent)."""
        with self._lock:
            return self._metrics[name]

    def names(self) -> list[str]:
        with self._lock:
            return list(self._metrics)

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines: list[str] = []
        with self._lock:
            for metric in self._metrics.values():
                lines.extend(metric.header_lines())
                lines.extend(metric.sample_lines())
        return "\n".join(lines) + "\n"


def build_service_registry(
    *,
    queue_depth: Callable[[], float] | None = None,
    cache_hit_rate: Callable[[], float] | None = None,
    buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
) -> MetricsRegistry:
    """The daemon's metric set, in one place (names are the public contract).

    Callbacks are optional so the registry can be built before the queue /
    cache exist (the app wires them in as it assembles the server); a
    missing callback exposes the gauge at 0.
    """
    registry = MetricsRegistry()
    registry.counter(
        "repro_requests_total",
        "HTTP requests received, by endpoint and status code.",
        labels=("endpoint", "status"),
    )
    registry.counter(
        "repro_solve_requests_total", "Solve requests accepted into the queue."
    )
    registry.counter(
        "repro_solve_cache_hits_total",
        "Solve requests answered from the content-addressed result cache.",
    )
    registry.counter(
        "repro_solve_computed_total",
        "Solve requests that required a fresh heuristic computation.",
    )
    registry.counter(
        "repro_solve_coalesced_total",
        "Solve requests coalesced onto another request's computation "
        "(batch duplicates plus in-flight joins).",
    )
    registry.counter(
        "repro_solve_sweep_passes_total",
        "SweepState construction passes performed by the planner.",
    )
    registry.counter(
        "repro_solve_evaluations_total",
        "Distinct checkpoint-set evaluations performed by the planner's sweeps.",
    )
    registry.counter("repro_solve_batches_total", "Request batches dispatched.")
    registry.counter(
        "repro_solve_errors_total", "Solve computations that raised an error."
    )
    registry.counter(
        "repro_pool_crashes_total",
        "Times the solve worker pool broke (crashed / killed worker) and "
        "was disposed for healing.",
    )
    registry.counter(
        "repro_solve_retries_total",
        "Solve groups re-submitted after a worker-pool crash.",
    )
    registry.counter(
        "repro_solve_timeouts_total",
        "Requests rejected with 503 for exceeding --request-timeout.",
    )
    registry.gauge(
        "repro_queue_depth",
        "Solve requests currently waiting in the batcher queue.",
        callback=queue_depth,
    )
    registry.gauge(
        "repro_cache_hit_rate",
        "Lifetime fraction of solve lookups served by the result cache.",
        callback=cache_hit_rate,
    )
    registry.histogram(
        "repro_solve_latency_seconds",
        "End-to-end solve latency (queue wait plus computation), seconds.",
        buckets=tuple(buckets),
    )
    registry.histogram(
        "repro_request_latency_seconds",
        "HTTP request handling latency by endpoint, seconds.",
        buckets=tuple(buckets),
        labels=("endpoint",),
    )
    return registry


def build_fabric_registry(
    *,
    active_leases: Callable[[], float] | None = None,
    pending_shards: Callable[[], float] | None = None,
    breaker_open: Callable[[], float] | None = None,
) -> MetricsRegistry:
    """The fabric coordinator's metric set (names are the public contract).

    Counters follow the lease lifecycle (grants, renewals, expirations,
    reassignments, quarantines, completions) plus the cache-net client's
    retry count folded in from worker completion reports; the gauges track
    live queue state through callbacks, like :func:`build_service_registry`.
    """
    registry = MetricsRegistry()
    registry.counter(
        "repro_fabric_leases_granted_total", "Shard leases granted to workers."
    )
    registry.counter(
        "repro_fabric_lease_renewals_total", "Lease renewals (worker heartbeats)."
    )
    registry.counter(
        "repro_fabric_lease_expirations_total",
        "Leases that expired without completion (dead or stalled worker).",
    )
    registry.counter(
        "repro_fabric_shard_reassignments_total",
        "Shards returned to the pending pool for another worker.",
    )
    registry.counter(
        "repro_fabric_shards_poisoned_total",
        "Shards quarantined after exhausting their grant budget.",
    )
    registry.counter(
        "repro_fabric_shards_completed_total", "Shards completed and journaled."
    )
    registry.counter(
        "repro_fabric_cache_net_retries_total",
        "Cache-net transport retries reported by workers.",
    )
    registry.counter(
        "repro_fabric_cache_degradations_total",
        "Worker shard runs that finished with the cache circuit open "
        "(served by the local cache only).",
    )
    registry.gauge(
        "repro_fabric_active_leases",
        "Shard leases currently held by workers.",
        callback=active_leases,
    )
    registry.gauge(
        "repro_fabric_pending_shards",
        "Shards waiting for a worker.",
        callback=pending_shards,
    )
    registry.gauge(
        "repro_fabric_cache_breaker_open",
        "1 while the most recent worker report had its cache circuit open.",
        callback=breaker_open,
    )
    return registry
