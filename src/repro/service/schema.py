"""JSON request schema of the checkpoint-planning service.

Requests describe instances with exactly the vocabulary the rest of the
repository uses: a solve request carries the fields of a
:class:`~repro.experiments.scenarios.Scenario` (family, size, platform
triple, checkpoint-cost assignment, seed), evaluate / analyse requests carry
a serialized schedule (the ``repro-schedule`` format of
:mod:`repro.workflows.serialization`) plus the platform triple of the
single-platform CLI commands.  Building on those shared descriptions is what
makes a service response bit-for-bit comparable to the equivalent direct
call: both sides construct the same workflow, the same platform and the same
random stream from the same payload.

Validation errors raise :class:`ServiceError`, which maps onto an HTTP
status and a machine-readable error code — the JSON analogue of the CLI's
``error: ...`` stderr line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..core.backend import BACKEND_REGISTRY
from ..core.platform import Platform, PlatformSpec
from ..core.schedule import Schedule
from ..experiments.scenarios import DEFAULT_FAILURE_RATES, Scenario
from ..heuristics.registry import parse_heuristic_name
from ..heuristics.search import SEARCH_MODES
from ..workflows.serialization import schedule_from_dict

__all__ = [
    "ServiceError",
    "SolveRequest",
    "ScheduleRequest",
    "parse_solve_request",
    "parse_evaluate_request",
    "parse_analyse_request",
]


class ServiceError(Exception):
    """A request the service refuses, with its HTTP status and error code.

    ``code`` is a stable machine-readable slug (``bad-request``,
    ``not-found``, ``overloaded``, ...); ``message`` is the human-readable
    detail.  :meth:`to_payload` renders the JSON error body every endpoint
    uses, so clients parse one shape for every failure.
    """

    def __init__(self, message: str, *, status: int = 400, code: str = "bad-request"):
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)

    def to_payload(self) -> dict[str, Any]:
        return {"error": {"code": self.code, "message": str(self)}}


@dataclass(frozen=True)
class SolveRequest:
    """One validated ``POST /v1/solve`` request."""

    scenario: Scenario
    heuristic: str
    search_mode: str
    max_candidates: int
    backend: str | None
    include_schedule: bool


@dataclass(frozen=True)
class ScheduleRequest:
    """One validated ``POST /v1/evaluate`` or ``POST /v1/analyse`` request."""

    schedule: Schedule
    platform: Platform
    backend: str | None
    # analyse-only knobs (defaulted for evaluate)
    top: int = 5
    utilities: bool = False


def _require_object(payload: Any) -> Mapping[str, Any]:
    if not isinstance(payload, Mapping):
        raise ServiceError("request body must be a JSON object")
    return payload


_ALLOWED_SOLVE_FIELDS = frozenset(
    {
        "family",
        "n_tasks",
        "failure_rate",
        "downtime",
        "processors",
        "checkpoint_mode",
        "checkpoint_factor",
        "checkpoint_value",
        "seed",
        "heuristic",
        "search_mode",
        "max_candidates",
        "backend",
        "include_schedule",
        "async",
    }
)


def _field(
    payload: Mapping[str, Any],
    name: str,
    kind,
    default: Any,
    *,
    required: bool = False,
):
    """One typed field with a service-flavoured error on mismatch."""
    if name not in payload:
        if required:
            raise ServiceError(f"missing required field {name!r}")
        return default
    value = payload[name]
    # bool is an int subclass; a JSON true for n_tasks must not pass as 1.
    if kind in (int, float) and isinstance(value, bool):
        raise ServiceError(f"field {name!r} must be a {kind.__name__}, got a boolean")
    if kind is float and isinstance(value, int):
        value = float(value)
    if not isinstance(value, kind):
        raise ServiceError(
            f"field {name!r} must be a {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _validated_backend(payload: Mapping[str, Any]) -> str | None:
    backend = payload.get("backend")
    if backend is None:
        return None
    # Validate against the live registry (entry-point backends included),
    # names only: whether the backend is *available* in this process is a
    # solve-time concern with its own structured error.
    choices = BACKEND_REGISTRY.choices()
    if backend not in choices:
        raise ServiceError(
            f"unknown backend {backend!r}; expected one of {choices}"
        )
    return str(backend)


def parse_solve_request(payload: Any) -> SolveRequest:
    """Validate a solve payload into a :class:`SolveRequest`.

    The platform / checkpoint fields default exactly like the CLI's
    (``D = 0``, ``p = 1``, proportional ``c = 0.1 w``); the failure rate
    defaults to the family's paper value from
    :data:`~repro.experiments.scenarios.DEFAULT_FAILURE_RATES`.
    """
    payload = _require_object(payload)
    unknown = sorted(set(payload) - _ALLOWED_SOLVE_FIELDS)
    if unknown:
        raise ServiceError(f"unknown field(s) {', '.join(map(repr, unknown))}")

    family = str(_field(payload, "family", str, None, required=True)).strip().lower()
    if family not in DEFAULT_FAILURE_RATES:
        raise ServiceError(
            f"unknown workflow family {family!r}; expected one of "
            f"{', '.join(sorted(DEFAULT_FAILURE_RATES))}"
        )
    n_tasks = _field(payload, "n_tasks", int, None, required=True)
    if n_tasks < 1:
        raise ServiceError(f"n_tasks must be >= 1, got {n_tasks}")

    heuristic = str(_field(payload, "heuristic", str, "DF-CkptW"))
    try:
        parse_heuristic_name(heuristic)
    except ValueError as exc:
        raise ServiceError(str(exc)) from exc

    search_mode = str(_field(payload, "search_mode", str, "exhaustive"))
    if search_mode not in SEARCH_MODES:
        raise ServiceError(
            f"unknown search mode {search_mode!r}; expected one of {SEARCH_MODES}"
        )
    max_candidates = _field(payload, "max_candidates", int, 30)
    if search_mode == "geometric" and max_candidates < 2:
        raise ServiceError(
            f"max_candidates must be >= 2 for geometric mode, got {max_candidates}"
        )

    failure_rate = _field(payload, "failure_rate", float, DEFAULT_FAILURE_RATES[family])
    if failure_rate < 0.0:
        raise ServiceError(f"failure_rate must be >= 0, got {failure_rate}")
    downtime = _field(payload, "downtime", float, 0.0)
    if downtime < 0.0:
        raise ServiceError(f"downtime must be >= 0, got {downtime}")
    processors = _field(payload, "processors", int, 1)
    if processors < 1:
        raise ServiceError(f"processors must be >= 1, got {processors}")

    checkpoint_mode = str(_field(payload, "checkpoint_mode", str, "proportional"))
    if checkpoint_mode not in ("proportional", "constant"):
        raise ServiceError(
            f"checkpoint_mode must be 'proportional' or 'constant', got {checkpoint_mode!r}"
        )
    scenario = Scenario(
        family=family,
        n_tasks=int(n_tasks),
        failure_rate=float(failure_rate),
        downtime=float(downtime),
        processors=int(processors),
        checkpoint_mode=checkpoint_mode,
        checkpoint_factor=float(_field(payload, "checkpoint_factor", float, 0.1)),
        checkpoint_value=float(_field(payload, "checkpoint_value", float, 0.0)),
        heuristics=(heuristic,),
        seed=int(_field(payload, "seed", int, 0)),
        label="service",
    )
    return SolveRequest(
        scenario=scenario,
        heuristic=heuristic,
        search_mode=search_mode,
        max_candidates=int(max_candidates),
        backend=_validated_backend(payload),
        include_schedule=bool(_field(payload, "include_schedule", bool, False)),
    )


def _parse_schedule_request(payload: Any, *, analyse: bool) -> ScheduleRequest:
    payload = _require_object(payload)
    allowed = {"schedule", "failure_rate", "downtime", "processors", "backend"}
    if analyse:
        allowed |= {"top", "utilities"}
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise ServiceError(f"unknown field(s) {', '.join(map(repr, unknown))}")
    schedule_payload = payload.get("schedule")
    if not isinstance(schedule_payload, Mapping):
        raise ServiceError(
            "field 'schedule' must be a serialized repro-schedule object "
            "(the JSON written by 'repro solve --output')"
        )
    try:
        schedule = schedule_from_dict(schedule_payload)
    except (ValueError, KeyError, TypeError) as exc:
        raise ServiceError(f"invalid schedule payload: {exc}") from exc
    failure_rate = _field(payload, "failure_rate", float, 1e-3)
    downtime = _field(payload, "downtime", float, 0.0)
    processors = _field(payload, "processors", int, 1)
    if failure_rate < 0.0 or downtime < 0.0 or processors < 1:
        raise ServiceError("invalid platform: rates/downtime >= 0, processors >= 1")
    # The same construction the CLI and Scenario use, so a service request
    # and `repro evaluate` price the same platform by construction.
    platform = PlatformSpec(
        failure_rate=float(failure_rate),
        downtime=float(downtime),
        processors=int(processors),
    ).build()
    top = _field(payload, "top", int, 5) if analyse else 5
    if analyse and top < 1:
        raise ServiceError(f"top must be >= 1, got {top}")
    return ScheduleRequest(
        schedule=schedule,
        platform=platform,
        backend=_validated_backend(payload),
        top=int(top),
        utilities=bool(_field(payload, "utilities", bool, False)) if analyse else False,
    )


def parse_evaluate_request(payload: Any) -> ScheduleRequest:
    """Validate an evaluate payload (schedule + platform triple + backend)."""
    return _parse_schedule_request(payload, analyse=False)


def parse_analyse_request(payload: Any) -> ScheduleRequest:
    """Validate an analyse payload (evaluate fields plus ``top`` / ``utilities``)."""
    return _parse_schedule_request(payload, analyse=True)
