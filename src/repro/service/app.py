"""The ``repro serve`` daemon: a stdlib-only asyncio HTTP/1.1 server.

Endpoints
---------
``GET /healthz``
    Liveness: ``{"status": "ok", "version": ...}``.
``GET /metrics``
    Prometheus text exposition of the service registry.
``POST /v1/solve``
    Solve one heuristic on one scenario (the JSON mirror of
    ``repro solve`` on a generated family instance); flows through the
    batching queue.  ``{"async": true}`` returns a job id immediately.
``POST /v1/evaluate`` / ``POST /v1/analyse``
    Price / decompose a submitted schedule (the JSON mirrors of
    ``repro evaluate`` / ``repro analyse``).
``GET /v1/jobs/<id>``
    Status and, once finished, the result of an async solve job.

The HTTP layer is deliberately minimal (request line + headers +
``Content-Length`` body, keep-alive, no TLS, no chunked requests): the
daemon's job is to put the existing runtime behind a socket without any new
dependency, not to be a general web server.  Anything non-trivial belongs in
a reverse proxy in front of it.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
import uuid
from dataclasses import dataclass, replace
from typing import Any, Callable

from .. import __version__
from ..runtime.cache import ResultCache
from .batcher import RequestBatcher
from .metrics import MetricsRegistry, build_service_registry
from .planner import ServicePlanner
from .schema import (
    ServiceError,
    parse_analyse_request,
    parse_evaluate_request,
    parse_solve_request,
)

__all__ = ["ServiceConfig", "ServiceServer", "BackgroundServer", "run_server"]

#: Largest accepted request body (a serialized schedule of a very large
#: workflow is well under this; anything bigger is a client error).
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Finished async jobs retained for ``GET /v1/jobs/<id>``.
MAX_FINISHED_JOBS = 256


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to assemble a server."""

    host: str = "127.0.0.1"
    port: int = 8765
    jobs: int = 1
    workers: int = 2
    cache_path: str | None = None
    cache_memory: int = 4096
    backend: str | None = None
    batch_window: float = 0.0
    queue_max: int = 256
    max_batch: int = 64
    request_timeout: float | None = None
    group_retries: int = 1


class ServiceServer:
    """Owns the cache, planner, batcher, metrics and the asyncio server."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.registry: MetricsRegistry = build_service_registry()
        self.cache = ResultCache(
            maxsize=config.cache_memory, path=config.cache_path
        )
        self.planner = ServicePlanner(
            cache=self.cache,
            registry=self.registry,
            jobs=config.jobs,
            group_retries=config.group_retries,
        )
        self.batcher = RequestBatcher(
            self.planner,
            workers=config.workers,
            max_queue=config.queue_max,
            max_batch=config.max_batch,
            batch_window=config.batch_window,
            registry=self.registry,
        )
        self.registry.get("repro_queue_depth").set_callback(
            lambda: float(self.batcher.queue_depth())
        )
        self.registry.get("repro_cache_hit_rate").set_callback(
            self.planner.cache_hit_rate
        )
        self._server: asyncio.AbstractServer | None = None
        self._jobs: dict[str, dict[str, Any]] = {}
        self._job_order: list[str] = []
        self._job_tasks: set[asyncio.Task] = set()
        self.port: int | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket (``port=0`` picks an ephemeral port) and serve."""
        await self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting, drain in-flight work, release every resource."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in tuple(self._job_tasks):
            task.cancel()
        if self._job_tasks:
            await asyncio.gather(*tuple(self._job_tasks), return_exceptions=True)
        await self.batcher.stop()
        self.planner.close()
        self.cache.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._handle_one_request(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
            asyncio.CancelledError,  # server shutdown with the socket open
        ):
            pass  # client went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, target, http_version = (
                request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            await self._respond(
                writer, 400, {"error": {"code": "bad-request", "message": "malformed request line"}},
                endpoint="unknown", keep_alive=False,
            )
            return False
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > MAX_BODY_BYTES:
            await self._respond(
                writer, 413,
                {"error": {"code": "too-large", "message": "invalid or oversized body"}},
                endpoint="unknown", keep_alive=False,
            )
            return False
        body = await reader.readexactly(length) if length else b""
        keep_alive = (
            headers.get("connection", "").lower() != "close"
            and http_version != "HTTP/1.0"
        )
        path = target.split("?", 1)[0]
        endpoint, status, payload, content = await self._route(method, path, body)
        await self._respond(
            writer, status, payload, endpoint=endpoint, keep_alive=keep_alive,
            raw=content,
        )
        return keep_alive

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[str, int, Any, str | None]:
        """Dispatch one request; returns (endpoint label, status, json, raw)."""
        start = time.perf_counter()
        endpoint = path if path in _ENDPOINT_LABELS else (
            "/v1/jobs" if path.startswith("/v1/jobs/") else "unknown"
        )
        try:
            if path == "/healthz" and method == "GET":
                return self._finish(endpoint, start, 200, {
                    "status": "ok", "version": __version__,
                })
            if path == "/metrics" and method == "GET":
                # Render after counting this scrape, so the scrape itself is
                # visible; latency is observed in _finish like every route.
                status, text = 200, None
                result = self._finish(endpoint, start, status, None)
                text = self.registry.render()
                return result[0], result[1], result[2], text
            if path == "/v1/solve" and method == "POST":
                payload = _parse_body(body)
                request = self._default_backend(parse_solve_request(payload))
                if payload.get("async") is True:
                    job = self._spawn_job(request)
                    return self._finish(endpoint, start, 202, job)
                result = await self._with_timeout(self.batcher.submit(request))
                return self._finish(endpoint, start, 200, result)
            if path == "/v1/evaluate" and method == "POST":
                request = self._default_backend(
                    parse_evaluate_request(_parse_body(body))
                )
                result = await self._with_timeout(
                    asyncio.get_running_loop().run_in_executor(
                        None, self.planner.evaluate, request
                    )
                )
                return self._finish(endpoint, start, 200, result)
            if path == "/v1/analyse" and method == "POST":
                request = self._default_backend(
                    parse_analyse_request(_parse_body(body))
                )
                result = await self._with_timeout(
                    asyncio.get_running_loop().run_in_executor(
                        None, self.planner.analyse, request
                    )
                )
                return self._finish(endpoint, start, 200, result)
            if path.startswith("/v1/jobs/") and method == "GET":
                job_id = path[len("/v1/jobs/"):]
                job = self._jobs.get(job_id)
                if job is None:
                    raise ServiceError(
                        f"unknown job {job_id!r}", status=404, code="not-found"
                    )
                return self._finish(endpoint, start, 200, dict(job))
            raise ServiceError(
                f"no route for {method} {path}", status=404, code="not-found"
            )
        except ServiceError as exc:
            return self._finish(endpoint, start, exc.status, exc.to_payload())
        except ValueError as exc:
            # The library's own rejection of a structurally valid but
            # semantically impossible request (mirrors the CLI's `error:`).
            error = ServiceError(str(exc), status=422, code="unprocessable")
            return self._finish(endpoint, start, error.status, error.to_payload())
        except Exception as exc:  # noqa: BLE001 - the daemon must not die
            error = ServiceError(
                f"internal error: {type(exc).__name__}: {exc}",
                status=500,
                code="internal",
            )
            return self._finish(endpoint, start, error.status, error.to_payload())

    def _default_backend(self, request):
        """Fill in the server's ``--backend`` for requests that omit one."""
        if request.backend is None and self.config.backend is not None:
            return replace(request, backend=self.config.backend)
        return request

    async def _with_timeout(self, awaitable: Any) -> Any:
        """Bound one request by ``--request-timeout`` (None = unbounded).

        A timeout is reported as a retryable 503: the computation budget was
        exhausted *now*, but the same request may well fit once the queue
        drains or the worker pool has healed.
        """
        timeout = self.config.request_timeout
        if timeout is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, timeout)
        except (asyncio.TimeoutError, TimeoutError) as exc:
            self.registry.get("repro_solve_timeouts_total").inc()
            raise ServiceError(
                f"request exceeded the {timeout:g}s budget",
                status=503,
                code="timeout",
            ) from exc

    def _finish(
        self, endpoint: str, start: float, status: int, payload: Any
    ) -> tuple[str, int, Any, str | None]:
        self.registry.get("repro_requests_total").inc(
            endpoint=endpoint, status=str(status)
        )
        self.registry.get("repro_request_latency_seconds").observe(
            time.perf_counter() - start, endpoint=endpoint
        )
        return endpoint, status, payload, None

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        *,
        endpoint: str,
        keep_alive: bool,
        raw: str | None = None,
    ) -> None:
        if raw is not None:
            content = raw.encode("utf-8")
            content_type = MetricsRegistry.CONTENT_TYPE
        else:
            content = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json; charset=utf-8"
        reason = _REASONS.get(status, "OK")
        # Every 503 here is transient by construction (full queue, crashed
        # pool mid-heal, per-request budget): tell well-behaved clients when
        # to come back instead of letting them hammer the recovering server.
        retry_after = "Retry-After: 1\r\n" if status == 503 else ""
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(content)}\r\n"
            f"{retry_after}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + content)
        await writer.drain()

    # ------------------------------------------------------------------
    # Async jobs
    # ------------------------------------------------------------------
    def _spawn_job(self, request) -> dict[str, Any]:
        job_id = uuid.uuid4().hex[:16]
        record: dict[str, Any] = {"job_id": job_id, "status": "queued"}
        self._jobs[job_id] = record
        self._job_order.append(job_id)
        while len(self._job_order) > MAX_FINISHED_JOBS:
            stale = self._job_order.pop(0)
            if self._jobs.get(stale, {}).get("status") in ("done", "error"):
                self._jobs.pop(stale, None)
            else:  # still running: keep it, retry eviction later
                self._job_order.append(stale)
                break
        task = asyncio.create_task(self._run_job(job_id, request))
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)
        return dict(record)

    async def _run_job(self, job_id: str, request) -> None:
        record = self._jobs[job_id]
        record["status"] = "running"
        try:
            result = await self.batcher.submit(request)
        except asyncio.CancelledError:
            record["status"] = "error"
            record["error"] = {"code": "shutting-down", "message": "server stopped"}
            raise
        except ServiceError as exc:
            record["status"] = "error"
            record["error"] = exc.to_payload()["error"]
        except Exception as exc:  # noqa: BLE001 - recorded, never raised
            record["status"] = "error"
            record["error"] = {"code": "unprocessable", "message": str(exc)}
        else:
            record["status"] = "done"
            record["result"] = result


_ENDPOINT_LABELS = frozenset(
    {"/healthz", "/metrics", "/v1/solve", "/v1/evaluate", "/v1/analyse"}
)

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _parse_body(body: bytes) -> Any:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"request body is not valid JSON: {exc}") from exc


async def _serve(config: ServiceConfig, ready: Callable[[ServiceServer], None] | None) -> None:
    server = ServiceServer(config)
    await server.start()
    if ready is not None:
        ready(server)
    # Explicit handlers instead of relying on KeyboardInterrupt: they give
    # SIGTERM the same graceful stop, and they still fire when the daemon
    # was started as a shell background job (where SIGINT is inherited as
    # ignored and no KeyboardInterrupt would ever be raised).
    loop = asyncio.get_running_loop()
    stop_requested = asyncio.Event()
    installed: list[int] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_requested.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-Unix loop: fall back to KeyboardInterrupt
    serving = asyncio.ensure_future(server.serve_forever())
    stopping = asyncio.ensure_future(stop_requested.wait())
    try:
        await asyncio.wait({serving, stopping}, return_when=asyncio.FIRST_COMPLETED)
    except asyncio.CancelledError:
        pass
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        for task in (serving, stopping):
            task.cancel()
        await asyncio.gather(serving, stopping, return_exceptions=True)
        await server.stop()


def run_server(
    config: ServiceConfig,
    *,
    announce: Callable[[str], None] | None = None,
) -> int:
    """Run the daemon until interrupted (the ``repro serve`` entry point)."""

    def ready(server: ServiceServer) -> None:
        if announce is not None:
            announce(f"http://{config.host}:{server.port}")

    try:
        asyncio.run(_serve(config, ready))
    except KeyboardInterrupt:
        pass
    return 0


class BackgroundServer:
    """A :class:`ServiceServer` on its own event-loop thread.

    For tests and the load benchmark: start, read ``url``, make blocking
    HTTP requests from any number of client threads, stop.  Usable as a
    context manager.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config if config is not None else ServiceConfig(port=0)
        self.server: ServiceServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        if self.server is None or self.server.port is None:
            raise RuntimeError("service failed to start within 30s")
        return self

    def _run(self) -> None:
        async def main() -> None:
            try:
                self.server = ServiceServer(self.config)
                await self.server.start()
            except BaseException as exc:  # noqa: BLE001 - surfaced to start()
                self._startup_error = exc
                self._ready.set()
                raise
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            try:
                await self.server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.server.stop()

        try:
            asyncio.run(main())
        except BaseException:  # noqa: BLE001 - thread must not propagate
            pass

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            # Cancelling every task unwinds serve_forever and runs stop().
            def shutdown() -> None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            loop.call_soon_threadsafe(shutdown)
            thread.join(timeout=30)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
