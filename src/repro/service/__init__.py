"""Checkpoint-planning service: async HTTP daemon over the campaign runtime.

``repro serve`` turns the one-shot solve / evaluate / analyse commands into a
long-running service:

* :mod:`repro.service.metrics` — a dependency-free Prometheus-style metric
  registry (counter / gauge / histogram, text exposition);
* :mod:`repro.service.schema` — the JSON request/response schema, built on
  the same :class:`~repro.experiments.scenarios.Scenario` /
  :class:`~repro.core.platform.PlatformSpec` descriptions the CLI and the
  campaign layer use, so a service request and the equivalent direct call
  price the same instance by construction;
* :mod:`repro.service.planner` — the bridge into the runtime: cache lookups
  through the existing content-addressed keys, single-flight deduplication
  of identical in-flight solves, and cross-request batching that lets
  same-family requests ride one :class:`~repro.core.sweep.SweepState` pass;
* :mod:`repro.service.batcher` — the asyncio request queue feeding the
  planner's worker threads;
* :mod:`repro.service.app` — the stdlib-only HTTP/1.1 daemon exposing
  ``POST /v1/solve``, ``POST /v1/evaluate``, ``POST /v1/analyse``,
  ``GET /v1/jobs/<id>``, ``GET /healthz`` and ``GET /metrics``.

Responses are bit-for-bit identical to the equivalent direct library calls;
cache keys are the unchanged :mod:`repro.runtime.keys` digests, so a cache
warmed by a campaign serves the daemon and vice versa.
"""

from .app import BackgroundServer, ServiceConfig, ServiceServer, run_server
from .batcher import RequestBatcher
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    build_fabric_registry,
    build_service_registry,
)
from .planner import ServicePlanner, SharedSweepScorer
from .schema import (
    ServiceError,
    parse_analyse_request,
    parse_evaluate_request,
    parse_solve_request,
)

__all__ = [
    "BackgroundServer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestBatcher",
    "ServiceConfig",
    "ServiceError",
    "ServicePlanner",
    "ServiceServer",
    "SharedSweepScorer",
    "build_fabric_registry",
    "build_service_registry",
    "parse_analyse_request",
    "parse_evaluate_request",
    "parse_solve_request",
    "run_server",
]
