"""Asyncio request queue feeding the planner's worker threads.

The batcher is the coalescing point of the service: solve requests enqueue
into one :class:`asyncio.Queue`, and a dispatcher drains the queue into
batches that it hands to :meth:`ServicePlanner.solve_batch
<repro.service.planner.ServicePlanner.solve_batch>` on a thread pool.  Two
properties make concurrent traffic cheap:

* the dispatcher acquires a worker slot *before* draining, so while every
  worker is busy the queue keeps accumulating — the next batch is as large
  (and as coalescible) as the backlog allows, rather than one request;
* an optional ``batch_window`` sleep lets an almost-simultaneous burst land
  in one batch even on an idle server (default 0: lowest latency).

Back-pressure is explicit: a full queue rejects with an ``overloaded``
:class:`~repro.service.schema.ServiceError` (HTTP 503) instead of buffering
without bound.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from .metrics import MetricsRegistry
from .planner import ServicePlanner
from .schema import ServiceError, SolveRequest

__all__ = ["RequestBatcher"]


class RequestBatcher:
    """Bridge between the asyncio server and the synchronous planner.

    Parameters
    ----------
    planner:
        The :class:`~repro.service.planner.ServicePlanner` computing batches.
    workers:
        Concurrent batches in flight (threads); more workers lower latency
        under load, fewer make batches larger.
    max_queue:
        Queue bound; submissions beyond it are rejected with HTTP 503.
    max_batch:
        Largest batch handed to the planner in one call.
    batch_window:
        Seconds to wait after the first request of a batch before draining,
        so near-simultaneous requests coalesce (0 disables the wait).
    registry:
        Optional metrics registry (solve latency is observed here because
        the batcher sees the full queue-wait plus compute span).
    """

    def __init__(
        self,
        planner: ServicePlanner,
        *,
        workers: int = 2,
        max_queue: int = 256,
        max_batch: int = 64,
        batch_window: float = 0.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if batch_window < 0:
            raise ValueError(f"batch_window must be >= 0, got {batch_window}")
        self.planner = planner
        self.registry = registry
        self.workers = int(workers)
        self.max_batch = int(max_batch)
        self.batch_window = float(batch_window)
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=int(max_queue))
        self._semaphore = asyncio.Semaphore(self.workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-solve"
        )
        self._dispatcher: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._closed = False

    # ------------------------------------------------------------------
    # Introspection (metrics callbacks)
    # ------------------------------------------------------------------
    def queue_depth(self) -> int:
        """Requests currently waiting in the queue (the gauge callback)."""
        return self._queue.qsize()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the dispatcher task (idempotent)."""
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-batch-dispatcher"
            )

    async def stop(self) -> None:
        """Drain in-flight batches, then stop the dispatcher and threads."""
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._batch_tasks:
            await asyncio.gather(*tuple(self._batch_tasks), return_exceptions=True)
        # Waiters still queued (never picked up) must not hang forever.
        while not self._queue.empty():
            _, future, _ = self._queue.get_nowait()
            if not future.done():
                future.set_exception(
                    ServiceError(
                        "server is shutting down", status=503, code="shutting-down"
                    )
                )
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    async def submit(self, request: SolveRequest) -> dict:
        """Enqueue one solve request and await its response payload.

        Raises the per-request exception the planner reported (a
        :class:`ServiceError` for bad requests, the library's ``ValueError``
        for computation-level rejections).
        """
        if self._closed:
            raise ServiceError(
                "server is shutting down", status=503, code="shutting-down"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self._queue.put_nowait((request, future, time.perf_counter()))
        except asyncio.QueueFull:
            raise ServiceError(
                "solve queue is full, retry later", status=503, code="overloaded"
            ) from None
        return await future

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        while True:
            first = await self._queue.get()
            # Waiting for a worker slot *before* draining is what turns a
            # backlog into large batches: everything arriving while all
            # workers are busy joins the next batch.
            await self._semaphore.acquire()
            if self.batch_window > 0:
                await asyncio.sleep(self.batch_window)
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(
        self, batch: Sequence[tuple[SolveRequest, asyncio.Future, float]]
    ) -> None:
        loop = asyncio.get_running_loop()
        requests = [request for request, _, _ in batch]
        try:
            results: list[Any] = await loop.run_in_executor(
                self._executor, self.planner.solve_batch, requests
            )
        except Exception as exc:  # noqa: BLE001 - delivered to every waiter
            results = [exc] * len(batch)
        finally:
            self._semaphore.release()
        now = time.perf_counter()
        histogram = (
            self.registry.get("repro_solve_latency_seconds")
            if self.registry is not None
            else None
        )
        for (request, future, enqueued), result in zip(batch, results):
            if histogram is not None:
                histogram.observe(now - enqueued)
            if future.done():  # client went away mid-computation
                continue
            if isinstance(result, BaseException):
                future.set_exception(result)
            else:
                future.set_result(result)
