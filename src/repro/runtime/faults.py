"""Deterministic fault injection for chaos testing.

The crash-safety machinery of this package (journaled resume, worker
supervision, cache-corruption recovery, service self-healing) is only
trustworthy if its failure paths are exercised deterministically.  This
module provides that substrate: named *fault points* threaded through the
runtime, armed from the environment so that faults reach worker processes
(which inherit ``os.environ``) and subprocess-level CI gates alike.

Arming syntax (``REPRO_FAULTS``)::

    spec    := clause (";" clause)*
    clause  := site (":" param ("," param)*)?
    param   := key "=" value

Reserved parameter keys:

``raise=<ExceptionName>`` / ``exit=<code>`` / ``sleep=<seconds>``
    The action to perform when the clause fires (at most one per clause).
    Without an action the *site's* default applies — e.g. ``worker_crash``
    exits the process with code 137 (SIGKILL-alike), ``cache_read`` raises
    :class:`sqlite3.DatabaseError`, ``chunk_timeout`` stalls the worker.
``after=N``
    Skip the first ``N`` matching invocations (counted per process), then
    start firing.  This is how the CI kill-resume gate murders a campaign
    "at ~50%": ``campaign_unit:after=4``.
``times=N``
    Fire at most ``N`` times per process (default: unlimited).

Every other ``key=value`` pair is a *context match*: the clause only fires
when the fault point was invoked with a context value whose ``str()`` equals
``value`` — e.g. ``worker_crash:unit=3`` targets the worker iteration of
unit index 3 only, and ``worker_crash:unit=3,attempt=1`` additionally spares
the retry, modelling a transient crash.

Fault points registered across the tree:

===================  =================================================  ==================
site                 where                                              default action
===================  =================================================  ==================
``worker_crash``     per unit in :func:`~repro.runtime.parallel         ``exit=137``
                     .parallel_map` workers (and the serial loop)
``chunk_timeout``    same place, before the unit runs                   ``sleep=30``
``cache_open``       :class:`~repro.runtime.cache.DiskCache` open       ``raise=DatabaseError``
``cache_read``       every :meth:`DiskCache.get`                        ``raise=DatabaseError``
``campaign_unit``    parent-side, after a completed unit is             ``exit=137``
                     journaled/cached in ``CampaignRunner._run_cached``
``service_group``    :func:`repro.service.planner._solve_group`         ``raise=RuntimeError``
``lease_grant``      :meth:`repro.runtime.leases.LeaseQueue.grant`,     ``raise=OSError``
                     after a shard is selected, before it is leased
``lease_renew``      :meth:`repro.runtime.leases.LeaseQueue.renew`      ``raise=OSError``
``worker_heartbeat`` the fabric worker's heartbeat loop, before each    ``sleep=30``
                     renewal is sent (models a stalled worker)
``cache_net_send``   :class:`repro.runtime.cachenet.CacheNetClient`,    ``raise=OSError``
                     before a request is written to the socket
``cache_net_recv``   same client, before the response is read           ``raise=OSError``
``fabric_shard``     fabric worker, before a leased shard's campaign    ``raise=RuntimeError``
                     runs (models a shard that poisons its worker)
===================  =================================================  ==================

The registry re-parses lazily whenever the environment string changes, so
tests can simply ``monkeypatch.setenv("REPRO_FAULTS", ...)`` — no explicit
reset call needed — and forked workers pick up whatever was armed at fork
time.  ``after``/``times`` counters are per-process and reset whenever the
spec string changes.
"""

from __future__ import annotations

import os
import sqlite3
import time
import warnings
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "FAULTS_ENV",
    "KNOWN_FAULT_SITES",
    "FaultClause",
    "active_faults",
    "fault_fired",
    "fault_point",
    "parse_faults",
]

FAULTS_ENV = "REPRO_FAULTS"

#: Exceptions a clause may raise by name.  A deliberate allow-list: fault
#: specs come from the environment, so resolving arbitrary dotted paths
#: would be an eval-shaped hole.
_EXCEPTIONS: dict[str, type[BaseException]] = {
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "OSError": OSError,
    "TimeoutError": TimeoutError,
    "KeyboardInterrupt": KeyboardInterrupt,
    "DatabaseError": sqlite3.DatabaseError,
    "BrokenProcessPool": BrokenProcessPool,
}

_ACTION_KEYS = ("raise", "exit", "sleep")

#: The closed fault-site namespace.  Clauses are matched by string equality,
#: so a typo'd site arms nothing — cross-checked three ways by reprolint
#: RL006 (every ``fault_point`` call site, every ``REPRO_FAULTS`` string in
#: tests/CI, and this registry must agree), and guarded at runtime by
#: :func:`parse_faults`, which warns on unknown sites.  ``demo`` is reserved
#: for the fault-injection test suite's synthetic fault point.
KNOWN_FAULT_SITES = frozenset(
    {
        "worker_crash",
        "chunk_timeout",
        "cache_open",
        "cache_read",
        "campaign_unit",
        "service_group",
        "lease_grant",
        "lease_renew",
        "worker_heartbeat",
        "cache_net_send",
        "cache_net_recv",
        "fabric_shard",
        "demo",
    }
)


@dataclass
class FaultClause:
    """One armed clause of a fault spec (see module docstring for syntax)."""

    site: str
    action: tuple[str, str] | None = None
    after: int = 0
    times: int | None = None
    match: dict[str, str] = field(default_factory=dict)
    calls: int = 0  # matching invocations seen (drives ``after``)
    fired: int = 0  # actions performed (drives ``times``)


def _parse_action(key: str, value: str, clause_text: str) -> tuple[str, str]:
    if key == "raise":
        if value not in _EXCEPTIONS:
            names = ", ".join(sorted(_EXCEPTIONS))
            raise ValueError(
                f"unknown exception {value!r} in fault clause {clause_text!r}; "
                f"expected one of: {names}"
            )
    elif key == "exit":
        int(value)
    elif key == "sleep":
        float(value)
    return (key, value)


def parse_faults(text: str) -> list[FaultClause]:
    """Parse a ``REPRO_FAULTS`` spec string into clauses (fails loudly)."""
    clauses: list[FaultClause] = []
    for raw in text.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        site, _, params = raw.partition(":")
        site = site.strip()
        if not site:
            raise ValueError(f"fault clause {raw!r} has no site name")
        if site not in KNOWN_FAULT_SITES:
            # Warn rather than raise: an operator arming a site that this
            # version does not carry should see the mistake, but a stale
            # spec in the environment must not brick unrelated commands.
            warnings.warn(
                f"REPRO_FAULTS names unknown fault site {site!r}; known "
                f"sites: {', '.join(sorted(KNOWN_FAULT_SITES))}",
                RuntimeWarning,
                stacklevel=2,
            )
        clause = FaultClause(site=site)
        for pair in params.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not key or not value:
                raise ValueError(
                    f"malformed parameter {pair!r} in fault clause {raw!r}; "
                    "expected key=value"
                )
            if key in _ACTION_KEYS:
                if clause.action is not None:
                    raise ValueError(f"fault clause {raw!r} has more than one action")
                clause.action = _parse_action(key, value, raw)
            elif key == "after":
                clause.after = int(value)
            elif key == "times":
                clause.times = int(value)
            else:
                clause.match[key] = value
        clauses.append(clause)
    return clauses


class _FaultRegistry:
    """Process-global registry, re-synced from the environment lazily."""

    def __init__(self) -> None:
        self._text: str | None = None
        self._clauses: list[FaultClause] = []

    def sync(self) -> list[FaultClause]:
        text = os.environ.get(FAULTS_ENV, "")
        if text != self._text:
            self._clauses = parse_faults(text)
            self._text = text
        return self._clauses

    def fired(self, site: str) -> int:
        """Total actions performed at ``site`` so far (test introspection)."""
        return sum(clause.fired for clause in self.sync() if clause.site == site)


_REGISTRY = _FaultRegistry()


def _perform(action: tuple[str, str], site: str, context: dict) -> None:
    kind, value = action
    detail = ", ".join(f"{k}={v}" for k, v in sorted(context.items()))
    if kind == "raise":
        raise _EXCEPTIONS[value](f"injected fault at {site} ({detail})")
    if kind == "exit":
        os._exit(int(value))
    time.sleep(float(value))  # kind == "sleep"


def fault_point(site: str, default: str | None = None, **context: object) -> None:
    """Declare a named injection point; a no-op unless a clause targets it.

    ``default`` is the site's default action (``"exit=137"`` style), applied
    when a matching clause names no action of its own.  ``context`` values
    are compared as strings against the clause's match parameters.
    """
    if not os.environ.get(FAULTS_ENV) and not _REGISTRY._clauses:
        return  # hot path: nothing armed, nothing to clear
    for clause in _REGISTRY.sync():
        if clause.site != site:
            continue
        if any(str(context.get(key)) != value for key, value in clause.match.items()):
            continue
        clause.calls += 1
        if clause.calls <= clause.after:
            continue
        if clause.times is not None and clause.fired >= clause.times:
            continue
        action = clause.action
        if action is None:
            if default is None:
                continue
            key, _, value = default.partition("=")
            action = _parse_action(key, value, f"{site} default {default!r}")
        clause.fired += 1
        _perform(action, site, context)


def fault_fired(site: str) -> int:
    """How many times any clause fired at ``site`` in this process."""
    return _REGISTRY.fired(site)


@contextmanager
def active_faults(spec: str) -> Iterator[None]:
    """Arm ``spec`` for the duration of a ``with`` block (test helper)."""
    previous = os.environ.get(FAULTS_ENV)
    os.environ[FAULTS_ENV] = spec
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(FAULTS_ENV, None)
        else:
            os.environ[FAULTS_ENV] = previous
