"""Coordinator-side lease queue for distributed campaign shards.

The fabric coordinator partitions a campaign into its ``N`` deterministic
shards (the same ``k/N`` partitions ``repro campaign --shard`` runs, see
:func:`~repro.experiments.scenarios.shard_scenarios`) and hands them to
workers as *TTL leases*:

* :meth:`LeaseQueue.grant` leases the lowest pending shard to a worker for
  ``ttl`` seconds;
* :meth:`LeaseQueue.renew` extends the deadline — the worker's heartbeat —
  so a slow-but-alive worker keeps its shard indefinitely;
* :meth:`LeaseQueue.expire` sweeps overdue leases: a dead or stalled worker
  (SIGKILL, network partition, wedged heartbeat thread) silently returns
  its shard to the pending pool for reassignment;
* a shard that keeps failing is *quarantined* after ``max_attempts`` grants
  (:data:`POISON`), mirroring the bounded-attempt quarantine of
  :class:`~repro.runtime.parallel.WorkerFailure` — one poisonous shard must
  not starve the whole campaign.

Completion is idempotent and owner-agnostic: shards are deterministic, so
when an expired worker turns out to be alive after all and finishes its
shard, the late result is byte-identical to the reassigned copy's and is
accepted — first completion wins, later ones are acknowledged and dropped.

The queue is a pure in-memory state machine behind one lock, with an
injectable clock; the network front-end lives in
:mod:`repro.experiments.fabric`, and the fault sites ``lease_grant`` /
``lease_renew`` make the grant/renew edges chaos-testable.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from .faults import fault_point

__all__ = [
    "PENDING",
    "LEASED",
    "DONE",
    "POISON",
    "ShardLease",
    "LeaseQueue",
]

#: Lease states.  ``pending -> leased -> done`` is the happy path;
#: ``leased -> pending`` on expiry or failure (reassignment) and
#: ``leased -> poison`` once the grant budget is exhausted.
PENDING = "pending"
LEASED = "leased"
DONE = "done"
POISON = "poison"


@dataclass
class ShardLease:
    """Book-keeping of one shard's lease lifecycle."""

    shard: int  # 1-based, as in "k/N"
    n_shards: int
    state: str = PENDING
    owner: str | None = None
    deadline: float = 0.0  # clock() time the current lease expires
    attempts: int = 0  # grants so far (bounds reassignment)
    last_error: dict[str, Any] | None = None

    def describe(self) -> str:
        """One-line, quarantine-report-shaped description of the shard."""
        error = self.last_error or {}
        cause_type = error.get("type", "expired")
        cause_message = error.get(
            "message", "lease expired without completion (worker dead or stalled)"
        )
        return (
            f"shard {self.shard}/{self.n_shards} failed after "
            f"{self.attempts} attempt(s): {cause_type}: {cause_message}"
        )


class LeaseQueue:
    """Thread-safe TTL-lease work queue over the shards ``1..n_shards``.

    Parameters
    ----------
    n_shards:
        Number of shards in the partition (``N`` of ``k/N``).
    ttl:
        Lease duration in seconds; a worker must renew within it.
    max_attempts:
        Grants a shard gets before it is poisoned.
    clock:
        Injectable monotonic clock (tests drive expiry without sleeping).
    """

    def __init__(
        self,
        n_shards: int,
        *,
        ttl: float = 15.0,
        max_attempts: int = 3,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.ttl = float(ttl)
        self.max_attempts = int(max_attempts)
        self._clock: Callable[[], float] = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._shards: dict[int, ShardLease] = {
            k: ShardLease(shard=k, n_shards=n_shards) for k in range(1, n_shards + 1)
        }
        # Lifetime counters (exposed through the fabric metrics registry).
        self.granted = 0
        self.renewals = 0
        self.expirations = 0
        self.reassignments = 0
        self.completions = 0

    # ------------------------------------------------------------------
    # Worker-facing transitions
    # ------------------------------------------------------------------
    def grant(self, worker: str) -> ShardLease | None:
        """Lease the lowest pending shard to ``worker``; ``None`` when empty.

        ``None`` means *nothing grantable right now* — the worker should
        poll again (a leased shard may yet expire) or stop once
        :attr:`finished` says the campaign is over.
        """
        with self._lock:
            self._expire_locked()
            for lease in self._shards.values():
                if lease.state != PENDING:
                    continue
                # Before committing the grant: a fault here models the
                # coordinator-side failure of the grant edge, and must leave
                # the shard pending for the next request.
                fault_point(
                    "lease_grant",
                    default="raise=OSError",
                    worker=worker,
                    shard=lease.shard,
                )
                lease.state = LEASED
                lease.owner = worker
                lease.attempts += 1
                lease.deadline = self._clock() + self.ttl
                self.granted += 1
                return lease
            return None

    def renew(self, worker: str, shard: int) -> bool:
        """Extend ``worker``'s lease on ``shard``; False when not theirs.

        A renewal for a shard that expired and was reassigned is refused —
        the slow worker learns it lost the shard and abandons it (its late
        completion would still be accepted, see :meth:`complete`).
        """
        with self._lock:
            fault_point(
                "lease_renew", default="raise=OSError", worker=worker, shard=shard
            )
            lease = self._shards.get(shard)
            if lease is None or lease.state != LEASED or lease.owner != worker:
                return False
            lease.deadline = self._clock() + self.ttl
            self.renewals += 1
            return True

    def complete(self, worker: str, shard: int) -> bool:
        """Mark ``shard`` done; True when this call transitioned it.

        Owner-agnostic and idempotent: shards are deterministic, so a late
        completion from an expired owner is as good as the current owner's.
        A poisoned shard completing late is *promoted* back to done — a
        result in hand beats a quarantine report.
        """
        with self._lock:
            lease = self._shards.get(shard)
            if lease is None:
                raise ValueError(f"unknown shard {shard}")
            if lease.state == DONE:
                return False
            lease.state = DONE
            lease.owner = worker
            lease.last_error = None
            self.completions += 1
            return True

    def fail(self, worker: str, shard: int, error: dict[str, Any] | None = None) -> str:
        """Report a shard failure; returns the shard's new state.

        The shard returns to the pending pool (reassignment) until its
        grant budget is exhausted, then turns :data:`POISON`.
        """
        with self._lock:
            lease = self._shards.get(shard)
            if lease is None:
                raise ValueError(f"unknown shard {shard}")
            if lease.state in (DONE, POISON):
                return lease.state
            if error is not None:
                lease.last_error = dict(error)
            return self._release_locked(lease)

    def mark_done(self, shard: int) -> None:
        """Pre-mark a shard done (journal replay on coordinator resume)."""
        with self._lock:
            lease = self._shards.get(shard)
            if lease is None:
                raise ValueError(f"unknown shard {shard}")
            lease.state = DONE
            lease.owner = None
            lease.last_error = None

    # ------------------------------------------------------------------
    # Coordinator-side sweeps and introspection
    # ------------------------------------------------------------------
    def expire(self) -> list[int]:
        """Sweep overdue leases; returns the shard numbers that expired."""
        with self._lock:
            return self._expire_locked()

    def _expire_locked(self) -> list[int]:
        now = self._clock()
        expired: list[int] = []
        for lease in self._shards.values():
            if lease.state == LEASED and lease.deadline <= now:
                expired.append(lease.shard)
                self.expirations += 1
                self._release_locked(lease)
        return expired

    def _release_locked(self, lease: ShardLease) -> str:
        if lease.attempts >= self.max_attempts:
            lease.state = POISON
        else:
            lease.state = PENDING
            self.reassignments += 1
        lease.owner = None
        lease.deadline = 0.0
        return lease.state

    @property
    def finished(self) -> bool:
        """True when every shard is done or poisoned (nothing left to run)."""
        with self._lock:
            return all(
                lease.state in (DONE, POISON) for lease in self._shards.values()
            )

    @property
    def active_leases(self) -> int:
        with self._lock:
            return sum(1 for lease in self._shards.values() if lease.state == LEASED)

    @property
    def done(self) -> list[int]:
        with self._lock:
            return [k for k, lease in self._shards.items() if lease.state == DONE]

    @property
    def poisoned(self) -> list[ShardLease]:
        """The quarantined shards, for the coordinator's failure report."""
        with self._lock:
            return [
                ShardLease(**vars(lease))
                for lease in self._shards.values()
                if lease.state == POISON
            ]

    def snapshot(self) -> dict[int, tuple[str, str | None, int]]:
        """``shard -> (state, owner, attempts)`` for logs and tests."""
        with self._lock:
            return {
                k: (lease.state, lease.owner, lease.attempts)
                for k, lease in self._shards.items()
            }
