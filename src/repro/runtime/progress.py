"""Lightweight progress and throughput reporting for long sweeps.

A progress reporter is any object with ``start(total)``, ``update(done, info)``
and ``finish()``.  Two implementations are provided:

* :class:`NullProgress` — the default, does nothing (tests and library use);
* :class:`ConsoleProgress` — a single carriage-return-refreshed line with
  unit counts, throughput and cache-hit information, rate-limited so that
  even a 10k-unit sweep costs nothing noticeable.

The runtime reports one ``update`` per completed work unit (cache hits
included, so a fully warm sweep still shows its progress honestly).
"""

from __future__ import annotations

import sys
import time
from typing import Any, TextIO

__all__ = ["NullProgress", "ConsoleProgress", "coerce_progress"]


class NullProgress:
    """Progress sink that ignores every event."""

    def start(self, total: int) -> None:  # noqa: D102 - protocol no-op
        pass

    def update(self, done: int, info: str = "") -> None:  # noqa: D102
        pass

    def finish(self) -> None:  # noqa: D102
        pass


class ConsoleProgress:
    """One-line console progress with throughput (units/second).

    Parameters
    ----------
    stream:
        Target stream; defaults to stderr so that piped stdout reports stay
        machine-readable.
    min_interval:
        Minimum seconds between refreshes (the final state is always shown).
    """

    def __init__(self, *, stream: TextIO | None = None, min_interval: float = 0.2) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self._total = 0
        self._done = 0
        self._started = 0.0
        self._last_render = 0.0
        self._last_info = ""
        self._max_width = 0

    def start(self, total: int) -> None:
        self._total = int(total)
        self._done = 0
        self._started = time.monotonic()
        self._last_render = 0.0
        self._last_info = ""
        self._max_width = 0
        self._render(info="", force=True)

    def update(self, done: int, info: str = "") -> None:
        self._done = int(done)
        if info:
            self._last_info = info
        self._render(info=info, force=self._done >= self._total)

    def finish(self) -> None:
        # Keep the most recent info (e.g. cache hit/miss counts) on the
        # line that stays in the terminal.
        self._render(info=self._last_info, force=True)
        self.stream.write("\n")
        self.stream.flush()

    def _render(self, *, info: str, force: bool) -> None:
        now = time.monotonic()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        elapsed = max(now - self._started, 1e-9)
        rate = self._done / elapsed
        line = f"[{self._done}/{self._total}] {rate:.1f} units/s"
        if info:
            line += f" ({info})"
        # Pad to the widest line rendered so far so a shorter refresh fully
        # overwrites the previous one instead of leaving trailing garbage.
        self._max_width = max(self._max_width, len(line))
        self.stream.write("\r" + line.ljust(self._max_width))
        self.stream.flush()


def coerce_progress(progress: Any) -> Any:
    """Accept ``None`` (silent), ``True`` (console) or a reporter object."""
    if progress is None or progress is False:
        return NullProgress()
    if progress is True:
        return ConsoleProgress()
    return progress
