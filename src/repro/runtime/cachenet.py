"""Remote result cache: a line-protocol client/server over the sqlite store.

A fabric of worker processes wants one *shared* result cache so that a unit
paid for by any worker is free for every other one.  sqlite files do not
span hosts, so this module puts the smallest possible network layer in
front of :class:`~repro.runtime.cache.DiskCache`: JSON Lines over TCP,
stdlib ``socket``/``socketserver`` only.

Protocol (one JSON object per line, UTF-8)::

    -> {"op": "ping"}                      <- {"ok": true, "server": "repro-cachenet", "v": 1}
    -> {"op": "get", "key": K}             <- {"ok": true, "hit": true, "value": V}
    -> {"op": "put", "key": K, "value": V} <- {"ok": true}
    -> {"op": "stats"}                     <- {"ok": true, "entries": N}

Keys are the content-addressed digests of :mod:`repro.runtime.keys`,
unchanged — a local cache file and the remote store are interchangeable,
which is what makes degradation and back-fill safe.

Robustness contract (the reason this module exists):

* every client operation has a per-op socket timeout;
* transient errors are retried with the shared bounded-exponential-backoff
  :class:`~repro.runtime.retry.RetryPolicy` (deterministic jitter);
* :class:`FallbackResultCache` wraps the client behind a circuit breaker —
  when the remote is unreachable the worker silently degrades to its local
  :class:`~repro.runtime.cache.ResultCache`, keeps note of what it stored
  locally, and back-fills the remote store once a half-open probe succeeds.

Fault sites ``cache_net_send`` / ``cache_net_recv`` (armed via
``REPRO_FAULTS``) model a network edge dying mid-request on either leg.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time
from typing import Any, Callable

from .cache import CacheStats, DiskCache, ResultCache
from .faults import fault_point
from .retry import RetryPolicy

__all__ = [
    "PROTOCOL_VERSION",
    "CacheNetError",
    "CacheNetServer",
    "CacheNetClient",
    "CircuitBreaker",
    "FallbackResultCache",
    "parse_address",
]

PROTOCOL_VERSION = 1

#: Upper bound on one protocol line (a campaign row payload is a few KB; a
#: whole shard's CSV rides the fabric control plane, not this one).
MAX_LINE_BYTES = 16 * 1024 * 1024


class CacheNetError(OSError):
    """A cache-net operation failed for good (after retries)."""


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``host:port`` endpoint string."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"endpoint must look like 'host:port', got {text!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"endpoint port must be an integer, got {text!r}") from None


def write_message(wfile: Any, payload: dict[str, Any]) -> None:
    """Write one JSON-line message to a file-like socket writer."""
    wfile.write(json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n")
    wfile.flush()


def read_message(rfile: Any) -> dict[str, Any] | None:
    """Read one JSON-line message; ``None`` on a cleanly closed stream."""
    line = rfile.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise CacheNetError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise CacheNetError(f"malformed protocol line: {exc}") from exc
    if not isinstance(message, dict):
        raise CacheNetError("protocol line is not a JSON object")
    return message


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class _CacheRequestHandler(socketserver.StreamRequestHandler):
    """One connection: serve request lines until the client hangs up."""

    server: "_CacheTCPServer"

    def handle(self) -> None:
        while True:
            try:
                request = read_message(self.rfile)
            except (OSError, CacheNetError):
                return
            if request is None:
                return
            try:
                response = self.server.dispatch(request)
            except Exception as exc:  # a bad request must not kill the server
                response = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            try:
                write_message(self.wfile, response)
            except OSError:
                return


class _CacheTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], cache: DiskCache, requests: "Callable[[str], None]"
    ) -> None:
        super().__init__(address, _CacheRequestHandler)
        self.cache = cache
        self._count = requests
        self._conn_lock = threading.Lock()
        self._connections: set[socket.socket] = set()

    # Track live connections so stop() can sever them: shutting down the
    # listener alone would leave connected clients working forever, which is
    # not what a crashed cache server looks like.
    def process_request(self, request: Any, client_address: Any) -> None:
        with self._conn_lock:
            self._connections.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request: Any) -> None:
        with self._conn_lock:
            self._connections.discard(request)
        super().shutdown_request(request)

    def close_connections(self) -> None:
        with self._conn_lock:
            connections = list(self._connections)
        for sock in connections:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        self._count(str(op))
        if op == "ping":
            return {"ok": True, "server": "repro-cachenet", "v": PROTOCOL_VERSION}
        if op == "get":
            key = request.get("key")
            if not isinstance(key, str):
                return {"ok": False, "error": "get requires a string 'key'"}
            value = self.cache.get(key)
            if value is None:
                return {"ok": True, "hit": False}
            return {"ok": True, "hit": True, "value": value}
        if op == "put":
            key = request.get("key")
            if not isinstance(key, str) or "value" not in request:
                return {"ok": False, "error": "put requires a string 'key' and a 'value'"}
            self.cache.put(key, request["value"])
            return {"ok": True}
        if op == "stats":
            return {"ok": True, "entries": len(self.cache)}
        return {"ok": False, "error": f"unknown op {op!r}"}


class CacheNetServer:
    """Serve one :class:`DiskCache` over TCP (thread-per-connection).

    ``port=0`` binds an ephemeral port; read :attr:`address` after
    construction.  :meth:`serve_forever` blocks (the CLI path);
    :meth:`start` serves from a daemon thread (tests and embedding).
    """

    def __init__(
        self, cache: DiskCache, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.cache = cache
        self.requests_served = 0
        self._lock = threading.Lock()
        self._server = _CacheTCPServer((host, port), cache, self._count_request)
        self._thread: threading.Thread | None = None

    def _count_request(self, op: str) -> None:
        with self._lock:
            self.requests_served += 1

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` endpoint."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def endpoint(self) -> str:
        """The bound endpoint as a ``host:port`` string."""
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "CacheNetServer":
        """Serve from a background daemon thread; returns self."""
        thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-cachenet",
            daemon=True,
        )
        thread.start()
        self._thread = thread
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop`."""
        self._server.serve_forever()

    def stop(self) -> None:
        """Stop serving, sever live connections, close the listener.

        The backing cache stays open (the caller owns it).  Severing the
        connections matters: a stopped server must look like a crashed one
        to its clients, or degradation would never be exercised.
        """
        self._server.shutdown()
        self._server.close_connections()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# ----------------------------------------------------------------------
# Client
# ----------------------------------------------------------------------
class CacheNetClient:
    """Line-protocol client with per-op timeouts and bounded retries.

    Transient transport failures (connect refused, timeout, torn line) are
    retried ``retry.max_attempts`` times with the policy's backoff; the
    connection is torn down and rebuilt between attempts.  When every
    attempt fails the operation raises :class:`CacheNetError` — callers that
    must survive that wrap this client in :class:`FallbackResultCache`.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        timeout: float = 5.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.address = parse_address(address) if isinstance(address, str) else address
        self.timeout = float(timeout)
        self.retry = retry if retry is not None else RetryPolicy(
            max_attempts=3, base_delay=0.05, max_delay=2.0, jitter=0.5
        )
        self.retries = 0  # transport retries performed (for metrics)
        self._sock: socket.socket | None = None
        self._rfile: Any = None
        self._lock = threading.Lock()

    # -- transport -----------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(self.address, timeout=self.timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
            self._rfile = sock.makefile("rb")
        return self._sock

    def _disconnect(self) -> None:
        if self._rfile is not None:
            try:
                self._rfile.close()
            except OSError:
                pass
            self._rfile = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _request_once(self, payload: dict[str, Any]) -> dict[str, Any]:
        sock = self._connect()
        fault_point(
            "cache_net_send", default="raise=OSError", op=str(payload.get("op"))
        )
        sock.sendall(json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n")
        fault_point(
            "cache_net_recv", default="raise=OSError", op=str(payload.get("op"))
        )
        response = read_message(self._rfile)
        if response is None:
            raise CacheNetError("cache server closed the connection mid-request")
        return response

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """Send one request, retrying transport failures per the policy."""
        with self._lock:
            failures = 0
            while True:
                try:
                    response = self._request_once(payload)
                except (OSError, TimeoutError) as exc:
                    self._disconnect()
                    failures += 1
                    if failures >= self.retry.max_attempts:
                        raise CacheNetError(
                            f"cache-net {payload.get('op')} to "
                            f"{self.address[0]}:{self.address[1]} failed after "
                            f"{failures} attempt(s): {type(exc).__name__}: {exc}"
                        ) from exc
                    self.retries += 1
                    self.retry.sleep(failures)
                    continue
                if not response.get("ok"):
                    raise CacheNetError(
                        f"cache server rejected {payload.get('op')}: "
                        f"{response.get('error', 'unknown error')}"
                    )
                return response

    # -- operations ----------------------------------------------------
    def ping(self) -> dict[str, Any]:
        """Round-trip a ping; returns the server's identification."""
        return self.request({"op": "ping"})

    def get(self, key: str) -> Any | None:
        """Remote lookup; ``None`` on a miss."""
        response = self.request({"op": "get", "key": key})
        return response.get("value") if response.get("hit") else None

    def put(self, key: str, value: Any) -> None:
        """Store a JSON-serializable value remotely."""
        self.request({"op": "put", "key": key, "value": value})

    def stats(self) -> dict[str, Any]:
        """Remote entry count."""
        return self.request({"op": "stats"})

    def close(self) -> None:
        with self._lock:
            self._disconnect()

    def __enter__(self) -> "CacheNetClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Circuit breaker + degradation facade
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Classic closed / open / half-open breaker around a flaky dependency.

    ``failure_threshold`` consecutive failures open the circuit; while open,
    every call is refused without touching the dependency.  After
    ``reset_timeout`` seconds one probe call is let through (half-open): its
    success closes the circuit, its failure re-opens it for another window.
    The clock is injectable so tests never sleep.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 5.0,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self._clock: Callable[[], float] = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.opens = 0  # times the circuit opened (for metrics)

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allows(self) -> bool:
        """May a call proceed right now?  (Half-open admits one probe.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._state = self.HALF_OPEN
                    return True  # this caller is the probe
                return False
            return False  # half-open: a probe is already in flight

    def record_success(self) -> bool:
        """Note a successful call; returns True when it *closed* the circuit."""
        with self._lock:
            reconnected = self._state != self.CLOSED
            self._state = self.CLOSED
            self._consecutive_failures = 0
            return reconnected

    def record_failure(self) -> None:
        """Note a failed call; opens the circuit at the threshold."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == self.HALF_OPEN or (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self.opens += 1


class FallbackResultCache:
    """A :class:`ResultCache`-shaped cache that degrades from remote to local.

    Reads check the local layers first (free), then the remote store —
    remote hits are promoted locally.  Writes always land locally; the
    remote write is attempted when the breaker allows and *queued for
    back-fill* when it does not, so a cache-server outage costs nothing but
    sharing.  When a half-open probe succeeds, every queued key is replayed
    from the local store to the remote one (keys are content-addressed and
    identical on both sides, so back-fill can never alias).
    """

    def __init__(
        self,
        client: CacheNetClient,
        local: ResultCache,
        *,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.client = client
        self.local = local
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._backlog: list[str] = []
        self._backlog_lock = threading.Lock()
        self.remote_hits = 0
        self.remote_misses = 0
        self.remote_errors = 0
        self.backfilled = 0

    # -- ResultCache interface -----------------------------------------
    @property
    def stats(self) -> CacheStats:
        """Session stats of the local layer (what reports summarize)."""
        return self.local.stats

    @property
    def degraded(self) -> bool:
        """True while the breaker is holding remote traffic off."""
        return self.breaker.state != CircuitBreaker.CLOSED

    def get(self, key: str) -> Any | None:
        value = self.local.get(key)
        if value is not None:
            return value
        if not self.breaker.allows():
            return None
        try:
            value = self.client.get(key)
        except CacheNetError:
            self.remote_errors += 1
            self.breaker.record_failure()
            return None
        self._note_success()
        if value is None:
            self.remote_misses += 1
            return None
        self.remote_hits += 1
        self.local.put(key, value)
        return value

    def put(self, key: str, value: Any) -> None:
        self.local.put(key, value)
        if not self.breaker.allows():
            self._enqueue(key)
            return
        try:
            self.client.put(key, value)
        except CacheNetError:
            self.remote_errors += 1
            self.breaker.record_failure()
            self._enqueue(key)
            return
        self._note_success()

    def close(self) -> None:
        """Flush what the outage left behind (best effort), then close."""
        if self.breaker.allows():
            try:
                self.client.ping()
            except CacheNetError:
                self.breaker.record_failure()
            else:
                self._note_success()
        self.client.close()
        self.local.close()

    def __enter__(self) -> "FallbackResultCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- degradation bookkeeping ---------------------------------------
    def _enqueue(self, key: str) -> None:
        with self._backlog_lock:
            if key not in self._backlog:
                self._backlog.append(key)

    @property
    def backlog(self) -> int:
        """Keys written locally during the outage, awaiting back-fill."""
        with self._backlog_lock:
            return len(self._backlog)

    def _note_success(self) -> None:
        if self.breaker.record_success():
            self._backfill()

    def _backfill(self) -> None:
        """Replay outage-era local writes to the reconnected remote store."""
        with self._backlog_lock:
            pending, self._backlog = self._backlog, []
        requeue: list[str] = []
        for index, key in enumerate(pending):
            value = self.local.get(key)
            if value is None:
                continue  # evicted locally; the unit will be recomputed
            try:
                self.client.put(key, value)
            except CacheNetError:
                self.remote_errors += 1
                self.breaker.record_failure()
                requeue.extend(pending[index:])
                break
            self.backfilled += 1
        if requeue:
            with self._backlog_lock:
                for key in requeue:
                    if key not in self._backlog:
                        self._backlog.append(key)
