"""Parallel campaign runtime with content-addressed result caching.

This package is the execution layer every experiment entry point routes
through:

* :mod:`repro.runtime.keys` — stable content-addressed cache keys;
* :mod:`repro.runtime.cache` — in-memory LRU + optional sqlite persistence;
* :mod:`repro.runtime.parallel` — deterministic process-pool map with a
  serial fallback;
* :mod:`repro.runtime.runner` — the :class:`CampaignRunner` fanning
  (scenario × seed × heuristic) units out across workers;
* :mod:`repro.runtime.progress` — lightweight progress/throughput reporting.

``runner`` is re-exported lazily: it depends on :mod:`repro.experiments`,
which itself uses :mod:`repro.runtime.keys`, and the lazy hop keeps that
dependency chain acyclic at import time.
"""

from __future__ import annotations

from .cache import CacheStats, DiskCache, LRUCache, ResultCache, read_disk_stats
from .cachenet import (
    CacheNetClient,
    CacheNetError,
    CacheNetServer,
    CircuitBreaker,
    FallbackResultCache,
    parse_address,
)
from .keys import (
    ALGO_VERSION,
    KEY_VERSION,
    MC_RNG_SCHEME,
    canonical_json,
    digest,
    evaluation_key,
    monte_carlo_key,
    platform_fingerprint,
    robustness_unit_key,
    scenario_unit_key,
    schedule_fingerprint,
    stable_seed_words,
    workflow_fingerprint,
)
from .faults import (
    FAULTS_ENV,
    KNOWN_FAULT_SITES,
    active_faults,
    fault_fired,
    fault_point,
    parse_faults,
)
from .journal import JOURNAL_VERSION, CampaignJournal
from .keys import fabric_shard_key
from .leases import DONE, LEASED, PENDING, POISON, LeaseQueue, ShardLease
from .parallel import (
    QUARANTINED,
    WorkerFailure,
    deterministic_chunksize,
    dispose_executor,
    parallel_map,
    resolve_jobs,
)
from .progress import ConsoleProgress, NullProgress, coerce_progress
from .retry import RetryPolicy

__all__ = [
    "ALGO_VERSION",
    "CacheNetClient",
    "CacheNetError",
    "CacheNetServer",
    "CacheStats",
    "CampaignJournal",
    "CampaignRunner",
    "CircuitBreaker",
    "ConsoleProgress",
    "DONE",
    "DiskCache",
    "FallbackResultCache",
    "LEASED",
    "LeaseQueue",
    "PENDING",
    "POISON",
    "RetryPolicy",
    "ShardLease",
    "FAULTS_ENV",
    "JOURNAL_VERSION",
    "KEY_VERSION",
    "KNOWN_FAULT_SITES",
    "LRUCache",
    "MC_RNG_SCHEME",
    "MonteCarloUnit",
    "NullProgress",
    "QUARANTINED",
    "ResultCache",
    "UnitFailure",
    "WorkUnit",
    "WorkerFailure",
    "active_faults",
    "canonical_json",
    "coerce_progress",
    "deterministic_chunksize",
    "digest",
    "dispose_executor",
    "evaluation_key",
    "fabric_shard_key",
    "parse_address",
    "evaluate_schedule_cached",
    "expand_work_units",
    "fault_fired",
    "fault_point",
    "monte_carlo_key",
    "parse_faults",
    "robustness_unit_key",
    "run_monte_carlo_cached",
    "parallel_map",
    "platform_fingerprint",
    "read_disk_stats",
    "resolve_jobs",
    "scenario_unit_key",
    "schedule_fingerprint",
    "stable_seed_words",
    "workflow_fingerprint",
]

_RUNNER_EXPORTS = {
    "CampaignRunner",
    "MonteCarloUnit",
    "UnitFailure",
    "WorkUnit",
    "expand_work_units",
    "evaluate_schedule_cached",
    "run_monte_carlo_cached",
}


def __getattr__(name: str) -> object:
    if name in _RUNNER_EXPORTS:
        from . import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
