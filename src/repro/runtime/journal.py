"""Append-only, fsync'd journal of completed campaign unit outcomes.

The journal is the crash-safety companion of the result cache: where the
cache is a *performance* artifact (content-addressed, shareable across
campaigns, safe to delete), the journal is a *durability* artifact — the
authoritative record of which units of one campaign already completed, good
enough to survive ``SIGKILL`` mid-run.  ``repro campaign --resume`` replays
it before touching the cache, so a resumed campaign recomputes nothing it
already paid for even when no cache was configured at all.

Format: JSON Lines, one fsync per record.  The first line is a header
pinning the cache-key semantics the outcomes were recorded under::

    {"kind": "journal", "v": 1, "key_version": 2, "algo_version": 2}
    {"kind": "unit", "key": "<unit cache key>", "outcome": {...}}
    {"kind": "failure", "key": "<unit cache key>", "error": {...}}

Records are keyed by the same content-addressed unit keys the cache uses
(:func:`~repro.runtime.keys.scenario_unit_key` /
:func:`~repro.runtime.keys.robustness_unit_key`), so replay is immune to
grid reordering, resharding, or a resume invocation that adds scenarios: a
journal entry serves exactly the units whose content matches, and unmatched
entries are simply unused.  A truncated final line — the signature of a
crash mid-write — is dropped (and trimmed from the file) on load; every
complete line before it is kept.
"""

from __future__ import annotations

import io
import json
import os
from pathlib import Path
from typing import Any, Iterator, Mapping

from .keys import ALGO_VERSION, KEY_VERSION, canonical_json

__all__ = ["JOURNAL_VERSION", "CampaignJournal"]

JOURNAL_VERSION = 1


def _header() -> dict[str, Any]:
    return {
        "kind": "journal",
        "v": JOURNAL_VERSION,
        "key_version": KEY_VERSION,
        "algo_version": ALGO_VERSION,
    }


class CampaignJournal:
    """Durable record of completed units, keyed by content-addressed keys.

    Opening a path that does not exist creates a fresh journal (header line
    only); opening an existing one loads every complete record and positions
    the file for appending — create and resume are the same operation, which
    is what lets ``--journal`` double as "resume if present".

    Writes are append-only and fsync'd per record: after :meth:`record`
    returns, the outcome survives power loss.  One campaign unit costs a few
    hundred bytes and one ``fsync`` — noise next to a solver call.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.entries: dict[str, dict[str, Any]] = {}
        self.failures: dict[str, dict[str, Any]] = {}
        self._fh: io.BufferedRandom | None = None
        self._open()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            fh = open(self.path, "x+b")
            self._fh = fh
            self._append(_header())
            return
        fh = open(self.path, "r+b")
        try:
            valid_end = self._load(fh)
        except Exception:
            fh.close()
            raise
        # Trim a torn final record (crash mid-write) so appends start on a
        # clean line boundary.
        fh.seek(valid_end)
        fh.truncate(valid_end)
        self._fh = fh

    def _load(self, fh: io.BufferedRandom) -> int:
        """Parse records, returning the byte offset after the last good line."""
        valid_end = 0
        first = True
        for line in fh:
            if not line.endswith(b"\n"):
                break  # torn tail: keep everything before it
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn or garbage line: same treatment
            if first:
                self._check_header(record)
                first = False
            else:
                self._absorb(record)
            valid_end += len(line)
        if first:
            raise ValueError(
                f"{self.path} is not a campaign journal (missing header line)"
            )
        return valid_end

    def _check_header(self, record: Mapping[str, Any]) -> None:
        if not isinstance(record, dict) or record.get("kind") != "journal":
            raise ValueError(f"{self.path} is not a campaign journal (bad header)")
        expected = _header()
        for field in ("v", "key_version", "algo_version"):
            if record.get(field) != expected[field]:
                raise ValueError(
                    f"cannot resume from {self.path}: it was written with "
                    f"{field}={record.get(field)!r}, this build uses "
                    f"{expected[field]!r} — re-run the campaign from scratch"
                )

    def _absorb(self, record: Mapping[str, Any]) -> None:
        kind = record.get("kind") if isinstance(record, Mapping) else None
        key = record.get("key") if isinstance(record, Mapping) else None
        if not isinstance(key, str):
            return  # unknown/corrupt record kinds are skipped, not fatal
        if kind == "unit" and isinstance(record.get("outcome"), dict):
            self.entries[key] = record["outcome"]
        elif kind == "failure" and isinstance(record.get("error"), dict):
            self.failures[key] = record["error"]

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(self, key: str) -> dict[str, Any] | None:
        """The journaled outcome for ``key``, or ``None``."""
        return self.entries.get(key)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def keys(self) -> Iterator[str]:
        return iter(self.entries)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def _append(self, record: Mapping[str, Any]) -> None:
        if self._fh is None:
            raise ValueError(f"journal {self.path} is closed")
        self._fh.write(canonical_json(record).encode("utf-8") + b"\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, key: str, outcome: Mapping[str, Any]) -> None:
        """Durably record one completed unit (idempotent per key)."""
        if key in self.entries:
            return
        payload = dict(outcome)
        self._append({"kind": "unit", "key": key, "outcome": payload})
        self.entries[key] = payload

    def record_failure(self, key: str, error: Mapping[str, Any]) -> None:
        """Durably record a quarantined unit, so resume can report it too."""
        if key in self.failures:
            return
        payload = dict(error)
        self._append({"kind": "failure", "key": key, "error": payload})
        self.failures[key] = payload
