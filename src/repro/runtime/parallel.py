"""Deterministic parallel map over experiment work units.

A thin layer over :class:`concurrent.futures.ProcessPoolExecutor` with the
properties the campaign runtime needs:

* **serial fallback** — ``jobs=1`` runs the plain in-process loop (this is
  the path the tier-1 test-suite exercises, and the reference that parallel
  runs must reproduce bit-for-bit);
* **ordered gathering** — results always come back in input order, whatever
  the completion order of the workers, so downstream aggregation is
  independent of scheduling jitter;
* **deterministic chunking** — the chunk size is a pure function of the
  input length and worker count, never of timing.

The mapped function must be picklable (a module-level function) when
``jobs > 1``; work units likewise.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Iterable, Sequence

__all__ = ["resolve_jobs", "deterministic_chunksize", "parallel_map"]


def _apply_chunk(payload: tuple[Callable[[Any], Any], list[Any]]) -> list[Any]:
    """Worker entry point: run one chunk of units (module-level, picklable)."""
    fn, chunk = payload
    return [fn(item) for item in chunk]


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def deterministic_chunksize(n_items: int, jobs: int) -> int:
    """Chunk size for ``n_items`` spread over ``jobs`` workers.

    Aims at roughly four chunks per worker (to absorb load imbalance between
    heavy and light units) while never exceeding 32 units per chunk.  Purely
    arithmetic on the inputs, so two runs of the same campaign always chunk
    identically.
    """
    if n_items <= 0:
        return 1
    jobs = max(1, jobs)
    target = -(-n_items // (4 * jobs))  # ceil division
    return max(1, min(32, target))


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: int | None = 1,
    chunksize: int | None = None,
    on_result: Callable[[int, Any], None] | None = None,
    executor: ProcessPoolExecutor | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Parameters
    ----------
    fn:
        The function to apply.  Must be importable from a module (picklable)
        when ``jobs > 1``.
    items:
        Work units; consumed eagerly so the total is known up front.
    jobs:
        Worker processes.  ``1`` (the default) runs serially in-process;
        ``None`` or ``0`` uses every CPU.
    chunksize:
        Units per worker dispatch; defaults to
        :func:`deterministic_chunksize`.
    on_result:
        Optional callback invoked as ``on_result(index, result)`` exactly
        once per item, *as soon as its result reaches the parent* — in input
        order when serial, in completion order when parallel.  This is the
        hook for progress reporting and incremental persistence: even if a
        later unit fails, every completed unit is reported first.
    executor:
        Optional existing :class:`ProcessPoolExecutor` to dispatch on.  The
        caller keeps ownership (it is not shut down here), which lets a
        multi-sweep driver pay worker start-up once instead of per call.

    Returns
    -------
    list
        Results in input order.

    Raises
    ------
    The first unit exception — but only after every other chunk has been
    gathered (and reported through ``on_result``), so partial work is never
    silently discarded.
    """
    units: Sequence[Any] = list(items)
    n_jobs = min(resolve_jobs(jobs), max(1, len(units)))

    if n_jobs <= 1:
        results = []
        for index, unit in enumerate(units):
            result = fn(unit)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results

    if chunksize is None:
        chunksize = deterministic_chunksize(len(units), n_jobs)

    def gather(pool: ProcessPoolExecutor) -> list[Any]:
        futures = {
            pool.submit(_apply_chunk, (fn, list(units[start : start + chunksize]))): start
            for start in range(0, len(units), chunksize)
        }
        results: list[Any] = [None] * len(units)
        first_error: BaseException | None = None
        for future in as_completed(futures):
            start = futures[future]
            try:
                chunk_results = future.result()
            except BaseException as exc:  # gather the rest before raising
                if first_error is None:
                    first_error = exc
                continue
            for offset, result in enumerate(chunk_results):
                results[start + offset] = result
                if on_result is not None:
                    on_result(start + offset, result)
        if first_error is not None:
            raise first_error
        return results

    if executor is not None:
        return gather(executor)
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        return gather(pool)
