"""Deterministic, supervised parallel map over experiment work units.

A layer over :class:`concurrent.futures.ProcessPoolExecutor` with the
properties the campaign runtime needs:

* **serial fallback** — ``jobs=1`` runs the plain in-process loop (this is
  the path the tier-1 test-suite exercises, and the reference that parallel
  runs must reproduce bit-for-bit);
* **ordered gathering** — results always come back in input order, whatever
  the completion order of the workers, so downstream aggregation is
  independent of scheduling jitter;
* **deterministic chunking** — the chunk size is a pure function of the
  input length and worker count, never of timing;
* **worker supervision** — a dead worker (``BrokenProcessPool``) or a stuck
  chunk (``unit_timeout``) resets the pool and retries the affected chunks
  with bounded exponential backoff, bisecting multi-unit chunks so a poison
  unit is isolated in ``O(log chunksize)`` resets instead of sinking its
  chunk-mates; a unit that keeps killing workers is *quarantined* (when the
  caller opts in) rather than aborting everything else;
* **structured failures** — instead of an opaque traceback from the bowels
  of ``concurrent.futures``, a failed unit surfaces as
  :class:`WorkerFailure` carrying the unit index, attempt count and the
  original worker-side exception (with its traceback text).

The mapped function must be picklable (a module-level function) when
``jobs > 1``; work units likewise.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback as traceback_module
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from .faults import fault_point
from .retry import RetryPolicy

__all__ = [
    "QUARANTINED",
    "WorkerFailure",
    "deterministic_chunksize",
    "dispose_executor",
    "parallel_map",
    "resolve_jobs",
]

#: Cap on the supervised retry backoff sleep (seconds).
_MAX_BACKOFF = 30.0


class _Quarantined:
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<quarantined>"


#: Sentinel filling the result slot of a quarantined unit when
#: ``parallel_map(..., quarantine=True)`` — callers filter it out (and read
#: the real story from ``on_failure``).
QUARANTINED = _Quarantined()


class WorkerFailure(RuntimeError):
    """One work unit failed for good (deterministic error, poison, timeout).

    Attributes
    ----------
    unit_index:
        Position of the unit in the ``items`` passed to :func:`parallel_map`.
    item:
        ``repr()`` of the unit (the unit itself may be large or unpicklable).
    attempts:
        How many times the unit was tried before giving up.
    kind:
        ``"error"`` (the mapped function raised), ``"crash"`` (the unit's
        worker process died) or ``"timeout"`` (the per-unit wall-clock
        budget was exceeded).
    cause_type, cause_message:
        The original exception's type name and message (synthesized for
        crashes/timeouts, where no Python exception object exists).
    traceback_text:
        The worker-side traceback, when one was captured.
    """

    def __init__(
        self,
        *,
        unit_index: int,
        item: str,
        attempts: int,
        kind: str,
        cause_type: str,
        cause_message: str,
        traceback_text: str | None = None,
    ) -> None:
        self.unit_index = int(unit_index)
        self.item = item
        self.attempts = int(attempts)
        self.kind = kind
        self.cause_type = cause_type
        self.cause_message = cause_message
        self.traceback_text = traceback_text
        super().__init__(
            f"unit {self.unit_index} ({item}) failed after {self.attempts} "
            f"attempt(s) [{kind}]: {cause_type}: {cause_message}"
        )


def _describe_exception(exc: BaseException) -> dict[str, Any]:
    """Portable description of a worker-side exception (original kept if picklable)."""
    text = "".join(
        traceback_module.format_exception(type(exc), exc, exc.__traceback__)
    )
    carried: BaseException | None = exc
    try:
        pickle.dumps(exc)
    except Exception:
        carried = None
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": text,
        "exception": carried,
    }


def _apply_chunk(
    payload: tuple[Callable[[Any], Any], list[Any], tuple[int, ...], int],
) -> list[tuple[str, Any]]:
    """Worker entry point: run one chunk of units (module-level, picklable).

    Returns one ``("ok", result)`` / ``("err", description)`` tag per unit,
    so a unit-level exception late in a chunk does not discard its
    chunk-mates' completed results.  The fault points model a worker dying
    (``worker_crash``) or hanging (``chunk_timeout``) on a specific unit and
    attempt — the deterministic stand-ins for OOM kills and runaway solves.
    """
    fn, chunk, indices, attempt = payload
    tagged: list[tuple[str, Any]] = []
    for index, item in zip(indices, chunk):
        fault_point("worker_crash", default="exit=137", unit=index, attempt=attempt)
        fault_point("chunk_timeout", default="sleep=30", unit=index, attempt=attempt)
        try:
            tagged.append(("ok", fn(item)))
        except Exception as exc:
            tagged.append(("err", _describe_exception(exc)))
    return tagged


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def deterministic_chunksize(n_items: int, jobs: int) -> int:
    """Chunk size for ``n_items`` spread over ``jobs`` workers.

    Aims at roughly four chunks per worker (to absorb load imbalance between
    heavy and light units) while never exceeding 32 units per chunk.  Purely
    arithmetic on the inputs, so two runs of the same campaign always chunk
    identically.
    """
    if n_items <= 0:
        return 1
    jobs = max(1, jobs)
    target = -(-n_items // (4 * jobs))  # ceil division
    return max(1, min(32, target))


def dispose_executor(pool: Any) -> None:
    """Shut a pool down hard: cancel queued work and terminate its workers.

    ``ProcessPoolExecutor.shutdown`` never kills a worker mid-task, so a
    worker stuck in a runaway unit would keep the interpreter alive
    indefinitely; supervision needs the kill.  The worker handles live in a
    private attribute, hence the defensive ``getattr``.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass
    processes = getattr(pool, "_processes", None)
    if processes:
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass


@dataclass
class _Chunk:
    """A dispatchable slice of the unit list, tracking its retry attempt."""

    indices: tuple[int, ...]
    attempt: int = 1


class _WaveAbort(Exception):
    """Internal: the current dispatch wave died; reset the pool and retry."""


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    *,
    jobs: int | None = 1,
    chunksize: int | None = None,
    on_result: Callable[[int, Any], None] | None = None,
    executor: ProcessPoolExecutor | None = None,
    executor_factory: Callable[[bool], ProcessPoolExecutor] | None = None,
    max_retries: int = 2,
    retry_backoff: float = 0.5,
    unit_timeout: float | None = None,
    quarantine: bool = False,
    on_failure: Callable[[WorkerFailure], None] | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items``, optionally across supervised workers.

    Parameters
    ----------
    fn:
        The function to apply.  Must be importable from a module (picklable)
        when ``jobs > 1``.
    items:
        Work units; consumed eagerly so the total is known up front.
    jobs:
        Worker processes.  ``1`` (the default) runs serially in-process;
        ``None`` or ``0`` uses every CPU.
    chunksize:
        Units per worker dispatch; defaults to
        :func:`deterministic_chunksize`.
    on_result:
        Optional callback invoked as ``on_result(index, result)`` exactly
        once per item, *as soon as its result reaches the parent* — in input
        order when serial, in completion order when parallel.  This is the
        hook for progress reporting and incremental persistence: even if a
        later unit fails, every completed unit is reported first.
    executor:
        Optional existing :class:`ProcessPoolExecutor` to dispatch on.  The
        caller keeps ownership (it is not shut down here).  A pool passed
        this way cannot be replaced after a crash, so pool-level failures
        are not retried; pass ``executor_factory`` to get supervision with
        a caller-owned pool.
    executor_factory:
        ``executor_factory(reset)`` returns the pool to dispatch on; called
        with ``reset=True`` after a pool-level failure, in which case it
        must dispose of the broken pool and build a fresh one (see
        :func:`dispose_executor`).  Takes precedence over ``executor``.
    max_retries:
        Pool-level retries per chunk beyond the first attempt.  Unit-level
        exceptions (``fn`` raised) are deterministic and never retried.
    retry_backoff:
        Base of the exponential backoff sleep between pool resets
        (``retry_backoff * 2**(resets-1)``, capped at 30s; ``0`` disables).
    unit_timeout:
        Optional per-unit wall-clock budget (seconds).  A chunk of ``k``
        units gets ``k * unit_timeout``; exceeding it counts as a pool-level
        failure of that chunk (the pool is rebuilt, stuck workers killed).
    quarantine:
        When true, a unit that fails for good is *quarantined*: its result
        slot is filled with :data:`QUARANTINED`, ``on_failure`` is called
        with the :class:`WorkerFailure`, and the remaining units keep
        running.  When false (default), the first failure is raised — but
        only after every other chunk has been gathered.
    on_failure:
        Callback receiving each :class:`WorkerFailure` when quarantining.

    Returns
    -------
    list
        Results in input order (:data:`QUARANTINED` marks quarantined slots
        when ``quarantine=True``).

    Raises
    ------
    WorkerFailure
        For a failed unit when ``quarantine`` is off — after every other
        chunk has been gathered (and reported through ``on_result``), so
        partial work is never silently discarded.  The serial path raises
        the original exception unwrapped: nothing was lost across a process
        boundary there, and it is the bit-for-bit reference.
    """
    units: Sequence[Any] = list(items)
    n_jobs = min(resolve_jobs(jobs), max(1, len(units)))

    if n_jobs <= 1:
        return _serial_map(
            fn, units, on_result=on_result, quarantine=quarantine, on_failure=on_failure
        )

    if chunksize is None:
        chunksize = deterministic_chunksize(len(units), n_jobs)

    own_pool: list[ProcessPoolExecutor] = []
    if executor_factory is None:
        if executor is not None:
            fixed_pool = executor

            def factory(reset: bool) -> ProcessPoolExecutor:
                if reset:
                    raise _WaveAbort  # caller-owned pool: cannot rebuild
                return fixed_pool

        else:

            def factory(reset: bool) -> ProcessPoolExecutor:
                if reset and own_pool:
                    dispose_executor(own_pool.pop())
                if not own_pool:
                    own_pool.append(ProcessPoolExecutor(max_workers=n_jobs))
                return own_pool[0]

        retryable = executor is None
    else:
        factory = executor_factory
        retryable = True

    try:
        return _supervised_map(
            fn,
            units,
            n_jobs=n_jobs,
            chunksize=chunksize,
            factory=factory,
            retryable=retryable,
            on_result=on_result,
            max_retries=max_retries,
            retry_backoff=retry_backoff,
            unit_timeout=unit_timeout,
            quarantine=quarantine,
            on_failure=on_failure,
        )
    finally:
        if own_pool:
            own_pool.pop().shutdown()


def _serial_map(
    fn: Callable[[Any], Any],
    units: Sequence[Any],
    *,
    on_result: Callable[[int, Any], None] | None,
    quarantine: bool,
    on_failure: Callable[[WorkerFailure], None] | None,
) -> list[Any]:
    results: list[Any] = []
    for index, unit in enumerate(units):
        fault_point("worker_crash", default="exit=137", unit=index, attempt=1)
        fault_point("chunk_timeout", default="sleep=30", unit=index, attempt=1)
        try:
            result = fn(unit)
        except Exception as exc:
            if not quarantine:
                raise
            described = _describe_exception(exc)
            failure = WorkerFailure(
                unit_index=index,
                item=repr(unit),
                attempts=1,
                kind="error",
                cause_type=described["type"],
                cause_message=described["message"],
                traceback_text=described["traceback"],
            )
            failure.__cause__ = exc
            if on_failure is not None:
                on_failure(failure)
            results.append(QUARANTINED)
            continue
        results.append(result)
        if on_result is not None:
            on_result(index, result)
    return results


def _supervised_map(
    fn: Callable[[Any], Any],
    units: Sequence[Any],
    *,
    n_jobs: int,
    chunksize: int,
    factory: Callable[[bool], ProcessPoolExecutor],
    retryable: bool,
    on_result: Callable[[int, Any], None] | None,
    max_retries: int,
    retry_backoff: float,
    unit_timeout: float | None,
    quarantine: bool,
    on_failure: Callable[[WorkerFailure], None] | None,
) -> list[Any]:
    unset = object()
    results: list[Any] = [unset] * len(units)
    queue: deque[_Chunk] = deque(
        _Chunk(indices=tuple(range(start, min(start + chunksize, len(units)))))
        for start in range(0, len(units), chunksize)
    )
    first_error: WorkerFailure | None = None
    resets = 0
    # Zero jitter reproduces the historical supervisor schedule exactly:
    # min(retry_backoff * 2**(resets-1), 30s).
    backoff = (
        RetryPolicy(base_delay=retry_backoff, max_delay=_MAX_BACKOFF)
        if retry_backoff > 0
        else None
    )

    def settle_failure(index: int, failure: WorkerFailure) -> None:
        nonlocal first_error
        if quarantine:
            results[index] = QUARANTINED
            if on_failure is not None:
                on_failure(failure)
        elif first_error is None:
            first_error = failure

    def deliver(chunk: _Chunk, tagged: list[tuple[str, Any]]) -> None:
        for index, (tag, value) in zip(chunk.indices, tagged):
            if tag == "ok":
                results[index] = value
                if on_result is not None:
                    on_result(index, value)
                continue
            failure = WorkerFailure(
                unit_index=index,
                item=repr(units[index]),
                attempts=chunk.attempt,
                kind="error",
                cause_type=value["type"],
                cause_message=value["message"],
                traceback_text=value["traceback"],
            )
            if value.get("exception") is not None:
                failure.__cause__ = value["exception"]
            settle_failure(index, failure)

    def escalate(chunk: _Chunk, kind: str, message: str) -> None:
        """A chunk crashed its worker or timed out: bisect, retry, or give up."""
        next_attempt = chunk.attempt + 1
        if len(chunk.indices) > 1:
            # The guilty unit is unknown; splitting isolates it in
            # O(log chunksize) resets while its chunk-mates escape.
            mid = len(chunk.indices) // 2
            queue.append(_Chunk(chunk.indices[:mid], next_attempt))
            queue.append(_Chunk(chunk.indices[mid:], next_attempt))
        elif not retryable or next_attempt > max_retries + 1:
            index = chunk.indices[0]
            settle_failure(
                index,
                WorkerFailure(
                    unit_index=index,
                    item=repr(units[index]),
                    attempts=chunk.attempt,
                    kind=kind,
                    cause_type=kind,
                    cause_message=message,
                ),
            )
        else:
            queue.append(_Chunk(chunk.indices, next_attempt))

    while queue:
        try:
            _run_wave(
                fn,
                units,
                queue=queue,
                pool=factory(False),
                n_jobs=n_jobs,
                unit_timeout=unit_timeout,
                deliver=deliver,
                escalate=escalate,
            )
        except _WaveAbort:
            if not retryable:
                # Caller-owned pool without a factory: nothing to rebuild.
                # Whatever the wave escalated onto the queue is undeliverable.
                while queue:
                    chunk = queue.popleft()
                    escalate(_Chunk(chunk.indices, max_retries + 1), "crash",
                             "worker pool broke and cannot be rebuilt here")
                break
            resets += 1
            factory(True)
            if backoff is not None:
                backoff.sleep(resets)

    if first_error is not None:
        raise first_error
    assert all(result is not unset for result in results)
    return results


def _run_wave(
    fn: Callable[[Any], Any],
    units: Sequence[Any],
    *,
    queue: deque[_Chunk],
    pool: ProcessPoolExecutor,
    n_jobs: int,
    unit_timeout: float | None,
    deliver: Callable[[_Chunk, list[tuple[str, Any]]], None],
    escalate: Callable[[_Chunk, str, str], None],
) -> None:
    """Drain the queue on one pool; raise :class:`_WaveAbort` if it dies.

    Dispatch is a sliding window of at most ``n_jobs`` chunks, so every
    submitted chunk starts executing immediately — which is what makes the
    per-chunk deadline (``len(chunk) * unit_timeout`` from submission) an
    honest measure of compute time rather than queue time.
    """
    inflight: dict[Future, _Chunk] = {}
    deadlines: dict[Future, float] = {}

    def abort(kind: str, message: str, guilty: list[_Chunk]) -> None:
        for future, chunk in inflight.items():
            future.cancel()
            if chunk not in guilty:
                queue.append(chunk)  # innocent bystander: same attempt again
        for chunk in guilty:
            escalate(chunk, kind, message)
        raise _WaveAbort

    while queue or inflight:
        while queue and len(inflight) < n_jobs:
            chunk = queue.popleft()
            payload = (fn, [units[i] for i in chunk.indices], chunk.indices, chunk.attempt)
            try:
                future = pool.submit(_apply_chunk, payload)
            except BrokenProcessPool as exc:
                queue.appendleft(chunk)  # the pool was already dead, not its fault
                abort("crash", str(exc) or "worker pool is broken", [])
            inflight[future] = chunk
            if unit_timeout is not None:
                deadlines[future] = (
                    time.monotonic() + unit_timeout * len(chunk.indices)
                )

        timeout = None
        if deadlines:
            timeout = max(0.0, min(deadlines.values()) - time.monotonic())
        done, _ = wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)

        if not done:
            now = time.monotonic()
            expired = [future for future, deadline in deadlines.items() if deadline <= now]
            if not expired:
                continue  # spurious wakeup; re-derive the next deadline
            guilty = []
            for future in expired:
                guilty.append(inflight.pop(future))
                deadlines.pop(future, None)
            abort(
                "timeout",
                f"unit wall-clock budget exceeded ({unit_timeout}s/unit)",
                guilty,
            )

        for future in done:
            chunk = inflight.pop(future)
            deadlines.pop(future, None)
            try:
                tagged = future.result()
            except BrokenProcessPool as exc:
                # The pool is gone: every sibling future broke with it.
                # All of them are suspects (attribution is impossible), so
                # all escalate — bisection sorts the innocent out cheaply.
                guilty = [chunk]
                for sibling in list(inflight):
                    if sibling.done() and not sibling.cancelled():
                        try:
                            sibling.result()
                        except BrokenProcessPool:
                            guilty.append(inflight.pop(sibling))
                            deadlines.pop(sibling, None)
                        except Exception:
                            pass
                abort("crash", str(exc) or "worker process died unexpectedly", guilty)
            deliver(chunk, tagged)
