"""Content-addressed cache keys for workflows, platforms, schedules, rows.

The campaign runtime never recomputes an evaluation it has already paid for.
To make that safe, cache keys must be *content-addressed*: two objects with
the same semantic content must produce the same key, in the same process or
in another one, today or in a later session.  The keys here are SHA-256
digests of the canonical JSON serialization of :mod:`repro.core.hashing`,
and every payload embeds a ``kind`` tag and :data:`KEY_VERSION` so that a
change in the key schema can never alias an old entry.

Only the quantities that affect an evaluation enter a fingerprint: task
weights, checkpoint / recovery costs and edges for a workflow (names and
categories are display-only), processor count, per-processor failure rate
and downtime for a platform, order and checkpoint set for a schedule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..core.hashing import canonical_json, digest, stable_seed_words

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..core.platform import Platform
    from ..core.schedule import Schedule
    from ..core.dag import Workflow

__all__ = [
    "ALGO_VERSION",
    "KEY_VERSION",
    "MC_RNG_SCHEME",
    "canonical_json",
    "digest",
    "stable_seed_words",
    "workflow_fingerprint",
    "platform_fingerprint",
    "schedule_fingerprint",
    "evaluation_key",
    "scenario_unit_key",
    "monte_carlo_key",
    "robustness_unit_key",
    "fabric_shard_key",
]

#: Bumped whenever the canonical payload schema changes, so stale persistent
#: cache entries can never be confused with fresh ones.
#:
#: v2: the platform payload carries the full platform description
#: (processor count and per-processor rate, not just the aggregated rate)
#: now that downtime and processors are scenario grid axes.  Every v1 cache
#: entry is invalidated once, deliberately: v1 scenario rows were computed
#: through a scenario layer that silently dropped the downtime.
KEY_VERSION = 2

#: Version of the *algorithms* whose outputs the cache stores.  KEY_VERSION
#: tracks the key schema; this tracks result-affecting behavior.  Bump it
#: whenever a heuristic, linearization, count search, or the evaluator can
#: produce different numbers than before — otherwise an old persistent cache
#: would silently serve the previous implementation's results as current.
#: v1 -> v2: the numpy evaluator's Algorithm-1 fill and Theorem-3 running
#: sums were re-canonicalized for the incremental sweep engine (float-noise
#: level changes), and local-search probes now evaluate in
#: descending-position order (tie-breaks can differ).
#: v2 -> v3: Schedule's failure-free aggregates now sum checkpoint costs in
#: ascending task index instead of frozenset iteration order (reprolint
#: RL004 fix; float-noise level changes).
ALGO_VERSION = 3


# ----------------------------------------------------------------------
# Fingerprints of the core objects
# ----------------------------------------------------------------------
def workflow_fingerprint(workflow: "Workflow") -> str:
    """Content digest of a workflow (weights, costs and edges only)."""
    payload = {
        "kind": "workflow",
        "v": KEY_VERSION,
        "tasks": [
            [task.index, task.weight, task.checkpoint_cost, task.recovery_cost]
            for task in workflow.tasks
        ],
        "edges": [[u, v] for u, v in workflow.edges],
    }
    return digest(payload)


def platform_fingerprint(platform: "Platform") -> str:
    """Content digest of a platform (processors, per-processor rate, downtime)."""
    return digest(_platform_payload(platform))


def _platform_payload(platform: "Platform") -> dict[str, Any]:
    # The full platform description, not just the aggregated rate: the
    # stored fields (p, lambda_proc, D) are the canonical content, and the
    # derived platform-level lambda is implied by them.
    return {
        "kind": "platform",
        "v": KEY_VERSION,
        "processors": platform.processors,
        "processor_failure_rate": platform.processor_failure_rate,
        "downtime": platform.downtime,
    }


def schedule_fingerprint(schedule: "Schedule") -> str:
    """Content digest of a schedule (workflow content, order, checkpoint set)."""
    payload = {
        "kind": "schedule",
        "v": KEY_VERSION,
        "workflow": workflow_fingerprint(schedule.workflow),
        "order": list(schedule.order),
        "checkpointed": sorted(schedule.checkpointed),
    }
    return digest(payload)


# ----------------------------------------------------------------------
# Keys of cached computations
# ----------------------------------------------------------------------
def evaluation_key(
    schedule: "Schedule",
    platform: "Platform",
    *,
    kind: str = "expected-makespan",
) -> str:
    """Key of one analytical evaluation of a schedule on a platform.

    ``kind`` distinguishes different evaluations of the same pair (for
    example the plain expected makespan versus one that keeps the full
    event-probability table).
    """
    payload = {
        "kind": "evaluation",
        "v": KEY_VERSION,
        "algo": ALGO_VERSION,
        "evaluation": str(kind),
        "schedule": schedule_fingerprint(schedule),
        "platform": _platform_payload(platform),
    }
    return digest(payload)


#: Tag of the per-heuristic random-stream derivation used by the harness.
#: Part of every unit key: changing how RF streams are derived changes the
#: results, so it must invalidate previously cached rows.
RNG_SCHEME = "per-heuristic-sha256-v1"


def scenario_unit_key(
    *,
    platform: "Platform",
    heuristic: str,
    search_mode: str,
    max_candidates: int,
    seed: int,
    workflow: "Workflow | None" = None,
    workflow_digest: str | None = None,
) -> str:
    """Key of one (workflow instance, platform, heuristic) harness row.

    The workflow enters by content, not by generator parameters, so the key
    survives refactors of the generators only as long as they produce the
    same instances — exactly the property a result cache must have.  The
    seed still enters the key on its own because the RF linearization draws
    from a ``(seed, heuristic)``-derived stream even on identical workflows.

    Pass ``workflow_digest`` (a previously computed
    :func:`workflow_fingerprint`) instead of ``workflow`` to skip re-hashing
    an instance whose units are keyed repeatedly.
    """
    if workflow_digest is None:
        if workflow is None:
            raise ValueError("either workflow or workflow_digest is required")
        workflow_digest = workflow_fingerprint(workflow)
    payload = {
        "kind": "scenario-row",
        "v": KEY_VERSION,
        "algo": ALGO_VERSION,
        "workflow": workflow_digest,
        "platform": _platform_payload(platform),
        "heuristic": str(heuristic),
        "search_mode": str(search_mode),
        "max_candidates": int(max_candidates),
        "seed": int(seed),
        "rng": RNG_SCHEME,
    }
    return digest(payload)


#: Tag of the Monte-Carlo random-stream derivation: every replica draws from
#: its own child generator spawned from the seed (see
#: :func:`repro.simulation.engine.replica_generators`).  Part of every
#: Monte-Carlo key because changing how replica streams are derived changes
#: the samples, which must invalidate previously cached summaries.  The
#: evaluation *backend* deliberately stays out of these keys: the python and
#: numpy engines are bit-for-bit identical, so a cache warmed by either
#: serves both.
MC_RNG_SCHEME = "spawned-replica-streams-v1"


def monte_carlo_key(
    schedule: "Schedule",
    platform: "Platform",
    *,
    failure_spec: dict[str, Any],
    n_runs: int,
    seed: int,
    checkpoint_overlap: float = 0.0,
) -> str:
    """Key of one Monte-Carlo summary of a schedule on a platform.

    ``failure_spec`` is the declarative law description of
    :meth:`repro.simulation.failures.FailureModel.spec` — the law *and its
    parameters* enter the key by content, so a Weibull sweep at two shapes
    can never alias, and neither can two replica counts or seeds.
    """
    payload = {
        "kind": "monte-carlo",
        "v": KEY_VERSION,
        "algo": ALGO_VERSION,
        "schedule": schedule_fingerprint(schedule),
        "platform": _platform_payload(platform),
        "failure": dict(failure_spec),
        "n_runs": int(n_runs),
        "seed": int(seed),
        "checkpoint_overlap": float(checkpoint_overlap),
        "rng": MC_RNG_SCHEME,
    }
    return digest(payload)


def robustness_unit_key(
    *,
    platform: "Platform",
    heuristic: str,
    search_mode: str,
    max_candidates: int,
    seed: int,
    failure_spec: dict[str, Any],
    n_runs: int,
    mc_seed: int,
    checkpoint_overlap: float = 0.0,
    workflow: "Workflow | None" = None,
    workflow_digest: str | None = None,
) -> str:
    """Key of one (scenario instance, heuristic, failure law) robustness row.

    Extends :func:`scenario_unit_key` content with the Monte-Carlo side of
    the unit: the failure-law spec, the replica count, the Monte-Carlo seed
    and the replica-stream scheme.  The solver side keeps the per-heuristic
    RNG scheme tag, since the row embeds the solved schedule's metrics.
    """
    if workflow_digest is None:
        if workflow is None:
            raise ValueError("either workflow or workflow_digest is required")
        workflow_digest = workflow_fingerprint(workflow)
    payload = {
        "kind": "robustness-row",
        "v": KEY_VERSION,
        "algo": ALGO_VERSION,
        "workflow": workflow_digest,
        "platform": _platform_payload(platform),
        "heuristic": str(heuristic),
        "search_mode": str(search_mode),
        "max_candidates": int(max_candidates),
        "seed": int(seed),
        "rng": RNG_SCHEME,
        "failure": dict(failure_spec),
        "n_runs": int(n_runs),
        "mc_seed": int(mc_seed),
        "checkpoint_overlap": float(checkpoint_overlap),
        "mc_rng": MC_RNG_SCHEME,
    }
    return digest(payload)


def fabric_shard_key(*, spec_digest: str, shard: int, n_shards: int) -> str:
    """Key of one completed fabric shard (its full row-CSV payload).

    The fabric coordinator journals each finished shard under this key, so a
    coordinator crash resumes without re-leasing completed shards.  The spec
    digest covers the campaign content (grid, seeds, heuristics, search
    budget) but *not* the evaluation backend — like every other key, rows
    are backend-agnostic by contract — while ``ALGO_VERSION`` and the RNG
    scheme enter because the rows embed solver output.
    """
    payload = {
        "kind": "fabric-shard",
        "v": KEY_VERSION,
        "algo": ALGO_VERSION,
        "spec": str(spec_digest),
        "shard": int(shard),
        "n_shards": int(n_shards),
        "rng": RNG_SCHEME,
    }
    return digest(payload)
