"""Campaign runner: fan work units out across workers, feed the cache.

The runtime decomposes a campaign into *work units* — one
``(scenario instance, heuristic)`` pair each, where the scenario instance
already carries its seed.  Units are independent by construction (each
heuristic draws from its own ``(seed, heuristic)``-derived random stream,
see :func:`repro.heuristics.registry.heuristic_rng`), so the runner can:

* answer units from the :class:`~repro.runtime.cache.ResultCache` without
  any evaluator call (only the cheap workflow construction is repeated, to
  fingerprint the instance content-addressably);
* fan the remaining units out over a process pool via
  :func:`~repro.runtime.parallel.parallel_map`, gathering results in input
  order — aggregates of a ``jobs=4`` run are bit-for-bit those of the
  serial run;
* reuse per-instance DAG construction: both the parent and every worker
  memoize the generated workflow per scenario instance, so the 14
  heuristics of one scenario share one generator call per process.

Result rows come back as :class:`~repro.experiments.harness.ResultRow`.
Only the *outcome* fields of a row are cached; identity fields (label,
family, seed, ...) are re-stamped from the requesting unit, so one cached
evaluation can serve several sweeps (e.g. figure 2 and figure 3 share
every ``DF-*`` unit on CyberShake) without leaking the original sweep's
labeling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from ..core.backend import resolve_backend
from ..core.evaluator import MakespanEvaluation, evaluate_schedule
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..experiments.harness import ResultRow, run_heuristic
from ..experiments.scenarios import Scenario, build_workflow
from ..heuristics.registry import parse_heuristic_name
from ..heuristics.search import SEARCH_MODES
from .cache import LRUCache, ResultCache
from .keys import evaluation_key, scenario_unit_key
from .parallel import parallel_map, resolve_jobs
from .progress import coerce_progress

__all__ = [
    "WorkUnit",
    "CampaignRunner",
    "expand_work_units",
    "evaluate_schedule_cached",
]


@dataclass(frozen=True)
class WorkUnit:
    """One independent (scenario instance, heuristic) computation.

    ``backend`` selects the evaluation backend used to *compute* the unit;
    it deliberately stays out of the cache key (see :meth:`CampaignRunner._unit_key`)
    because both backends produce equivalent rows.
    """

    scenario: Scenario
    heuristic: str
    search_mode: str = "exhaustive"
    max_candidates: int = 30
    backend: str | None = None


#: Fields of a ResultRow that are computed (and therefore cached); the
#: remaining fields are re-stamped from the requesting work unit, including
#: ``linearization``/``checkpoint_strategy`` (pure functions of the
#: heuristic name).  ``solve_seconds`` is deliberately absent: it is a
#: wall-clock measurement of the machine that computed the row, so a cache
#: hit reports 0.0 rather than presenting someone else's timing as its own.
_OUTCOME_FIELDS = (
    "actual_n_tasks",
    "n_checkpointed",
    "expected_makespan",
    "failure_free_work",
    "overhead_ratio",
)

# Per-process memo of generated workflow instances (and their content
# digests), so that the heuristics of one scenario share a single generator
# call — and a single fingerprint hash — in the parent and in each worker.
# An LRU bound keeps long multi-family sweeps at constant memory.
_WORKFLOW_MEMO = LRUCache(maxsize=16)


def _instance_signature(scenario: Scenario) -> tuple:
    return (
        scenario.family,
        scenario.n_tasks,
        scenario.seed,
        scenario.checkpoint_mode,
        scenario.checkpoint_factor,
        scenario.checkpoint_value,
    )


def _memoized_instance(scenario: Scenario, *, digest: bool = False) -> tuple[Any, str | None]:
    """The scenario's workflow and (when ``digest``) its content fingerprint."""
    signature = _instance_signature(scenario)
    workflow, fingerprint = _WORKFLOW_MEMO.get(signature) or (None, None)
    if workflow is None:
        workflow = build_workflow(scenario)
    if digest and fingerprint is None:
        from .keys import workflow_fingerprint

        fingerprint = workflow_fingerprint(workflow)
    _WORKFLOW_MEMO.put(signature, (workflow, fingerprint))
    return workflow, fingerprint


def _memoized_workflow(scenario: Scenario):
    return _memoized_instance(scenario)[0]


def _solve_unit(unit: WorkUnit) -> ResultRow:
    """Worker entry point: solve one unit (module-level, hence picklable)."""
    workflow = _memoized_workflow(unit.scenario)
    return run_heuristic(
        unit.scenario,
        unit.heuristic,
        search_mode=unit.search_mode,
        max_candidates=unit.max_candidates,
        workflow=workflow,
        backend=unit.backend,
    )


def _row_outcome(row: ResultRow) -> dict[str, Any]:
    return {name: getattr(row, name) for name in _OUTCOME_FIELDS}


def _row_from_outcome(unit: WorkUnit, outcome: dict[str, Any]) -> ResultRow:
    scenario = unit.scenario
    linearization, strategy = parse_heuristic_name(unit.heuristic)
    return ResultRow(
        label=scenario.label,
        family=scenario.family,
        n_tasks=scenario.n_tasks,
        actual_n_tasks=int(outcome["actual_n_tasks"]),
        failure_rate=scenario.failure_rate,
        checkpoint_mode=scenario.checkpoint_mode,
        checkpoint_parameter=scenario.checkpoint_parameter,
        heuristic=unit.heuristic,
        linearization=linearization,
        checkpoint_strategy=strategy,
        n_checkpointed=int(outcome["n_checkpointed"]),
        expected_makespan=float(outcome["expected_makespan"]),
        failure_free_work=float(outcome["failure_free_work"]),
        overhead_ratio=float(outcome["overhead_ratio"]),
        solve_seconds=0.0,
        seed=scenario.seed,
    )


def expand_work_units(
    scenarios: Iterable[Scenario],
    *,
    seeds: Sequence[int] | None = None,
    search_mode: str = "exhaustive",
    max_candidates: int = 30,
    backend: str | None = None,
) -> list[WorkUnit]:
    """Expand scenarios into the (scenario × seed × heuristic) unit list.

    ``seeds=None`` keeps each scenario's own seed (grid semantics); an
    explicit sequence repeats every scenario once per seed (campaign
    semantics).  The expansion order is the deterministic iteration order
    used by the serial reference path.
    """
    # Validate here so that a typoed mode fails before any cache lookup —
    # a warm cache must reject exactly what a cold one rejects.
    if search_mode not in SEARCH_MODES:
        raise ValueError(
            f"unknown search mode {search_mode!r}; expected one of {SEARCH_MODES}"
        )
    # Same early-failure rule for the backend name: a typo must not survive
    # until (or vary with) cache warmth.  The resolved value is discarded —
    # "auto" stays "auto" so each instance picks its own fast path.
    resolve_backend(backend)
    units: list[WorkUnit] = []
    for scenario in scenarios:
        instances = (
            [scenario]
            if seeds is None
            else [scenario.with_updates(seed=int(seed)) for seed in seeds]
        )
        for instance in instances:
            for heuristic in instance.heuristics:
                units.append(
                    WorkUnit(
                        scenario=instance,
                        heuristic=heuristic,
                        search_mode=search_mode,
                        max_candidates=max_candidates,
                        backend=backend,
                    )
                )
    return units


class CampaignRunner:
    """Execute campaign work units with caching and optional parallelism.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs serially in-process (the reference
        path), ``None``/``0`` uses every CPU.
    cache:
        Optional :class:`ResultCache`; hits skip the evaluator entirely.
    search_mode, max_candidates:
        Checkpoint-count search configuration forwarded to every unit.
    backend:
        Evaluation backend forwarded to every unit (``"auto"`` default);
        results are backend-agnostic, so this never enters cache keys.
    progress:
        ``None`` (silent), ``True`` (console reporter) or any object with
        ``start/update/finish``.

    The worker pool is created lazily on the first parallel batch and reused
    for the runner's lifetime, so a driver that issues several sweeps (e.g.
    ``all_figures``) pays worker start-up once.  Call :meth:`close` (or use
    the runner as a context manager) to release the pool.
    """

    def __init__(
        self,
        *,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        search_mode: str = "exhaustive",
        max_candidates: int = 30,
        progress: Any = None,
        backend: str | None = None,
    ) -> None:
        # Resolve (and thereby validate) the worker count and backend name
        # eagerly so that a bad --jobs / --backend value fails identically
        # on warm and cold caches.
        self.jobs = resolve_jobs(jobs)
        resolve_backend(backend)
        self.cache = cache
        self.search_mode = search_mode
        self.max_candidates = max_candidates
        self.backend = backend
        self.progress = coerce_progress(progress)
        self._pool: Any = None

    def close(self) -> None:
        """Shut down the worker pool (if one was started)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _executor(self):
        if self.jobs <= 1:
            return None
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_rows(
        self,
        scenarios: Iterable[Scenario],
        *,
        seeds: Sequence[int] | None = None,
        search_mode: str | None = None,
        max_candidates: int | None = None,
        backend: str | None = None,
    ) -> list[ResultRow]:
        """Run every unit of the scenarios; rows come back in unit order.

        ``search_mode`` / ``max_candidates`` / ``backend`` override the
        runner's defaults for this call, so one runner (and its worker
        pool) can serve sweeps with different configurations.
        """
        units = expand_work_units(
            scenarios,
            seeds=seeds,
            search_mode=search_mode if search_mode is not None else self.search_mode,
            max_candidates=(
                max_candidates if max_candidates is not None else self.max_candidates
            ),
            backend=backend if backend is not None else self.backend,
        )
        return self.run_units(units)

    def run_units(self, units: Sequence[WorkUnit]) -> list[ResultRow]:
        """Resolve units from the cache, compute the misses, keep the order."""
        rows: list[ResultRow | None] = [None] * len(units)
        pending: list[int] = []
        keys: dict[int, str] = {}

        self.progress.start(len(units))
        try:
            done = 0
            if self.cache is not None:
                for index, unit in enumerate(units):
                    key = self._unit_key(unit)
                    keys[index] = key
                    outcome = self.cache.get(key)
                    if outcome is not None:
                        rows[index] = _row_from_outcome(unit, outcome)
                        done += 1
                    else:
                        pending.append(index)
                self.progress.update(done, self._progress_info())
            else:
                pending = list(range(len(units)))

            if pending:
                done_base = done
                completed = 0

                def on_result(position: int, row: ResultRow) -> None:
                    # Persist every result the moment the parent receives it
                    # (completion order under jobs>1), so an interrupted or
                    # partially failed sweep keeps everything it already
                    # paid for.
                    nonlocal completed
                    index = pending[position]
                    rows[index] = row
                    if self.cache is not None:
                        self.cache.put(keys[index], _row_outcome(row))
                    completed += 1
                    self.progress.update(done_base + completed, self._progress_info())

                try:
                    parallel_map(
                        _solve_unit,
                        [units[index] for index in pending],
                        jobs=self.jobs,
                        on_result=on_result,
                        # A single pending unit runs serially in-parent
                        # anyway; don't spawn a worker pool for it.
                        executor=self._executor() if len(pending) > 1 else None,
                    )
                except BaseException:
                    # A worker crash (e.g. BrokenProcessPool) can leave the
                    # pool unusable; drop it so the next batch on this
                    # runner starts fresh instead of failing forever.
                    self._reset_pool()
                    raise
        finally:
            # Always terminate the progress line, so an error message that
            # follows starts on a clean line.
            self.progress.finish()
        assert all(row is not None for row in rows)
        return list(rows)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _unit_key(self, unit: WorkUnit) -> str:
        # The unit's evaluation backend deliberately does not enter the key:
        # both backends compute the same quantity (the equivalence property
        # tests pin the bound), so a cache warmed by either serves both.
        workflow, fingerprint = _memoized_instance(unit.scenario, digest=True)
        # CkptNvr/CkptAlws never consume the candidate counts, so their
        # results are identical under every search configuration; normalize
        # those key components to let e.g. a geometric sweep warm the
        # baselines of a later exhaustive one.
        _, strategy = parse_heuristic_name(unit.heuristic)
        if strategy in ("CkptNvr", "CkptAlws"):
            search_mode, max_candidates = "none", 0
        else:
            search_mode, max_candidates = unit.search_mode, unit.max_candidates
            if search_mode == "geometric" and workflow.n_tasks <= max_candidates:
                # The budget covers every count, so the geometric candidate
                # set degenerates to the exhaustive one.
                search_mode = "exhaustive"
            if search_mode == "exhaustive":
                # candidate_counts ignores the budget in exhaustive mode, so
                # keying on it would only create spurious misses.
                max_candidates = 0
        return scenario_unit_key(
            workflow_digest=fingerprint,
            platform=unit.scenario.platform,
            heuristic=unit.heuristic,
            search_mode=search_mode,
            max_candidates=max_candidates,
            seed=unit.scenario.seed,
        )

    def _progress_info(self) -> str:
        if self.cache is None:
            return ""
        stats = self.cache.stats
        return f"cache {stats.hits} hits / {stats.misses} misses"


def evaluate_schedule_cached(
    schedule: Schedule,
    platform: Platform,
    cache: ResultCache,
    *,
    backend: str | None = None,
) -> MakespanEvaluation:
    """Content-addressed wrapper around the Theorem-3 evaluator.

    Useful when pricing the same schedule on many platforms (or repeatedly
    inside a refinement loop) with persistence across runs.  The full
    per-position expectation vector is cached, so reconstruction is exact.
    (Only the plain evaluation is supported; the event-probability table of
    ``keep_probabilities`` is quadratic and deliberately not cached.)

    ``backend`` only selects how a miss is computed — the key is
    backend-agnostic, so entries warmed by one backend serve the other.
    """
    key = evaluation_key(schedule, platform, kind="expected-makespan")
    payload = cache.get(key)
    if payload is not None:
        return MakespanEvaluation(
            expected_makespan=float(payload["expected_makespan"]),
            expected_task_times=tuple(payload["expected_task_times"]),
            failure_free_makespan=float(payload["failure_free_makespan"]),
            failure_free_work=float(payload["failure_free_work"]),
        )
    evaluation = evaluate_schedule(schedule, platform, backend=backend)
    cache.put(
        key,
        {
            "expected_makespan": evaluation.expected_makespan,
            "expected_task_times": list(evaluation.expected_task_times),
            "failure_free_makespan": evaluation.failure_free_makespan,
            "failure_free_work": evaluation.failure_free_work,
        },
    )
    return evaluation
