"""Campaign runner: fan work units out across workers, feed the cache.

The runtime decomposes a campaign into *work units* — one
``(scenario instance, heuristic)`` pair each, where the scenario instance
already carries its seed.  Units are independent by construction (each
heuristic draws from its own ``(seed, heuristic)``-derived random stream,
see :func:`repro.heuristics.registry.heuristic_rng`), so the runner can:

* answer units from the :class:`~repro.runtime.cache.ResultCache` without
  any evaluator call (only the cheap workflow construction is repeated, to
  fingerprint the instance content-addressably);
* fan the remaining units out over a process pool via
  :func:`~repro.runtime.parallel.parallel_map`, gathering results in input
  order — aggregates of a ``jobs=4`` run are bit-for-bit those of the
  serial run;
* reuse per-instance DAG construction: both the parent and every worker
  memoize the generated workflow per scenario instance, so the 14
  heuristics of one scenario share one generator call per process.

Result rows come back as :class:`~repro.experiments.harness.ResultRow`.
Only the *outcome* fields of a row are cached; identity fields (label,
family, seed, ...) are re-stamped from the requesting unit, so one cached
evaluation can serve several sweeps (e.g. figure 2 and figure 3 share
every ``DF-*`` unit on CyberShake) without leaking the original sweep's
labeling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ..core.backend import resolve_backend
from ..core.evaluator import MakespanEvaluation, evaluate_schedule
from ..core.dag import Workflow
from ..core.hashing import stable_seed_words
from ..core.platform import Platform
from ..core.schedule import Schedule
from ..experiments.harness import ResultRow, run_heuristic
from ..experiments.scenarios import Scenario, build_workflow
from ..heuristics.registry import heuristic_rng, parse_heuristic_name, solve_heuristic
from ..heuristics.search import SEARCH_MODES, candidate_counts
from .cache import LRUCache, ResultCache
from .faults import fault_point
from .journal import CampaignJournal
from .keys import evaluation_key, monte_carlo_key, robustness_unit_key, scenario_unit_key
from .parallel import WorkerFailure, dispose_executor, parallel_map, resolve_jobs
from .progress import coerce_progress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..simulation import MonteCarloSummary

__all__ = [
    "WorkUnit",
    "MonteCarloUnit",
    "UnitFailure",
    "CampaignRunner",
    "expand_work_units",
    "evaluate_schedule_cached",
    "run_monte_carlo_cached",
]


@dataclass(frozen=True)
class WorkUnit:
    """One independent (scenario instance, heuristic) computation.

    ``backend`` selects the evaluation backend used to *compute* the unit;
    it deliberately stays out of the cache key (see :meth:`CampaignRunner._unit_key`)
    because both backends produce equivalent rows.
    """

    scenario: Scenario
    heuristic: str
    search_mode: str = "exhaustive"
    max_candidates: int = 30
    backend: str | None = None


@dataclass(frozen=True)
class MonteCarloUnit:
    """One independent (scenario instance, heuristic, failure law) simulation.

    The unit solves the heuristic to obtain a schedule (and its analytical
    Theorem-3 expectation), then estimates the same schedule's makespan by
    ``n_runs`` Monte-Carlo replicas under the failure law described by
    ``failure_spec`` (a :meth:`~repro.simulation.failures.FailureModel.spec`
    payload; ``None`` uses the platform's exponential law).  ``mc_seed``
    seeds the replica streams — the actual entropy is derived per unit via
    :func:`repro.core.hashing.stable_seed_words`, so units are independent
    of each other and of execution order.

    As with :class:`WorkUnit`, ``backend`` selects how the unit is computed
    and deliberately stays out of the cache key: the two Monte-Carlo engines
    are bit-for-bit identical.
    """

    scenario: Scenario
    heuristic: str = "DF-CkptW"
    failure_spec: dict[str, Any] | None = None
    n_runs: int = 1000
    mc_seed: int = 0
    search_mode: str = "geometric"
    max_candidates: int = 30
    checkpoint_overlap: float = 0.0
    backend: str | None = None

    def resolved_failure_spec(self) -> dict[str, Any]:
        """The unit's failure law spec, with ``None`` resolved to the platform's."""
        if self.failure_spec is not None:
            return dict(self.failure_spec)
        from ..simulation.failures import failure_model_for

        return failure_model_for(self.scenario.platform).spec()


@dataclass(frozen=True)
class UnitFailure:
    """One quarantined work unit: which unit, and how it kept failing."""

    unit: Any
    failure: WorkerFailure

    def describe(self) -> str:
        scenario = getattr(self.unit, "scenario", None)
        if scenario is not None:
            heuristic = getattr(self.unit, "heuristic", "?")
            what = (
                f"{scenario.family} n={scenario.n_tasks} seed={scenario.seed} "
                f"{heuristic}"
            )
        else:  # pragma: no cover - units always carry a scenario today
            what = repr(self.unit)
        return (
            f"{what}: {self.failure.kind} after {self.failure.attempts} "
            f"attempt(s) — {self.failure.cause_type}: {self.failure.cause_message}"
        )


#: Fields of a ResultRow that are computed (and therefore cached); the
#: remaining fields are re-stamped from the requesting work unit, including
#: ``linearization``/``checkpoint_strategy`` (pure functions of the
#: heuristic name).  ``solve_seconds`` is deliberately absent: it is a
#: wall-clock measurement of the machine that computed the row, so a cache
#: hit reports 0.0 rather than presenting someone else's timing as its own.
_OUTCOME_FIELDS = (
    "actual_n_tasks",
    "n_checkpointed",
    "expected_makespan",
    "failure_free_work",
    "overhead_ratio",
)

# Per-process memo of generated workflow instances (and their content
# digests), so that the heuristics of one scenario share a single generator
# call — and a single fingerprint hash — in the parent and in each worker.
# An LRU bound keeps long multi-family sweeps at constant memory.
_WORKFLOW_MEMO = LRUCache(maxsize=16)


def _instance_signature(scenario: Scenario) -> tuple:
    return (
        scenario.family,
        scenario.n_tasks,
        scenario.seed,
        scenario.checkpoint_mode,
        scenario.checkpoint_factor,
        scenario.checkpoint_value,
    )


def _memoized_instance(scenario: Scenario, *, digest: bool = False) -> tuple[Workflow, str | None]:
    """The scenario's workflow and (when ``digest``) its content fingerprint."""
    signature = _instance_signature(scenario)
    workflow, fingerprint = _WORKFLOW_MEMO.get(signature) or (None, None)
    if workflow is None:
        workflow = build_workflow(scenario)
    if digest and fingerprint is None:
        from .keys import workflow_fingerprint

        fingerprint = workflow_fingerprint(workflow)
    _WORKFLOW_MEMO.put(signature, (workflow, fingerprint))
    return workflow, fingerprint


def _memoized_workflow(scenario: Scenario) -> Workflow:
    return _memoized_instance(scenario)[0]


def _solve_unit(unit: WorkUnit) -> ResultRow:
    """Worker entry point: solve one unit (module-level, hence picklable)."""
    workflow = _memoized_workflow(unit.scenario)
    return run_heuristic(
        unit.scenario,
        unit.heuristic,
        search_mode=unit.search_mode,
        max_candidates=unit.max_candidates,
        workflow=workflow,
        backend=unit.backend,
    )


def _solve_mc_unit(unit: MonteCarloUnit) -> dict[str, Any]:
    """Worker entry point: solve + simulate one Monte-Carlo unit.

    Returns the unit's *outcome* — a plain JSON-able dict, which is also
    exactly what the cache stores.  Identity fields (family, law label, ...)
    are re-stamped by the caller from the requesting unit.
    """
    import numpy as np

    from ..simulation import run_monte_carlo
    from ..simulation.failures import failure_model_from_spec

    workflow = _memoized_workflow(unit.scenario)
    platform = unit.scenario.platform
    _, strategy = parse_heuristic_name(unit.heuristic)
    counts = (
        None
        if strategy in ("CkptNvr", "CkptAlws")
        else candidate_counts(
            workflow.n_tasks, mode=unit.search_mode, max_candidates=unit.max_candidates
        )
    )
    result = solve_heuristic(
        workflow,
        platform,
        unit.heuristic,
        rng=heuristic_rng(unit.scenario.seed, unit.heuristic),
        counts=counts,
        backend=unit.backend,
    )
    schedule = result.schedule
    spec = unit.resolved_failure_spec()
    model = failure_model_from_spec(spec)
    # Every unit gets its own reproducible entropy: the same unit yields the
    # same replica streams in the parent, in any worker, and in any session.
    entropy = stable_seed_words(
        "mc-unit",
        unit.mc_seed,
        unit.scenario.family,
        unit.scenario.n_tasks,
        unit.scenario.seed,
        unit.heuristic,
        spec,
    )
    summary = run_monte_carlo(
        schedule,
        platform,
        n_runs=unit.n_runs,
        rng=np.random.default_rng(np.random.SeedSequence(entropy)),
        failure_model=model,
        checkpoint_overlap=unit.checkpoint_overlap,
        backend=unit.backend,
    )
    return {
        "actual_n_tasks": workflow.n_tasks,
        "n_checkpointed": schedule.n_checkpointed,
        "expected_makespan": result.expected_makespan,
        "failure_free_work": result.evaluation.failure_free_work,
        "mc_mean": summary.mean_makespan,
        "mc_std": summary.std_makespan,
        "mc_min": summary.min_makespan,
        "mc_max": summary.max_makespan,
        "mean_failures": summary.mean_failures,
        "n_runs": summary.n_runs,
    }


def _row_outcome(row: ResultRow) -> dict[str, Any]:
    return {name: getattr(row, name) for name in _OUTCOME_FIELDS}


def _row_from_outcome(unit: WorkUnit, outcome: dict[str, Any]) -> ResultRow:
    scenario = unit.scenario
    linearization, strategy = parse_heuristic_name(unit.heuristic)
    return ResultRow(
        label=scenario.label,
        family=scenario.family,
        n_tasks=scenario.n_tasks,
        actual_n_tasks=int(outcome["actual_n_tasks"]),
        failure_rate=scenario.failure_rate,
        checkpoint_mode=scenario.checkpoint_mode,
        checkpoint_parameter=scenario.checkpoint_parameter,
        heuristic=unit.heuristic,
        linearization=linearization,
        checkpoint_strategy=strategy,
        n_checkpointed=int(outcome["n_checkpointed"]),
        expected_makespan=float(outcome["expected_makespan"]),
        failure_free_work=float(outcome["failure_free_work"]),
        overhead_ratio=float(outcome["overhead_ratio"]),
        solve_seconds=0.0,
        seed=scenario.seed,
        downtime=scenario.downtime,
        processors=scenario.processors,
    )


def _normalized_search(
    heuristic: str, n_tasks: int, search_mode: str, max_candidates: int
) -> tuple[str, int]:
    """Normalize the search-configuration components of a cache key.

    CkptNvr/CkptAlws never consume the candidate counts, so their results
    are identical under every search configuration; normalizing those key
    components lets e.g. a geometric sweep warm the baselines of a later
    exhaustive one.
    """
    _, strategy = parse_heuristic_name(heuristic)
    if strategy in ("CkptNvr", "CkptAlws"):
        return "none", 0
    if search_mode == "geometric" and n_tasks <= max_candidates:
        # The budget covers every count, so the geometric candidate set
        # degenerates to the exhaustive one.
        search_mode = "exhaustive"
    if search_mode == "exhaustive":
        # candidate_counts ignores the budget in exhaustive mode, so keying
        # on it would only create spurious misses.
        max_candidates = 0
    return search_mode, max_candidates


def expand_work_units(
    scenarios: Iterable[Scenario],
    *,
    seeds: Sequence[int] | None = None,
    search_mode: str = "exhaustive",
    max_candidates: int = 30,
    backend: str | None = None,
) -> list[WorkUnit]:
    """Expand scenarios into the (scenario × seed × heuristic) unit list.

    ``seeds=None`` keeps each scenario's own seed (grid semantics); an
    explicit sequence repeats every scenario once per seed (campaign
    semantics).  The expansion order is the deterministic iteration order
    used by the serial reference path.
    """
    # Validate here so that a typoed mode fails before any cache lookup —
    # a warm cache must reject exactly what a cold one rejects.
    if search_mode not in SEARCH_MODES:
        raise ValueError(
            f"unknown search mode {search_mode!r}; expected one of {SEARCH_MODES}"
        )
    # Same early-failure rule for the backend name: a typo must not survive
    # until (or vary with) cache warmth.  The resolved value is discarded —
    # "auto" stays "auto" so each instance picks its own fast path.
    resolve_backend(backend)
    units: list[WorkUnit] = []
    for scenario in scenarios:
        instances = (
            [scenario]
            if seeds is None
            else [scenario.with_updates(seed=int(seed)) for seed in seeds]
        )
        for instance in instances:
            for heuristic in instance.heuristics:
                units.append(
                    WorkUnit(
                        scenario=instance,
                        heuristic=heuristic,
                        search_mode=search_mode,
                        max_candidates=max_candidates,
                        backend=backend,
                    )
                )
    return units


class CampaignRunner:
    """Execute campaign work units with caching and optional parallelism.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs serially in-process (the reference
        path), ``None``/``0`` uses every CPU.
    cache:
        Optional :class:`ResultCache`; hits skip the evaluator entirely.
    search_mode, max_candidates:
        Checkpoint-count search configuration forwarded to every unit.
    backend:
        Evaluation backend forwarded to every unit (``"auto"`` default);
        results are backend-agnostic, so this never enters cache keys.
    progress:
        ``None`` (silent), ``True`` (console reporter) or any object with
        ``start/update/finish``.
    journal:
        Optional :class:`~repro.runtime.journal.CampaignJournal` (or a path
        to one).  Completed unit outcomes are appended durably as they land
        and consulted *before* the cache on the next run, so an interrupted
        campaign resumes without recomputing — even with no cache at all.
    max_retries, retry_backoff, unit_timeout:
        Worker-supervision knobs forwarded to
        :func:`~repro.runtime.parallel.parallel_map`: pool-level retries per
        chunk, the exponential-backoff base between pool resets, and the
        optional per-unit wall-clock budget.
    quarantine:
        When true, a unit that keeps killing its worker (or times out, or
        raises) is quarantined instead of aborting the run: the remaining
        units complete, the failure lands in :attr:`failures` (and the
        journal), and the unit's row is simply absent from the output.
        Off by default — drivers that ``zip`` rows back onto their unit
        list need the one-row-per-unit invariant.

    The worker pool is created lazily on the first parallel batch and reused
    for the runner's lifetime, so a driver that issues several sweeps (e.g.
    ``all_figures``) pays worker start-up once.  Call :meth:`close` (or use
    the runner as a context manager) to release the pool.
    """

    def __init__(
        self,
        *,
        jobs: int | None = 1,
        cache: ResultCache | None = None,
        search_mode: str = "exhaustive",
        max_candidates: int = 30,
        progress: Any = None,
        backend: str | None = None,
        journal: CampaignJournal | str | None = None,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        unit_timeout: float | None = None,
        quarantine: bool = False,
    ) -> None:
        # Resolve (and thereby validate) the worker count and backend name
        # eagerly so that a bad --jobs / --backend value fails identically
        # on warm and cold caches.
        self.jobs = resolve_jobs(jobs)
        resolve_backend(backend)
        self.cache = cache
        self.search_mode = search_mode
        self.max_candidates = max_candidates
        self.backend = backend
        self.progress = coerce_progress(progress)
        self._owns_journal = journal is not None and not isinstance(
            journal, CampaignJournal
        )
        self.journal = CampaignJournal(journal) if self._owns_journal else journal
        self.max_retries = int(max_retries)
        self.retry_backoff = float(retry_backoff)
        self.unit_timeout = unit_timeout if unit_timeout is None else float(unit_timeout)
        self.quarantine = bool(quarantine)
        #: Quarantined units, accumulated across this runner's sweeps.
        self.failures: list[UnitFailure] = []
        self._pool: Any = None

    def close(self) -> None:
        """Shut down the worker pool (and a journal this runner opened)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._owns_journal and self.journal is not None:
            self.journal.close()

    def _reset_pool(self) -> None:
        if self._pool is not None:
            dispose_executor(self._pool)
            self._pool = None

    def _executor_factory(self, reset: bool) -> Any:
        """Pool accessor handed to :func:`parallel_map` for supervision."""
        if reset:
            self._reset_pool()
        return self._executor()

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _executor(self) -> Any:
        if self.jobs <= 1:
            return None
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_rows(
        self,
        scenarios: Iterable[Scenario],
        *,
        seeds: Sequence[int] | None = None,
        search_mode: str | None = None,
        max_candidates: int | None = None,
        backend: str | None = None,
    ) -> list[ResultRow]:
        """Run every unit of the scenarios; rows come back in unit order.

        ``search_mode`` / ``max_candidates`` / ``backend`` override the
        runner's defaults for this call, so one runner (and its worker
        pool) can serve sweeps with different configurations.
        """
        units = expand_work_units(
            scenarios,
            seeds=seeds,
            search_mode=search_mode if search_mode is not None else self.search_mode,
            max_candidates=(
                max_candidates if max_candidates is not None else self.max_candidates
            ),
            backend=backend if backend is not None else self.backend,
        )
        return self.run_units(units)

    def run_units(self, units: Sequence[WorkUnit]) -> list[ResultRow]:
        """Resolve units from the cache, compute the misses, keep the order."""
        return self._run_cached(
            units,
            key_fn=self._unit_key,
            solve_fn=_solve_unit,
            decode_fn=_row_from_outcome,
            encode_fn=_row_outcome,
        )

    def run_mc_units(self, units: Sequence[MonteCarloUnit]) -> list[dict[str, Any]]:
        """Run Monte-Carlo units (cache-aware); outcome dicts in unit order.

        Each outcome carries the analytical expectation of the solved
        schedule next to the Monte-Carlo summary statistics, which is what
        the robustness campaign consumes.  Cache hits skip both the solver
        and the simulation.
        """
        return self._run_cached(
            units,
            key_fn=self._mc_unit_key,
            solve_fn=_solve_mc_unit,
            decode_fn=lambda unit, outcome: dict(outcome),
            encode_fn=dict,
        )

    def _run_cached(
        self,
        units: Sequence[Any],
        *,
        key_fn: Callable[[Any], str],
        solve_fn: Callable[[Any], Any],
        decode_fn: Callable[[Any, dict], Any],
        encode_fn: Callable[[Any], dict],
    ) -> list[Any]:
        """Shared cache-then-fan-out loop of every unit type.

        ``key_fn`` keys a unit, ``solve_fn`` computes a miss (module-level,
        picklable), ``decode_fn`` rebuilds a result from a cached outcome,
        and ``encode_fn`` extracts the cache payload from a fresh result.
        Results come back in unit order; every fresh result is persisted the
        moment the parent receives it — journal first (durable), cache
        second — so an interrupted or partially failed sweep keeps
        everything it already paid for.  The journal is consulted *before*
        the cache: it is the authoritative record of this campaign, valid
        even when no cache is configured.
        """
        rows: list[Any] = [None] * len(units)
        pending: list[int] = []
        keys: dict[int, str] = {}
        dropped: set[int] = set()

        self.progress.start(len(units))
        try:
            done = 0
            use_keys = self.cache is not None or self.journal is not None
            if use_keys:
                for index, unit in enumerate(units):
                    key = key_fn(unit)
                    keys[index] = key
                    outcome = self.journal.get(key) if self.journal is not None else None
                    from_journal = outcome is not None
                    if outcome is None and self.cache is not None:
                        outcome = self.cache.get(key)
                    if outcome is not None:
                        rows[index] = decode_fn(unit, outcome)
                        if self.journal is not None and not from_journal:
                            # A cache hit still belongs in this campaign's
                            # durable record: resume must not depend on the
                            # cache file's continued existence.
                            self.journal.record(key, outcome)
                        if self.cache is not None and from_journal:
                            # And a journal replay warms the cache, so later
                            # campaigns benefit from the resumed work too.
                            self.cache.put(key, outcome)
                        done += 1
                        fault_point("campaign_unit", default="exit=137", unit=index)
                    else:
                        pending.append(index)
                self.progress.update(done, self._progress_info())
            else:
                pending = list(range(len(units)))

            if pending:
                done_base = done
                completed = 0

                def on_result(position: int, row: Any) -> None:
                    nonlocal completed
                    index = pending[position]
                    rows[index] = row
                    if use_keys:
                        outcome = encode_fn(row)
                        if self.journal is not None:
                            self.journal.record(keys[index], outcome)
                        if self.cache is not None:
                            self.cache.put(keys[index], outcome)
                    completed += 1
                    self.progress.update(done_base + completed, self._progress_info())
                    # The deterministic kill switch of the CI kill-resume
                    # gate: by default this exits hard (SIGKILL-alike),
                    # *after* the journal write — exactly the crash the
                    # journal exists to survive.
                    fault_point("campaign_unit", default="exit=137", unit=index)

                def on_failure(failure: WorkerFailure) -> None:
                    nonlocal completed
                    index = pending[failure.unit_index]
                    dropped.add(index)
                    self.failures.append(UnitFailure(unit=units[index], failure=failure))
                    if self.journal is not None:
                        self.journal.record_failure(
                            keys[index],
                            {
                                "kind": failure.kind,
                                "attempts": failure.attempts,
                                "cause_type": failure.cause_type,
                                "cause_message": failure.cause_message,
                            },
                        )
                    completed += 1
                    self.progress.update(done_base + completed, self._progress_info())

                try:
                    parallel_map(
                        solve_fn,
                        [units[index] for index in pending],
                        jobs=self.jobs,
                        on_result=on_result,
                        on_failure=on_failure,
                        quarantine=self.quarantine,
                        max_retries=self.max_retries,
                        retry_backoff=self.retry_backoff,
                        unit_timeout=self.unit_timeout,
                        executor_factory=(
                            self._executor_factory if self.jobs > 1 else None
                        ),
                    )
                except BaseException:
                    # A worker crash (e.g. BrokenProcessPool) can leave the
                    # pool unusable; drop it so the next batch on this
                    # runner starts fresh instead of failing forever.
                    self._reset_pool()
                    raise
        finally:
            # Always terminate the progress line, so an error message that
            # follows starts on a clean line.
            self.progress.finish()
        assert all(rows[i] is not None for i in range(len(units)) if i not in dropped)
        if dropped:
            return [rows[i] for i in range(len(units)) if i not in dropped]
        return rows

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _unit_key(self, unit: WorkUnit) -> str:
        # The unit's evaluation backend deliberately does not enter the key:
        # both backends compute the same quantity (the equivalence property
        # tests pin the bound), so a cache warmed by either serves both.
        workflow, fingerprint = _memoized_instance(unit.scenario, digest=True)
        search_mode, max_candidates = _normalized_search(
            unit.heuristic, workflow.n_tasks, unit.search_mode, unit.max_candidates
        )
        return scenario_unit_key(
            workflow_digest=fingerprint,
            platform=unit.scenario.platform,
            heuristic=unit.heuristic,
            search_mode=search_mode,
            max_candidates=max_candidates,
            seed=unit.scenario.seed,
        )

    def _mc_unit_key(self, unit: MonteCarloUnit) -> str:
        # Backend-agnostic like _unit_key — here that is exact rather than
        # within floating-point noise: the two Monte-Carlo engines produce
        # bit-for-bit identical samples.
        workflow, fingerprint = _memoized_instance(unit.scenario, digest=True)
        search_mode, max_candidates = _normalized_search(
            unit.heuristic, workflow.n_tasks, unit.search_mode, unit.max_candidates
        )
        return robustness_unit_key(
            workflow_digest=fingerprint,
            platform=unit.scenario.platform,
            heuristic=unit.heuristic,
            search_mode=search_mode,
            max_candidates=max_candidates,
            seed=unit.scenario.seed,
            failure_spec=unit.resolved_failure_spec(),
            n_runs=unit.n_runs,
            mc_seed=unit.mc_seed,
            checkpoint_overlap=unit.checkpoint_overlap,
        )

    def _progress_info(self) -> str:
        if self.cache is None:
            return ""
        stats = self.cache.stats
        return f"cache {stats.hits} hits / {stats.misses} misses"


def evaluate_schedule_cached(
    schedule: Schedule,
    platform: Platform,
    cache: ResultCache,
    *,
    backend: str | None = None,
) -> MakespanEvaluation:
    """Content-addressed wrapper around the Theorem-3 evaluator.

    Useful when pricing the same schedule on many platforms (or repeatedly
    inside a refinement loop) with persistence across runs.  The full
    per-position expectation vector is cached, so reconstruction is exact.
    (Only the plain evaluation is supported; the event-probability table of
    ``keep_probabilities`` is quadratic and deliberately not cached.)

    ``backend`` only selects how a miss is computed — the key is
    backend-agnostic, so entries warmed by one backend serve the other.
    """
    key = evaluation_key(schedule, platform, kind="expected-makespan")
    payload = cache.get(key)
    if payload is not None:
        return MakespanEvaluation(
            expected_makespan=float(payload["expected_makespan"]),
            expected_task_times=tuple(payload["expected_task_times"]),
            failure_free_makespan=float(payload["failure_free_makespan"]),
            failure_free_work=float(payload["failure_free_work"]),
        )
    evaluation = evaluate_schedule(schedule, platform, backend=backend)
    cache.put(
        key,
        {
            "expected_makespan": evaluation.expected_makespan,
            "expected_task_times": list(evaluation.expected_task_times),
            "failure_free_makespan": evaluation.failure_free_makespan,
            "failure_free_work": evaluation.failure_free_work,
        },
    )
    return evaluation


def run_monte_carlo_cached(
    schedule: Schedule,
    platform: Platform,
    cache: ResultCache,
    *,
    n_runs: int = 1000,
    seed: int = 0,
    failure_spec: dict[str, Any] | None = None,
    checkpoint_overlap: float = 0.0,
    backend: str | None = None,
) -> "MonteCarloSummary":
    """Content-addressed wrapper around :func:`repro.simulation.run_monte_carlo`.

    The key embeds the failure-law spec, replica count, seed and
    replica-stream scheme (:data:`repro.runtime.keys.MC_RNG_SCHEME`); the
    individual samples are not cached, only the summary statistics.
    ``backend`` selects how a miss is computed — the engines are bit-for-bit
    identical, so the key is backend-agnostic.
    """
    import numpy as np

    from ..simulation import MonteCarloSummary, run_monte_carlo
    from ..simulation.failures import failure_model_for, failure_model_from_spec

    if failure_spec is not None:
        spec = dict(failure_spec)
        model = failure_model_from_spec(spec)
    else:
        model = failure_model_for(platform)
        spec = model.spec()
    key = monte_carlo_key(
        schedule,
        platform,
        failure_spec=spec,
        n_runs=n_runs,
        seed=seed,
        checkpoint_overlap=checkpoint_overlap,
    )
    payload = cache.get(key)
    if payload is not None:
        return MonteCarloSummary(
            n_runs=int(payload["n_runs"]),
            mean_makespan=float(payload["mean_makespan"]),
            std_makespan=float(payload["std_makespan"]),
            min_makespan=float(payload["min_makespan"]),
            max_makespan=float(payload["max_makespan"]),
            mean_failures=float(payload["mean_failures"]),
        )
    summary = run_monte_carlo(
        schedule,
        platform,
        n_runs=n_runs,
        rng=np.random.default_rng(np.random.SeedSequence(stable_seed_words("mc-cached", seed))),
        failure_model=model,
        checkpoint_overlap=checkpoint_overlap,
        backend=backend,
    )
    cache.put(
        key,
        {
            "n_runs": summary.n_runs,
            "mean_makespan": summary.mean_makespan,
            "std_makespan": summary.std_makespan,
            "min_makespan": summary.min_makespan,
            "max_makespan": summary.max_makespan,
            "mean_failures": summary.mean_failures,
        },
    )
    return summary
