"""Result cache: in-memory LRU plus optional sqlite-backed persistence.

The cache maps content-addressed keys (see :mod:`repro.runtime.keys`) to
JSON-serializable payloads.  Two layers compose:

* :class:`LRUCache` — a bounded in-memory store with least-recently-used
  eviction; every campaign run gets one even without persistence, so a
  repeated sweep inside one process never recomputes a row;
* :class:`DiskCache` — an sqlite3 file that survives the process, making
  warm re-runs of a whole figure sweep free across sessions.  Lifetime
  hit/miss/put counters are persisted alongside the entries so that
  ``repro cache stats`` can report them later.

:class:`ResultCache` is the façade the runtime uses: reads check memory
first, then disk (promoting disk hits to memory); writes go to both.  Only
the parent *process* of a parallel campaign touches the cache — workers just
compute — but within that process the cache is thread-safe: the service
daemon's worker threads hammer one shared cache concurrently.  Each thread
gets its own sqlite connection (sqlite connections are not safely shareable
across threads, and serializing every lookup through one connection would
defeat the WAL's concurrent readers), while the LRU bookkeeping and the
hit/miss counters sit behind locks.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any
from urllib.parse import quote

import sqlite3

from ..core.hashing import canonical_json
from .faults import fault_point

logger = logging.getLogger("repro.runtime.cache")

__all__ = [
    "CacheStats",
    "LRUCache",
    "DiskCache",
    "ResultCache",
    "read_disk_stats",
]


def _empty_counters() -> dict[str, int]:
    """The persisted counter set, in one place (see also ``repro cache stats``)."""
    return {"hits": 0, "misses": 0, "puts": 0}


def _merge_counter_rows(rows: Any) -> dict[str, int]:
    """Fold ``meta``-table (key, value) rows onto the zero counters."""
    counters = _empty_counters()
    for key, value in rows:
        counters[key] = int(value)
    return counters


@dataclass
class CacheStats:
    """Hit/miss/put counters of one cache (or one session of it)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view used by reports and the CLI."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` evicts the stalest entry once
    ``maxsize`` is exceeded.  ``maxsize <= 0`` disables the bound.
    Thread-safe: recency bookkeeping and the counters mutate under one lock
    (an OrderedDict ``move_to_end`` racing a ``popitem`` corrupts the dict).
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = int(maxsize)
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> Any | None:
        """Value stored under ``key``, or ``None``; refreshes recency."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value``, evicting the least recently used entry if full."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stats.puts += 1
            if self.maxsize > 0:
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        with self._lock:
            self._entries.clear()


class DiskCache:
    """Persistent key/value store backed by one sqlite3 file.

    Values are stored as canonical JSON text.  Lifetime counters live in a
    ``meta`` table, accumulated in memory and flushed on :meth:`close`.

    Thread-safe by *one connection per thread*: sqlite connections must not
    be shared across threads mid-statement, and a single serialized
    connection would also make every worker thread of the service daemon
    queue behind one reader.  Each thread lazily opens its own connection
    (WAL mode: many concurrent readers, writers serialized by sqlite with a
    busy timeout), while the in-memory counter bookkeeping sits behind a
    lock.  :meth:`close` closes every connection the cache opened.
    """

    #: Seconds a writer waits for sqlite's write lock before failing; far
    #: beyond any realistic commit time, so concurrent writers queue instead
    #: of raising ``database is locked``.
    BUSY_TIMEOUT = 30.0

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._pending = _empty_counters()
        self._lock = threading.RLock()
        self._local = threading.local()
        self._connections: list[sqlite3.Connection] = []
        self._closed = False
        # Bumped whenever a corrupt file is quarantined and rebuilt; threads
        # holding a connection to the quarantined file reconnect lazily.
        self._generation = 0
        # The first connection skips the pragmas until the file is validated:
        # even PRAGMA journal_mode=WAL rewrites a foreign database's header.
        conn = self._connect(apply_pragmas=False)
        # Refuse to adopt a foreign database: switching its journal mode and
        # injecting our tables would corrupt-by-surprise whatever application
        # owns it.  An empty or repro-owned file proceeds.  A file sqlite
        # cannot even read is different: that is *our* cache gone bad (a
        # torn write, a half-copied file), and a bad cache must never kill a
        # campaign — quarantine it and start fresh.
        try:
            fault_point(
                "cache_open", default="raise=DatabaseError", path=str(self.path)
            )
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            foreign = False
            if tables:
                if "entries" not in tables:
                    foreign = True
                else:
                    # A coincidentally named 'entries' table in someone
                    # else's database must be refused too: check the schema.
                    columns = {
                        row[1]
                        for row in conn.execute("PRAGMA table_info(entries)")
                    }
                    foreign = columns != {"key", "value", "created"}
        except sqlite3.DatabaseError as exc:
            conn = self._quarantine_and_rebuild(exc)
            foreign = False
        if foreign:
            self.close()
            raise ValueError(f"{self.path} exists and is not a repro result cache")
        # Entries are committed one by one so an interrupted sweep keeps what
        # it already computed; WAL + synchronous=NORMAL keeps those commits
        # from paying a full fsync each (safe: worst case on power loss is a
        # recomputable cache entry).
        self._apply_pragmas(conn)
        self._create_tables(conn)

    @staticmethod
    def _create_tables(conn: sqlite3.Connection) -> None:
        with conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "key TEXT PRIMARY KEY, value TEXT NOT NULL, created REAL NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )

    def _quarantine_and_rebuild(
        self, exc: BaseException, *, generation: int | None = None
    ) -> sqlite3.Connection:
        """Move the unreadable cache file aside and start an empty one.

        Returns the calling thread's connection to the fresh file.  Safe to
        call from any thread at any time: ``generation`` (captured before
        the failing operation) guards the rename, so two threads tripping
        over the same corruption rebuild once, and every other thread
        reconnects lazily through :attr:`_conn`.
        """
        with self._lock:
            if generation is not None and generation != self._generation:
                stale = False  # another thread already rebuilt
            else:
                stale = True
                self._generation += 1
                connections, self._connections = self._connections, []
        if not stale:
            return self._conn
        for conn in connections:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()
        if self.path.exists():
            stamp = int(time.time())
            quarantined = self.path.with_name(f"{self.path.name}.corrupt-{stamp}")
            suffix = 0
            while quarantined.exists():
                suffix += 1
                quarantined = self.path.with_name(
                    f"{self.path.name}.corrupt-{stamp}.{suffix}"
                )
            self.path.rename(quarantined)
            # WAL sidecars belong to the quarantined file; left behind they
            # would poison the rebuilt database.
            for sidecar in ("-wal", "-shm"):
                sidecar_path = self.path.with_name(self.path.name + sidecar)
                if sidecar_path.exists():
                    sidecar_path.rename(
                        quarantined.with_name(quarantined.name + sidecar)
                    )
            logger.warning(
                "result cache %s is corrupt (%s); quarantined it as %s and "
                "starting an empty cache — cached results will be recomputed",
                self.path,
                exc,
                quarantined.name,
            )
        else:  # pragma: no cover - corruption without a file is exotic
            logger.warning(
                "result cache %s is unreadable (%s); starting an empty cache",
                self.path,
                exc,
            )
        with self._lock:
            self._pending = _empty_counters()
        conn = self._connect()
        self._create_tables(conn)
        return conn

    @staticmethod
    def _apply_pragmas(conn: sqlite3.Connection) -> None:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")

    def _connect(self, *, apply_pragmas: bool = True) -> sqlite3.Connection:
        """Open (and register) this thread's connection."""
        # check_same_thread=False so close() can reap connections opened by
        # worker threads that have since exited; every *use* still happens on
        # the opening thread via the threading.local lookup.
        conn = sqlite3.connect(
            str(self.path), timeout=self.BUSY_TIMEOUT, check_same_thread=False
        )
        if apply_pragmas:
            self._apply_pragmas(conn)
        with self._lock:
            if self._closed:
                conn.close()
                raise ValueError(f"cache {self.path} is closed")
            self._connections.append(conn)
            self._local.generation = self._generation
        self._local.conn = conn
        return conn

    @property
    def _conn(self) -> sqlite3.Connection:
        """The calling thread's connection, opened on first use.

        A thread whose connection predates a corruption rebuild (its
        generation is stale) transparently reconnects to the fresh file.
        """
        conn = getattr(self._local, "conn", None)
        if conn is None or getattr(self._local, "generation", -1) != self._generation:
            conn = self._connect()
        return conn

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()
        return int(row[0])

    def get(self, key: str) -> Any | None:
        generation = self._generation
        try:
            fault_point("cache_read", default="raise=DatabaseError", key=key)
            row = self._conn.execute(
                "SELECT value FROM entries WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.DatabaseError as exc:
            # Mid-session corruption (torn page, truncated file): quarantine
            # and report a miss — the unit recomputes, the campaign lives.
            self._quarantine_and_rebuild(exc, generation=generation)
            row = None
        with self._lock:
            if row is None:
                self._pending["misses"] += 1
            else:
                self._pending["hits"] += 1
        return None if row is None else json.loads(row[0])

    def put(self, key: str, value: Any) -> None:
        payload = canonical_json(value)
        generation = self._generation
        try:
            self._store(self._conn, key, payload)
        except sqlite3.DatabaseError as exc:
            # Retry once into the rebuilt cache: the freshly computed result
            # should not be lost to a corrupt file.
            conn = self._quarantine_and_rebuild(exc, generation=generation)
            self._store(conn, key, payload)
        with self._lock:
            self._pending["puts"] += 1

    @staticmethod
    def _store(conn: sqlite3.Connection, key: str, payload: str) -> None:
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO entries (key, value, created) VALUES (?, ?, ?)",
                (key, payload, time.time()),
            )

    def count_hit(self) -> None:
        """Record a lookup answered by a faster layer on top of this one.

        :class:`ResultCache` serves repeat lookups from its memory layer
        without touching the disk; calling this keeps the persisted lifetime
        counters equal to what the whole cache actually answered.
        """
        with self._lock:
            self._pending["hits"] += 1

    def _flush_counters(self) -> None:
        # Counters are accumulated in memory so the warm hit path stays
        # read-only on disk; one transaction per session persists them.
        with self._lock:
            updates = [(k, v) for k, v in self._pending.items() if v]
            self._pending = _empty_counters()
        if not updates:
            return
        conn = self._conn
        with conn:
            for counter, amount in updates:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES (?, ?) "
                    "ON CONFLICT(key) DO UPDATE SET value = CAST(value AS INTEGER) + ?",
                    (counter, str(amount), amount),
                )

    def counters(self) -> dict[str, int]:
        """Lifetime counters: the persisted totals plus this session's."""
        rows = self._conn.execute("SELECT key, value FROM meta").fetchall()
        counters = _merge_counter_rows(rows)
        with self._lock:
            for key, value in self._pending.items():
                counters[key] += value
        return counters

    def clear(self) -> int:
        """Delete every entry and reset the lifetime counters.

        Returns how many entries were removed.  Counters go too: clearing
        is how a user starts measurements fresh, and stale hit/miss totals
        over an empty store would be misleading.
        """
        count = len(self)
        conn = self._conn
        with conn:
            conn.execute("DELETE FROM entries")
            conn.execute("DELETE FROM meta")
        with self._lock:
            self._pending = _empty_counters()
        return count

    def close(self) -> None:
        """Flush counters and close every connection (idempotent).

        Call only once no other thread is using the cache — closing a
        connection out from under a running statement is exactly the misuse
        the per-thread connections exist to prevent.
        """
        with self._lock:
            if self._closed:
                return
            # _flush_counters needs a live connection; mark closed only
            # after it ran.
        try:
            self._flush_counters()
        except sqlite3.DatabaseError as exc:
            # Counters are best-effort bookkeeping; a cache gone bad right
            # at shutdown must not turn a successful campaign into a crash.
            logger.warning(
                "could not persist cache counters for %s (%s)", self.path, exc
            )
        finally:
            with self._lock:
                self._closed = True
                connections, self._connections = self._connections, []
            for conn in connections:
                conn.close()
            self._local = threading.local()


class ResultCache:
    """Two-level (memory + optional disk) cache used by the campaign runtime.

    Parameters
    ----------
    maxsize:
        Bound of the in-memory LRU layer (``<= 0`` for unbounded).
    path:
        Optional sqlite file for persistence; ``None`` keeps the cache purely
        in-memory.

    ``stats`` counts this session only; the disk layer additionally persists
    lifetime counters for ``repro cache stats``.
    """

    def __init__(self, *, maxsize: int = 4096, path: str | Path | None = None) -> None:
        self.memory = LRUCache(maxsize=maxsize)
        self.disk: DiskCache | None = DiskCache(path) if path is not None else None
        self.stats = CacheStats()
        # ``stats`` is a plain mutable dataclass shared by every worker
        # thread of the service daemon; += on its fields is not atomic.
        self._stats_lock = threading.Lock()

    @classmethod
    def open(cls, path: str | Path | None = None, *, maxsize: int = 4096) -> "ResultCache":
        """Convenience constructor mirroring the CLI's ``--cache PATH`` flag."""
        return cls(maxsize=maxsize, path=path)

    def __enter__(self) -> "ResultCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __len__(self) -> int:
        if self.disk is not None:
            return len(self.disk)
        return len(self.memory)

    def get(self, key: str) -> Any | None:
        """Look up ``key`` in memory, then on disk (promoting disk hits)."""
        value = self.memory.get(key)
        if value is not None:
            with self._stats_lock:
                self.stats.hits += 1
            if self.disk is not None:
                self.disk.count_hit()
            return value
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not None:
                self.memory.put(key, value)
                with self._stats_lock:
                    self.stats.hits += 1
                return value
        with self._stats_lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, value: Any) -> None:
        """Store a JSON-serializable value in every layer."""
        self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)
        with self._stats_lock:
            self.stats.puts += 1

    def close(self) -> None:
        if self.disk is not None:
            self.disk.close()


def read_disk_stats(path: str | Path) -> dict[str, Any]:
    """Summary of a persistent cache file (for ``repro cache stats``).

    Opens the file strictly read-only: an inspection command must never
    create tables in (or switch the journal mode of) a file that turns out
    not to be a repro cache.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no cache file at {path}")
    # Percent-encode the path: '#' / '?' / '%' are URI metacharacters and
    # would make sqlite silently open a different file.
    uri = f"file:{quote(str(path))}?mode=ro"
    conn = sqlite3.connect(uri, uri=True)
    try:
        try:
            entries = int(conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0])
            rows = conn.execute("SELECT key, value FROM meta").fetchall()
        except sqlite3.DatabaseError as exc:
            raise ValueError(f"{path} is not a repro result cache ({exc})") from exc
    finally:
        conn.close()
    counters = _merge_counter_rows(rows)
    lookups = counters["hits"] + counters["misses"]
    return {
        "path": str(path),
        "entries": entries,
        "size_bytes": path.stat().st_size,
        "hits": counters["hits"],
        "misses": counters["misses"],
        "puts": counters["puts"],
        "hit_rate": counters["hits"] / lookups if lookups else 0.0,
    }
