"""Shared bounded-exponential-backoff policy.

One retry schedule, three consumers: the worker-pool supervisor of
:mod:`repro.runtime.parallel` (sleeps between pool resets), the cache-net
client of :mod:`repro.runtime.cachenet` (sleeps between reconnect
attempts), and the fabric worker's control-plane client.  Factoring the
schedule into a policy object keeps the three consistent and makes the
schedule testable in isolation.

The schedule is the classic capped exponential::

    delay(k) = min(base_delay * 2**(k - 1), max_delay)      # k-th failure

optionally stretched by *deterministic* jitter: the jitter factor for the
``k``-th failure is drawn from a :class:`random.Random` seeded with
``(seed, k)``, so two runs of the same campaign back off identically —
reproducibility extends to the failure paths — while distinct workers
(distinct seeds) still decorrelate their retries.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with optional deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Total tries an operation gets (first attempt included).  ``delay``
        itself accepts any failure count — the supervisor's reset loop is
        bounded per chunk, not globally — but clients that own their retry
        loop iterate ``range(1, max_attempts + 1)``.
    base_delay:
        Backoff after the first failure (seconds).  ``0`` disables sleeping.
    max_delay:
        Cap on any single backoff sleep (seconds).
    jitter:
        Fraction in ``[0, 1]``: the ``k``-th delay is stretched by up to
        ``jitter * delay`` (never past ``max_delay``).  ``0`` reproduces the
        exact legacy supervisor schedule.
    seed:
        Seed of the jitter stream; give each worker its own so their retry
        storms decorrelate without losing run-to-run determinism.
    """

    max_attempts: int = 3
    base_delay: float = 0.5
    max_delay: float = 30.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @property
    def retries(self) -> int:
        """Retries beyond the first attempt."""
        return self.max_attempts - 1

    def delay(self, failures: int) -> float:
        """Backoff (seconds) after the ``failures``-th consecutive failure."""
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if self.base_delay <= 0:
            return 0.0
        delay = min(self.base_delay * (2.0 ** (failures - 1)), self.max_delay)
        if self.jitter > 0.0:
            # Seeded per (policy seed, failure ordinal): deterministic across
            # runs, distinct across workers and across successive failures.
            stretch = random.Random(f"repro-retry:{self.seed}:{failures}").random()
            delay = min(delay * (1.0 + self.jitter * stretch), self.max_delay)
        return delay

    def delays(self) -> list[float]:
        """The full schedule: one delay per allowed retry."""
        return [self.delay(k) for k in range(1, self.max_attempts)]

    def sleep(
        self, failures: int, *, sleep: Callable[[float], None] = time.sleep
    ) -> float:
        """Sleep out the backoff for the ``failures``-th failure; returns it."""
        delay = self.delay(failures)
        if delay > 0:
            sleep(delay)
        return delay
