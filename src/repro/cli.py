"""Command-line interface.

Exposes the library's main workflows as sub-commands so that a scheduling study
can be scripted without writing Python:

* ``repro-workflows generate`` — generate a workflow instance (Pegasus-like
  family or generic shape) and write it to JSON;
* ``repro-workflows solve`` — run one of the paper's heuristics (optionally
  followed by local-search refinement) and write the schedule to JSON;
* ``repro-workflows evaluate`` — expected makespan of a schedule (Theorem 3);
* ``repro-workflows analyse`` — expected-time breakdown and checkpoint utilities;
* ``repro-workflows simulate`` — Monte-Carlo fault-injection estimate;
* ``repro-workflows figures`` — regenerate the data behind the paper's figures.

Every sub-command prints a short human-readable report to stdout; machine
consumable artefacts (workflows, schedules, figure data) are written to files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .analysis import analyse_schedule, checkpoint_utilities
from .core.evaluator import evaluate_schedule
from .core.platform import Platform
from .experiments import all_figures, save_rows_csv
from .heuristics import HEURISTIC_NAMES, solve_heuristic
from .heuristics.refinement import local_search_checkpoints
from .simulation import run_monte_carlo
from .workflows import generators, pegasus
from .workflows.serialization import (
    load_schedule,
    load_workflow,
    save_schedule,
    save_workflow,
)

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-workflows",
        description="Scheduling computational workflows on failure-prone platforms "
        "(reproduction of Aupy, Benoit, Casanova, Robert — IPDPS 2015).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # generate ----------------------------------------------------------
    gen = subparsers.add_parser("generate", help="generate a workflow instance")
    gen.add_argument("--family", default="montage",
                     help="montage, cybershake, ligo, genome, chain, fork, join, layered")
    gen.add_argument("--tasks", type=int, default=100, help="number of tasks")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--checkpoint-mode", choices=("proportional", "constant"), default="proportional")
    gen.add_argument("--checkpoint-factor", type=float, default=0.1)
    gen.add_argument("--checkpoint-value", type=float, default=0.0)
    gen.add_argument("--output", "-o", required=True, help="output JSON path")

    # solve -------------------------------------------------------------
    solve = subparsers.add_parser("solve", help="run a scheduling heuristic")
    solve.add_argument("--workflow", required=True, help="workflow JSON produced by 'generate'")
    solve.add_argument("--heuristic", default="DF-CkptW",
                       help=f"one of {', '.join(HEURISTIC_NAMES)}")
    solve.add_argument("--failure-rate", type=float, default=1e-3, help="platform lambda (per second)")
    solve.add_argument("--downtime", type=float, default=0.0, help="downtime after each failure (s)")
    solve.add_argument("--seed", type=int, default=0, help="seed for the RF linearization")
    solve.add_argument("--refine", action="store_true",
                       help="apply local-search refinement to the checkpoint set")
    solve.add_argument("--output", "-o", help="write the schedule to this JSON path")

    # evaluate ----------------------------------------------------------
    evaluate = subparsers.add_parser("evaluate", help="expected makespan of a schedule")
    evaluate.add_argument("--schedule", required=True, help="schedule JSON produced by 'solve'")
    evaluate.add_argument("--failure-rate", type=float, default=1e-3)
    evaluate.add_argument("--downtime", type=float, default=0.0)

    # analyse -----------------------------------------------------------
    analyse = subparsers.add_parser("analyse", help="expected-time breakdown of a schedule")
    analyse.add_argument("--schedule", required=True)
    analyse.add_argument("--failure-rate", type=float, default=1e-3)
    analyse.add_argument("--downtime", type=float, default=0.0)
    analyse.add_argument("--top", type=int, default=5, help="number of worst tasks to list")
    analyse.add_argument("--utilities", action="store_true",
                         help="also report the exact utility of every checkpoint")

    # simulate ----------------------------------------------------------
    simulate = subparsers.add_parser("simulate", help="Monte-Carlo estimate of a schedule")
    simulate.add_argument("--schedule", required=True)
    simulate.add_argument("--failure-rate", type=float, default=1e-3)
    simulate.add_argument("--downtime", type=float, default=0.0)
    simulate.add_argument("--runs", type=int, default=1000)
    simulate.add_argument("--seed", type=int, default=0)

    # figures -----------------------------------------------------------
    figures = subparsers.add_parser("figures", help="regenerate the paper's figure data")
    figures.add_argument("--preset", choices=("smoke", "paper"), default="smoke")
    figures.add_argument("--outdir", default="figure_data")
    figures.add_argument("--seed", type=int, default=0)

    return parser


# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
_GENERIC_FAMILIES = {
    "chain": lambda n, seed: generators.chain_workflow(n, seed=seed),
    "fork": lambda n, seed: generators.fork_workflow(max(1, n - 1), seed=seed),
    "join": lambda n, seed: generators.join_workflow(max(1, n - 1), seed=seed),
    "layered": lambda n, seed: generators.layered_workflow(max(1, n // 5), 5, seed=seed),
    "random": lambda n, seed: generators.random_dag_workflow(n, seed=seed),
}


def _build_workflow(args: argparse.Namespace):
    family = args.family.strip().lower()
    if family in pegasus.WORKFLOW_FAMILIES or family == "epigenomics":
        workflow = pegasus.generate(family, args.tasks, seed=args.seed)
    elif family in _GENERIC_FAMILIES:
        workflow = _GENERIC_FAMILIES[family](args.tasks, args.seed)
    else:
        raise SystemExit(
            f"unknown family {args.family!r}; expected one of "
            f"{', '.join(sorted(set(pegasus.WORKFLOW_FAMILIES) | set(_GENERIC_FAMILIES)))}"
        )
    return workflow.with_checkpoint_costs(
        mode=args.checkpoint_mode,
        factor=args.checkpoint_factor,
        value=args.checkpoint_value,
    )


def _platform(args: argparse.Namespace) -> Platform:
    return Platform.from_platform_rate(args.failure_rate, downtime=args.downtime)


def _cmd_generate(args: argparse.Namespace) -> int:
    workflow = _build_workflow(args)
    path = save_workflow(workflow, args.output)
    print(f"wrote {path} ({workflow.n_tasks} tasks, {workflow.n_edges} edges, "
          f"total work {workflow.total_weight:.1f}s)")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    workflow = load_workflow(args.workflow)
    platform = _platform(args)
    result = solve_heuristic(workflow, platform, args.heuristic, rng=args.seed)
    schedule = result.schedule
    line = (f"{args.heuristic}: E[makespan] = {result.expected_makespan:.2f}s, "
            f"T/T_inf = {result.overhead_ratio:.3f}, "
            f"{result.checkpoint_count}/{workflow.n_tasks} checkpoints")
    if args.refine:
        refined = local_search_checkpoints(schedule, platform)
        schedule = refined.schedule
        line += (f"; after refinement: {refined.expected_makespan:.2f}s "
                 f"(-{100 * refined.relative_improvement:.2f}%)")
    print(line)
    if args.output:
        path = save_schedule(schedule, args.output)
        print(f"wrote {path}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.schedule)
    platform = _platform(args)
    evaluation = evaluate_schedule(schedule, platform)
    print(json.dumps(
        {
            "expected_makespan": evaluation.expected_makespan,
            "failure_free_makespan": evaluation.failure_free_makespan,
            "failure_free_work": evaluation.failure_free_work,
            "overhead_ratio": evaluation.overhead_ratio,
            "n_checkpointed": schedule.n_checkpointed,
        },
        indent=2,
    ))
    return 0


def _cmd_analyse(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.schedule)
    platform = _platform(args)
    breakdown = analyse_schedule(schedule, platform)
    print(breakdown.render(top=args.top))
    if args.utilities:
        print("\ncheckpoint utilities (expected seconds saved by each checkpoint):")
        for utility in sorted(checkpoint_utilities(schedule, platform),
                              key=lambda u: -u.utility):
            task = schedule.workflow.task(utility.task_index)
            print(f"  {task.name:<16} {utility.utility:+10.2f}s")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.schedule)
    platform = _platform(args)
    summary = run_monte_carlo(schedule, platform, n_runs=args.runs, rng=args.seed)
    low, high = summary.ci95
    print(f"{args.runs} simulated executions: mean {summary.mean_makespan:.2f}s, "
          f"95% CI [{low:.2f}, {high:.2f}], "
          f"min {summary.min_makespan:.2f}s, max {summary.max_makespan:.2f}s, "
          f"{summary.mean_failures:.2f} failures/run")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    results = all_figures(preset=args.preset, seed=args.seed)
    for name, result in results.items():
        path = save_rows_csv(list(result.rows), outdir / f"{name}.csv")
        print(f"wrote {path} ({len(result.rows)} rows) — {result.description}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "solve": _cmd_solve,
    "evaluate": _cmd_evaluate,
    "analyse": _cmd_analyse,
    "simulate": _cmd_simulate,
    "figures": _cmd_figures,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
