"""Command-line interface.

Exposes the library's main workflows as sub-commands so that a scheduling study
can be scripted without writing Python:

* ``repro generate`` — generate a workflow instance (Pegasus-like family or
  generic shape) and write it to JSON;
* ``repro solve`` — run one of the paper's heuristics (optionally followed by
  local-search refinement) and write the schedule to JSON;
* ``repro evaluate`` — expected makespan of a schedule (Theorem 3);
* ``repro analyse`` — expected-time breakdown and checkpoint utilities;
* ``repro simulate`` — Monte-Carlo fault-injection estimate;
* ``repro robustness`` — failure-law robustness campaign: sweep failure law
  x shape parameter x scenario grid, validate the analytical backend
  against simulation confidence intervals, emit a JSON report (and figure);
* ``repro figures`` — regenerate the data behind the paper's figures;
* ``repro campaign`` — multi-seed sweep with aggregation and error bars over
  a family x size x downtime x processors grid (``--downtimes`` /
  ``--processors`` open the platform axes; ``--preset lambda-downtime`` is
  the lambda x D sweep); ``--shard k/N`` runs one deterministic shard of the
  grid and ``repro campaign merge`` re-assembles shard CSVs into the exact
  unsharded report;
* ``repro serve`` — long-running HTTP/JSON service exposing solve / evaluate
  / analyse with cross-request batching and Prometheus-style ``/metrics``
  (see :mod:`repro.service`);
* ``repro cache`` — inspect / clear the persistent result cache.

``repro --json <command> ...`` switches failures to a machine-readable JSON
object on stderr (same shape as the service's error responses); ``repro
--version`` reports the package version from the installed metadata.

The single-platform commands (``solve`` / ``evaluate`` / ``analyse`` /
``simulate``) describe the platform with the same ``--failure-rate`` /
``--downtime`` / ``--processors`` triple scenarios use, so a direct
evaluation and the equivalent campaign scenario price the same platform.

The evaluation-heavy sub-commands accept ``--backend auto|python|numpy`` to
pick the Theorem-3 evaluation backend (default ``auto``: NumPy when it is
importable and the instance is large enough, Python otherwise; the
``REPRO_EVAL_BACKEND`` environment variable overrides the default).

``figures`` and ``campaign`` accept ``--jobs N`` (worker processes) and
``--cache PATH`` (persistent result cache); both route through the campaign
runtime of :mod:`repro.runtime`.  Every sub-command prints a short
human-readable report to stdout; machine consumable artefacts (workflows,
schedules, figure data) are written to files.
"""

from __future__ import annotations

import argparse
import json
import os
import sqlite3
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Sequence

from . import __version__
from .analysis import analyse_schedule, checkpoint_utilities
from .core.backend import BACKEND_REGISTRY
from .core.evaluator import evaluate_schedule
from .core.platform import Platform, PlatformSpec
from .experiments import (
    CampaignResult,
    all_figures,
    lambda_downtime_grid,
    parse_shard,
    plot_robustness,
    read_shard_marker,
    row_identity,
    rows_from_csv,
    run_campaign,
    run_robustness,
    save_robustness_report,
    save_rows_csv,
    scenario_grid,
)
from .heuristics import (
    HEURISTIC_NAMES,
    candidate_counts,
    parse_heuristic_name,
    solve_heuristic,
)
from .runtime import CampaignJournal, DiskCache, ResultCache, read_disk_stats, resolve_jobs
from .heuristics.refinement import local_search_checkpoints
from .simulation import run_monte_carlo
from .workflows import generators, pegasus
from .workflows.serialization import (
    load_schedule,
    load_workflow,
    save_schedule,
    save_workflow,
)

__all__ = ["main", "build_parser"]


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scheduling computational workflows on failure-prone platforms "
        "(reproduction of Aupy, Benoit, Casanova, Robert — IPDPS 2015).",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_errors",
        help="report failures as a JSON object on stderr (machine-parseable "
             "errors for service clients and benchmarks)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # generate ----------------------------------------------------------
    gen = subparsers.add_parser("generate", help="generate a workflow instance")
    gen.add_argument("--family", default="montage",
                     help="montage, cybershake, ligo, genome, chain, fork, join, layered")
    gen.add_argument("--tasks", type=int, default=100, help="number of tasks")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--checkpoint-mode", choices=("proportional", "constant"), default="proportional")
    gen.add_argument("--checkpoint-factor", type=float, default=0.1)
    gen.add_argument("--checkpoint-value", type=float, default=0.0)
    gen.add_argument("--output", "-o", required=True, help="output JSON path")

    # solve -------------------------------------------------------------
    solve = subparsers.add_parser("solve", help="run a scheduling heuristic")
    solve.add_argument("--workflow", required=True, help="workflow JSON produced by 'generate'")
    solve.add_argument("--heuristic", default="DF-CkptW",
                       help=f"one of {', '.join(HEURISTIC_NAMES)}")
    _add_platform_arguments(solve)
    solve.add_argument("--seed", type=int, default=0, help="seed for the RF linearization")
    solve.add_argument("--refine", action="store_true",
                       help="apply local-search refinement to the checkpoint set")
    solve.add_argument("--output", "-o", help="write the schedule to this JSON path")
    _add_backend_argument(solve)

    # evaluate ----------------------------------------------------------
    evaluate = subparsers.add_parser("evaluate", help="expected makespan of a schedule")
    evaluate.add_argument("--schedule", required=True, help="schedule JSON produced by 'solve'")
    _add_platform_arguments(evaluate)
    _add_backend_argument(evaluate)

    # analyse -----------------------------------------------------------
    analyse = subparsers.add_parser("analyse", help="expected-time breakdown of a schedule")
    analyse.add_argument("--schedule", required=True)
    _add_platform_arguments(analyse)
    analyse.add_argument("--top", type=int, default=5, help="number of worst tasks to list")
    analyse.add_argument("--utilities", action="store_true",
                         help="also report the exact utility of every checkpoint")
    _add_backend_argument(analyse)

    # simulate ----------------------------------------------------------
    simulate = subparsers.add_parser("simulate", help="Monte-Carlo estimate of a schedule")
    simulate.add_argument("--schedule", required=True)
    _add_platform_arguments(simulate)
    simulate.add_argument("--runs", type=int, default=1000)
    simulate.add_argument("--seed", type=int, default=0)
    _add_backend_argument(simulate)

    # robustness --------------------------------------------------------
    robustness = subparsers.add_parser(
        "robustness",
        help="failure-law robustness campaign (analytical vs Monte-Carlo)",
    )
    robustness.add_argument("--families", default="montage",
                            help="comma-separated workflow families")
    robustness.add_argument("--sizes", default="30,60",
                            help="comma-separated task counts")
    robustness.add_argument("--downtimes", default="0",
                            help="comma-separated downtimes D (seconds) — Theorem 3 "
                                 "stays exact for D > 0, so exponential rows must "
                                 "validate there too")
    robustness.add_argument("--processors", default="1",
                            help="comma-separated processor counts p "
                                 "(platform lambda = p x per-processor lambda)")
    robustness.add_argument("--laws", default="exponential,weibull,lognormal",
                            help="comma-separated failure laws to sweep")
    robustness.add_argument("--shapes", default="0.5,0.7",
                            help="comma-separated Weibull shape parameters")
    robustness.add_argument("--sigmas", default="1.0",
                            help="comma-separated LogNormal sigma parameters")
    robustness.add_argument("--runs", type=int, default=2000,
                            help="Monte-Carlo replicas per row")
    robustness.add_argument("--heuristic", default="DF-CkptW",
                            help=f"one of {', '.join(HEURISTIC_NAMES)}")
    robustness.add_argument("--seed", type=int, default=0,
                            help="workflow-instance / linearization seed")
    robustness.add_argument("--mc-seed", type=int, default=0,
                            help="Monte-Carlo replica-stream seed")
    robustness.add_argument("--search-mode", choices=("exhaustive", "geometric"),
                            default="geometric")
    robustness.add_argument("--max-candidates", type=int, default=30)
    robustness.add_argument("--output", "-o",
                            help="write the machine-readable JSON report here")
    robustness.add_argument("--figure",
                            help="render the campaign figure to this path (needs matplotlib)")
    robustness.add_argument("--check", action="store_true",
                            help="exit with status 1 unless every exponential row's "
                                 "analytical expectation lies in the simulation 95%% CI")
    _add_runtime_arguments(robustness)

    # figures -----------------------------------------------------------
    figures = subparsers.add_parser("figures", help="regenerate the paper's figure data")
    figures.add_argument("--preset", choices=("smoke", "paper"), default="smoke")
    figures.add_argument("--outdir", default="figure_data")
    figures.add_argument("--seed", type=int, default=0)
    _add_runtime_arguments(figures)

    # campaign ----------------------------------------------------------
    campaign = subparsers.add_parser(
        "campaign", help="multi-seed heuristic sweep with aggregation"
    )
    campaign.add_argument("--families", default="montage",
                          help="comma-separated workflow families")
    campaign.add_argument("--sizes", default="30,60",
                          help="comma-separated task counts")
    campaign.add_argument("--downtimes", default=None,
                          help="comma-separated downtimes D (seconds; grid axis, "
                               "default 0)")
    campaign.add_argument("--processors", default=None,
                          help="comma-separated processor counts p (grid axis, "
                               "default 1; platform lambda = p x per-processor "
                               "lambda)")
    campaign.add_argument("--preset", choices=("grid", "lambda-downtime"),
                          default="grid",
                          help="'grid': families x sizes x downtimes x processors; "
                               "'lambda-downtime': the lambda x D sweep preset at "
                               "the first --sizes value")
    campaign.add_argument("--seeds", default="0,1,2",
                          help="comma-separated instance seeds")
    campaign.add_argument("--heuristics", default="",
                          help="comma-separated heuristic names (default: all 14)")
    campaign.add_argument("--checkpoint-mode", choices=("proportional", "constant"),
                          default="proportional")
    campaign.add_argument("--checkpoint-factor", type=float, default=0.1)
    campaign.add_argument("--checkpoint-value", type=float, default=0.0)
    campaign.add_argument("--search-mode", choices=("exhaustive", "geometric"),
                          default="geometric")
    campaign.add_argument("--max-candidates", type=int, default=30)
    campaign.add_argument("--shard", default=None, metavar="K/N",
                          help="run only the k-th of N deterministic grid shards "
                               "(1-based, e.g. 1/2); re-assemble shard CSVs with "
                               "'repro campaign merge'")
    campaign.add_argument("--output", "-o", help="write the raw result rows to this CSV path")
    campaign.add_argument("--report", metavar="PATH",
                          help="write the rendered aggregation table to this path")
    campaign.add_argument("--journal", metavar="PATH",
                          help="append-only journal of completed units (fsync'd "
                               "JSONL); created if missing, replayed if present — "
                               "a crashed or interrupted campaign resumes from it")
    campaign.add_argument("--resume", metavar="PATH",
                          help="resume from (and keep appending to) this journal; "
                               "must exist — alias of --journal with an existence "
                               "check, for explicit resume invocations")
    campaign.add_argument("--max-retries", type=int, default=2,
                          help="pool-level retries per chunk after a worker crash "
                               "or timeout (default 2)")
    campaign.add_argument("--unit-timeout", type=float, default=None, metavar="SECONDS",
                          help="per-unit wall-clock budget; a stuck worker chunk "
                               "is killed and retried (default: none)")
    campaign.add_argument("--retry-backoff", type=float, default=0.5, metavar="SECONDS",
                          help="base of the exponential backoff between worker-pool "
                               "resets (default 0.5)")
    _add_runtime_arguments(campaign)

    # campaign merge ----------------------------------------------------
    campaign_sub = campaign.add_subparsers(dest="campaign_command")
    merge = campaign_sub.add_parser(
        "merge",
        help="merge sharded campaign CSVs and re-aggregate "
             "(byte-identical to the unsharded report)",
    )
    merge.add_argument("csvs", nargs="+",
                       help="row CSVs written by the sharded runs' --output")
    # SUPPRESS defaults: when the option is not given after 'merge', the
    # attribute set while parsing the parent campaign options survives, so
    # `repro campaign -o merged.csv merge a.csv b.csv` works like
    # `repro campaign merge a.csv b.csv -o merged.csv` instead of silently
    # discarding the output path.
    merge.add_argument("--output", "-o", default=argparse.SUPPRESS,
                       help="write the merged rows (canonical order) to this CSV path")
    merge.add_argument("--report", metavar="PATH", default=argparse.SUPPRESS,
                       help="write the rendered aggregation table to this path")

    # fabric ------------------------------------------------------------
    fabric = subparsers.add_parser(
        "fabric",
        help="distributed campaign fabric: lease-based shard coordinator, "
             "workers, and the shared remote result cache",
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command", required=True)

    coordinate = fabric_sub.add_parser(
        "coordinate",
        help="partition a campaign into TTL-leased shards and serve them to "
             "'repro fabric work' processes (resumable via --journal)",
    )
    coordinate.add_argument("--families", default="montage",
                            help="comma-separated workflow families")
    coordinate.add_argument("--sizes", default="30,60",
                            help="comma-separated task counts")
    coordinate.add_argument("--downtimes", default=None,
                            help="comma-separated downtimes D (grid axis, default 0)")
    coordinate.add_argument("--processors", default=None,
                            help="comma-separated processor counts p (grid axis, "
                                 "default 1)")
    coordinate.add_argument("--preset", choices=("grid", "lambda-downtime"),
                            default="grid")
    coordinate.add_argument("--seeds", default="0,1,2",
                            help="comma-separated instance seeds")
    coordinate.add_argument("--heuristics", default="",
                            help="comma-separated heuristic names (default: all 14)")
    coordinate.add_argument("--checkpoint-mode",
                            choices=("proportional", "constant"),
                            default="proportional")
    coordinate.add_argument("--checkpoint-factor", type=float, default=0.1)
    coordinate.add_argument("--checkpoint-value", type=float, default=0.0)
    coordinate.add_argument("--search-mode", choices=("exhaustive", "geometric"),
                            default="geometric")
    coordinate.add_argument("--max-candidates", type=int, default=30)
    coordinate.add_argument("--shards", type=int, default=2, metavar="N",
                            help="number of deterministic grid shards to lease out "
                                 "(default 2)")
    coordinate.add_argument("--host", default="127.0.0.1",
                            help="control-plane bind address")
    coordinate.add_argument("--port", type=int, default=0,
                            help="control-plane TCP port (0 picks an ephemeral one)")
    coordinate.add_argument("--ttl", type=float, default=15.0, metavar="SECONDS",
                            help="lease TTL; a worker that stops heartbeating for "
                                 "this long loses its shard (default 15)")
    coordinate.add_argument("--max-attempts", type=int, default=3,
                            help="grants per shard before poison-quarantine "
                                 "(default 3)")
    coordinate.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                            help="abort if the campaign has not finished in this "
                                 "long (default: wait forever)")
    coordinate.add_argument("--cache-server", metavar="HOST:PORT",
                            help="endpoint of a 'repro fabric cache-server' the "
                                 "workers should share (they degrade to their "
                                 "local cache when it is unreachable)")
    coordinate.add_argument("--journal", metavar="PATH",
                            help="journal of completed shards; created if missing, "
                                 "replayed if present — a crashed coordinator "
                                 "resumes without re-running finished shards")
    coordinate.add_argument("--resume", metavar="PATH",
                            help="resume from (and keep appending to) this journal; "
                                 "must exist")
    coordinate.add_argument("--output", "-o",
                            help="write the merged result rows (canonical order) "
                                 "to this CSV path")
    coordinate.add_argument("--report", metavar="PATH",
                            help="write the rendered aggregation table to this path")
    coordinate.add_argument("--metrics-output", metavar="PATH",
                            help="write the fabric metrics (Prometheus text "
                                 "exposition) to this path on exit")
    _add_backend_argument(coordinate)

    work = fabric_sub.add_parser(
        "work",
        help="lease shards from a coordinator, run them, report the rows back",
    )
    work.add_argument("--coordinator", required=True, metavar="HOST:PORT",
                      help="control-plane endpoint printed by "
                           "'repro fabric coordinate'")
    work.add_argument("--name", default=None,
                      help="worker identity in lease bookkeeping "
                           "(default: hostname-pid)")
    work.add_argument("--jobs", type=int, default=1,
                      help="worker-local processes per shard (1 = serial, "
                           "0 = all CPUs)")
    work.add_argument("--cache", dest="cache_path", metavar="PATH",
                      help="worker-local persistent cache (also the degradation "
                           "target when the shared cache server is down)")
    work.add_argument("--max-shards", type=int, default=None, metavar="N",
                      help="stop after completing N shards (default: work until "
                           "the campaign finishes)")
    work.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                      help="delay between lease polls when nothing is grantable")
    _add_backend_argument(work)

    cache_server = fabric_sub.add_parser(
        "cache-server",
        help="serve a sqlite result cache to fabric workers over TCP",
    )
    cache_server.add_argument("--cache", dest="cache_path", required=True,
                              metavar="PATH",
                              help="sqlite cache file to serve (created on demand)")
    cache_server.add_argument("--host", default="127.0.0.1", help="bind address")
    cache_server.add_argument("--port", type=int, default=0,
                              help="TCP port (0 picks an ephemeral port)")

    # serve -------------------------------------------------------------
    serve = subparsers.add_parser(
        "serve",
        help="run the checkpoint-planning HTTP service (solve/evaluate/analyse "
             "over JSON, with request batching and /metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port (0 picks an ephemeral port)")
    serve.add_argument("--jobs", type=int, default=1,
                       help="worker processes for solve batches "
                            "(1 = in-thread, 0 = all CPUs)")
    serve.add_argument("--workers", type=int, default=2,
                       help="concurrent request batches (threads)")
    serve.add_argument("--cache", dest="cache_path", metavar="PATH",
                       help="persistent result cache shared with campaign runs")
    serve.add_argument("--batch-window", type=float, default=0.0,
                       help="seconds to wait for co-batchable requests before "
                            "dispatching (0 = lowest latency)")
    serve.add_argument("--queue-max", type=int, default=256,
                       help="queued solve requests before rejecting with 503")
    serve.add_argument("--request-timeout", type=float, default=None, metavar="SECONDS",
                       help="per-request wall-clock budget; exceeded requests get "
                            "503 + Retry-After (default: none)")
    serve.add_argument("--group-retries", type=int, default=1,
                       help="solve-group retries after a worker-pool crash before "
                            "answering 503 (default 1)")
    _add_backend_argument(serve)

    # backends ----------------------------------------------------------
    backends = subparsers.add_parser(
        "backends",
        help="list evaluation backends, availability and auto resolution",
    )
    backends.add_argument(
        "--tasks", type=int, default=None, metavar="N",
        help="also report what 'auto' resolves to for an N-task instance",
    )
    backends.add_argument(
        "--json", action="store_true", dest="json_output",
        help="emit the registry listing as a JSON object on stdout",
    )

    # lint --------------------------------------------------------------
    lint = subparsers.add_parser(
        "lint",
        help="run reprolint, the determinism / cache-key invariant checker",
    )
    lint.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src/repro under the repo root)",
    )
    lint.add_argument(
        "--repo-root", default=".", metavar="DIR",
        help="repository root for cross-file registries (default: cwd)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the stable CI artifact shape)",
    )
    lint.add_argument(
        "--output", metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    lint.add_argument(
        "--rules", metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules and their invariants, then exit",
    )
    lint.add_argument(
        "--baseline", metavar="PATH",
        help="baseline file of grandfathered finding fingerprints",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="grandfather every current finding into --baseline and exit 0",
    )
    lint.add_argument(
        "--key-lock", metavar="PATH",
        help="key-schema lock file (default: <repo-root>/.reprolint-keys.json)",
    )
    lint.add_argument(
        "--write-key-lock", action="store_true",
        help="record the current key payload schema as the accepted one",
    )

    # cache -------------------------------------------------------------
    cache = subparsers.add_parser("cache", help="inspect the persistent result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry count, size and lifetime hit/miss counters"
    )
    cache_stats.add_argument("path", help="cache file created via --cache PATH")
    cache_clear = cache_sub.add_parser("clear", help="delete every cached entry")
    cache_clear.add_argument("path", help="cache file created via --cache PATH")

    return parser


def _add_runtime_arguments(parser: argparse.ArgumentParser) -> None:
    """``--jobs`` / ``--cache`` / ``--progress`` shared by the sweep commands."""
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = serial, 0 = all CPUs)")
    parser.add_argument("--cache", dest="cache_path", metavar="PATH",
                        help="persistent result cache (sqlite file, created on demand)")
    parser.add_argument("--progress", action="store_true",
                        help="report sweep progress and throughput on stderr")
    _add_backend_argument(parser)


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    """``--backend`` shared by every evaluation-heavy sub-command."""
    parser.add_argument("--backend", choices=BACKEND_REGISTRY.choices(),
                        default=None,
                        help="Theorem-3 evaluation backend (default: auto, "
                             "or the REPRO_EVAL_BACKEND environment variable; "
                             "see 'repro backends' for availability)")


def _add_platform_arguments(parser: argparse.ArgumentParser) -> None:
    """``--failure-rate`` / ``--downtime`` / ``--processors`` of the
    single-platform commands — the same platform description scenarios use,
    so direct CLI paths and campaign scenarios can never disagree."""
    parser.add_argument("--failure-rate", type=float, default=1e-3,
                        help="per-processor failure rate lambda_proc (per second); "
                             "with the default single processor this is the "
                             "platform lambda")
    parser.add_argument("--downtime", type=float, default=0.0,
                        help="downtime after each failure (s)")
    parser.add_argument("--processors", type=int, default=1,
                        help="number of processors p (platform lambda = "
                             "p x lambda_proc)")



# ----------------------------------------------------------------------
# Sub-command implementations
# ----------------------------------------------------------------------
_GENERIC_FAMILIES = {
    "chain": lambda n, seed: generators.chain_workflow(n, seed=seed),
    "fork": lambda n, seed: generators.fork_workflow(max(1, n - 1), seed=seed),
    "join": lambda n, seed: generators.join_workflow(max(1, n - 1), seed=seed),
    "layered": lambda n, seed: generators.layered_workflow(max(1, n // 5), 5, seed=seed),
    "random": lambda n, seed: generators.random_dag_workflow(n, seed=seed),
}


def _build_workflow(args: argparse.Namespace):
    family = args.family.strip().lower()
    if family in pegasus.WORKFLOW_FAMILIES or family == "epigenomics":
        workflow = pegasus.generate(family, args.tasks, seed=args.seed)
    elif family in _GENERIC_FAMILIES:
        workflow = _GENERIC_FAMILIES[family](args.tasks, args.seed)
    else:
        raise SystemExit(
            f"unknown family {args.family!r}; expected one of "
            f"{', '.join(sorted(set(pegasus.WORKFLOW_FAMILIES) | set(_GENERIC_FAMILIES)))}"
        )
    return workflow.with_checkpoint_costs(
        mode=args.checkpoint_mode,
        factor=args.checkpoint_factor,
        value=args.checkpoint_value,
    )


def _platform(args: argparse.Namespace) -> Platform:
    # Route through PlatformSpec — the exact construction Scenario.platform
    # uses — so `repro evaluate --downtime 2` and the equivalent campaign
    # scenario price the same platform by construction.
    return PlatformSpec(
        failure_rate=args.failure_rate,
        downtime=args.downtime,
        processors=getattr(args, "processors", 1),
    ).build()


def _cmd_generate(args: argparse.Namespace) -> int:
    workflow = _build_workflow(args)
    path = save_workflow(workflow, args.output)
    print(f"wrote {path} ({workflow.n_tasks} tasks, {workflow.n_edges} edges, "
          f"total work {workflow.total_weight:.1f}s)")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    workflow = load_workflow(args.workflow)
    platform = _platform(args)
    result = solve_heuristic(
        workflow, platform, args.heuristic, rng=args.seed, backend=args.backend
    )
    schedule = result.schedule
    line = (f"{args.heuristic}: E[makespan] = {result.expected_makespan:.2f}s, "
            f"T/T_inf = {result.overhead_ratio:.3f}, "
            f"{result.checkpoint_count}/{workflow.n_tasks} checkpoints")
    if args.refine:
        refined = local_search_checkpoints(schedule, platform, backend=args.backend)
        schedule = refined.schedule
        line += (f"; after refinement: {refined.expected_makespan:.2f}s "
                 f"(-{100 * refined.relative_improvement:.2f}%)")
    print(line)
    if args.output:
        path = save_schedule(schedule, args.output)
        print(f"wrote {path}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.schedule)
    platform = _platform(args)
    evaluation = evaluate_schedule(schedule, platform, backend=args.backend)
    print(json.dumps(
        {
            "expected_makespan": evaluation.expected_makespan,
            "failure_free_makespan": evaluation.failure_free_makespan,
            "failure_free_work": evaluation.failure_free_work,
            "overhead_ratio": evaluation.overhead_ratio,
            "n_checkpointed": schedule.n_checkpointed,
        },
        indent=2,
    ))
    return 0


def _cmd_analyse(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.schedule)
    platform = _platform(args)
    breakdown = analyse_schedule(schedule, platform, backend=args.backend)
    print(breakdown.render(top=args.top))
    if args.utilities:
        print("\ncheckpoint utilities (expected seconds saved by each checkpoint):")
        for utility in sorted(checkpoint_utilities(schedule, platform, backend=args.backend),
                              key=lambda u: -u.utility):
            task = schedule.workflow.task(utility.task_index)
            print(f"  {task.name:<16} {utility.utility:+10.2f}s")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    schedule = load_schedule(args.schedule)
    platform = _platform(args)
    summary = run_monte_carlo(
        schedule, platform, n_runs=args.runs, rng=args.seed, backend=args.backend
    )
    low, high = summary.ci95
    print(f"{args.runs} simulated executions: mean {summary.mean_makespan:.2f}s, "
          f"95% CI [{low:.2f}, {high:.2f}], "
          f"min {summary.min_makespan:.2f}s, max {summary.max_makespan:.2f}s, "
          f"{summary.mean_failures:.2f} failures/run")
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    # Validate everything cheap before opening the cache or sweeping.
    resolve_jobs(args.jobs)
    parse_heuristic_name(args.heuristic)
    families = _split_csv(args.families)
    sizes = [int(s) for s in _split_csv(args.sizes)]
    downtimes = [float(d) for d in _split_csv(args.downtimes)]
    processors = [int(p) for p in _split_csv(args.processors)]
    laws = _split_csv(args.laws)
    shapes = [float(s) for s in _split_csv(args.shapes)]
    sigmas = [float(s) for s in _split_csv(args.sigmas)]
    if not families:
        raise ValueError("at least one family is required")
    if not sizes:
        raise ValueError("at least one size is required")
    if not downtimes:
        raise ValueError("at least one downtime is required")
    if not processors:
        raise ValueError("at least one processor count is required")
    if not laws:
        raise ValueError("at least one failure law is required")
    if args.check and not any(law.strip().lower() == "exponential" for law in laws):
        raise ValueError(
            "--check validates the analytical backend on the exponential rows, "
            "so --laws must include 'exponential'"
        )
    if args.runs <= 1:
        raise ValueError("--runs must be at least 2 (a confidence interval needs variance)")
    for path_arg in (args.output, args.figure):
        if path_arg:
            _check_writable(Path(path_arg).parent)
    with _managed_cache(args) as cache:
        report = run_robustness(
            families,
            sizes=sizes,
            downtimes=downtimes,
            processors=processors,
            laws=laws,
            weibull_shapes=shapes,
            lognormal_sigmas=sigmas,
            n_runs=args.runs,
            heuristic=args.heuristic,
            seed=args.seed,
            mc_seed=args.mc_seed,
            search_mode=args.search_mode,
            max_candidates=args.max_candidates,
            jobs=args.jobs,
            cache=cache,
            progress=args.progress or None,
            backend=args.backend,
        )
    print(report.render())
    _print_cache_summary(cache)
    if args.output:
        path = save_robustness_report(report, args.output)
        print(f"wrote {path} ({len(report.rows)} rows)")
    if args.figure:
        path = plot_robustness(report, args.figure)
        print(f"wrote {path}")
    if args.check and not report.exponential_validated:
        print(
            "error: analytical expectation fell outside the simulation 95% CI "
            "on at least one exponential row",
            file=sys.stderr,
        )
        return 1
    return 0


def _check_writable(directory: Path) -> None:
    """Raise early if ``directory`` (or its closest existing ancestor, when
    it does not exist yet) cannot be written — without creating anything."""
    probe = directory
    while not probe.exists() and probe != probe.parent:
        probe = probe.parent
    if not os.access(probe, os.W_OK | os.X_OK):
        raise ValueError(f"output directory {directory} is not writable")


@contextmanager
def _managed_cache(args: argparse.Namespace):
    """Open the ``--cache`` store for the duration of one sweep command.

    Encodes the whole lifecycle once: open, close on exit, and — when the
    command fails before storing anything — removal of the cache file *and*
    any parent directories this invocation created, so a rejected command
    leaves no trace.  A partially completed sweep keeps what it already
    paid for.
    """
    path = getattr(args, "cache_path", None)
    if path is None:
        yield None
        return
    target = Path(path)
    fresh = not target.exists()
    created_dirs: list[Path] = []
    parent = target.parent
    while not parent.exists() and parent != parent.parent:
        created_dirs.append(parent)
        parent = parent.parent
    cache = ResultCache.open(path)
    try:
        yield cache
    except BaseException:
        if fresh and len(cache) == 0:
            cache.close()
            for suffix in ("", "-wal", "-shm"):
                stray = Path(path + suffix)
                if stray.exists():
                    stray.unlink()
            for directory in created_dirs:  # deepest first
                try:
                    directory.rmdir()
                except OSError:
                    break
        raise
    finally:
        cache.close()


def _print_cache_summary(cache: ResultCache | None) -> None:
    if cache is None:
        return
    stats = cache.stats
    print(
        f"cache: {stats.hits} hits, {stats.misses} misses, "
        f"{stats.puts} new entries (hit rate {stats.hit_rate:.0%})"
    )


def _cmd_figures(args: argparse.Namespace) -> int:
    resolve_jobs(args.jobs)  # reject a bad --jobs before creating any file
    outdir = Path(args.outdir)
    _check_writable(outdir)  # fail fast, before hours of sweep work
    with _managed_cache(args) as cache:
        results = all_figures(
            preset=args.preset,
            seed=args.seed,
            jobs=args.jobs,
            cache=cache,
            progress=args.progress or None,
            backend=args.backend,
        )
    # Create the output tree only once the sweep has succeeded, so a
    # rejected invocation leaves no trace.
    outdir.mkdir(parents=True, exist_ok=True)
    for name, result in results.items():
        path = save_rows_csv(list(result.rows), outdir / f"{name}.csv")
        print(f"wrote {path} ({len(result.rows)} rows) — {result.description}")
    _print_cache_summary(cache)
    return 0


def _split_csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _cmd_campaign(args: argparse.Namespace) -> int:
    if getattr(args, "campaign_command", None) == "merge":
        return _cmd_campaign_merge(args)
    # Validate everything cheap *before* opening the cache, so a rejected
    # invocation never leaves a stray cache file behind.
    resolve_jobs(args.jobs)
    heuristics = _split_csv(args.heuristics) or list(HEURISTIC_NAMES)
    for heuristic in heuristics:
        parse_heuristic_name(heuristic)
    if args.search_mode == "geometric":
        # Probe call: raises the library's own ValueError for a bad budget
        # (e.g. --max-candidates 1) before any cache file is created.
        candidate_counts(3, mode="geometric", max_candidates=args.max_candidates)
    families = _split_csv(args.families)
    sizes = [int(s) for s in _split_csv(args.sizes)]
    seeds = [int(s) for s in _split_csv(args.seeds)]
    downtimes = (
        [float(d) for d in _split_csv(args.downtimes)]
        if args.downtimes is not None
        else None
    )
    processors = (
        [int(p) for p in _split_csv(args.processors)]
        if args.processors is not None
        else None
    )
    shard = parse_shard(args.shard) if args.shard else None
    if not families:
        raise ValueError("at least one family is required")
    if not sizes:
        raise ValueError("at least one size is required")
    if not seeds:
        raise ValueError("at least one seed is required")
    if downtimes is not None and not downtimes:
        raise ValueError("at least one downtime is required")
    if processors is not None and not processors:
        raise ValueError("at least one processor count is required")
    for path_arg in (args.output, args.report):
        if path_arg:
            out_parent = Path(path_arg).parent
            if not out_parent.exists():
                raise ValueError(f"output directory {out_parent} does not exist")
            _check_writable(out_parent)
    if args.journal and args.resume and args.journal != args.resume:
        raise ValueError(
            "--journal and --resume point at different files; give only one"
        )
    if args.resume and not Path(args.resume).exists():
        raise ValueError(f"cannot resume: no journal at {args.resume}")
    journal_path = args.resume or args.journal
    if journal_path:
        _check_writable(Path(journal_path).parent)
    if args.preset == "lambda-downtime":
        preset_kwargs = {}
        if downtimes is not None:
            preset_kwargs["downtimes"] = downtimes
        if processors is not None:
            preset_kwargs["processors"] = processors
        scenarios = lambda_downtime_grid(
            families,
            n_tasks=sizes[0],
            checkpoint_mode=args.checkpoint_mode,
            checkpoint_factor=args.checkpoint_factor,
            checkpoint_value=args.checkpoint_value,
            heuristics=heuristics,
            shard=shard,
            **preset_kwargs,
        )
    else:
        scenarios = scenario_grid(
            families,
            sizes,
            downtimes=downtimes if downtimes is not None else (0.0,),
            processors=processors if processors is not None else (1,),
            checkpoint_mode=args.checkpoint_mode,
            checkpoint_factor=args.checkpoint_factor,
            checkpoint_value=args.checkpoint_value,
            heuristics=heuristics,
            label="campaign",
            shard=shard,
        )
    journal = CampaignJournal(journal_path) if journal_path else None
    try:
        with _managed_cache(args) as cache:
            result = run_campaign(
                scenarios,
                seeds=seeds,
                search_mode=args.search_mode,
                max_candidates=args.max_candidates,
                jobs=args.jobs,
                cache=cache,
                progress=args.progress or None,
                backend=args.backend,
                journal=journal,
                max_retries=args.max_retries,
                retry_backoff=args.retry_backoff,
                unit_timeout=args.unit_timeout,
                # A poison unit is reported below instead of sinking the
                # whole campaign.
                quarantine=True,
            )
    except KeyboardInterrupt:
        # Everything completed so far is already fsync'd (journal) and/or
        # committed (cache) — tell the user how to pick it back up.
        print(file=sys.stderr)
        if journal is not None:
            print(
                f"interrupted — {len(journal)} completed unit(s) are safe in "
                f"{journal_path}; resume with: repro campaign ... --resume "
                f"{journal_path}",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted — re-run with --journal PATH to make interrupted "
                "campaigns resumable",
                file=sys.stderr,
            )
        return 130
    finally:
        if journal is not None:
            journal.close()
    print(result.render())
    _print_cache_summary(cache)
    if args.output:
        # A sharded run stamps its output with the shard marker, so 'repro
        # campaign merge' can check that the shard set it is given is
        # complete; full-campaign outputs stay unmarked (bytes unchanged).
        path = save_rows_csv(list(result.rows), args.output, shard=shard)
        print(f"wrote {path} ({len(result.rows)} rows)")
    if args.report:
        path = Path(args.report)
        path.write_text(result.render() + "\n")
        print(f"wrote {path}")
    if result.failures:
        print(
            f"warning: {len(result.failures)} unit(s) quarantined after repeated "
            "failures (their rows are absent above):",
            file=sys.stderr,
        )
        for failure in result.failures:
            print(f"  - {failure.describe()}", file=sys.stderr)
        return 3
    return 0


def _check_shard_completeness(markers: list[tuple[str, tuple[int, int] | None]]) -> None:
    """Refuse a merge whose marked shard inputs do not cover 1..N exactly.

    Engages only when at least one input carries a ``# repro-shard`` marker
    (older CSVs and full-campaign outputs are unmarked and merge as before).
    Errors name the offending shard or the exact gap, so a shell-glob
    mistake is a one-line diagnosis rather than a silently wrong table.
    """
    marked = [(path, marker) for path, marker in markers if marker is not None]
    if not marked:
        return
    counts = {marker[1] for _, marker in marked}
    if len(counts) > 1:
        raise ValueError(
            "shard-marked inputs disagree on the shard count: "
            + ", ".join(f"{path} says {k}/{n}" for path, (k, n) in marked)
        )
    count = counts.pop()
    seen_shards: dict[int, str] = {}
    for path, (index, _) in marked:
        if index in seen_shards:
            raise ValueError(
                f"shard {index}/{count} appears twice in the merge inputs "
                f"({seen_shards[index]} and {path})"
            )
        seen_shards[index] = path
    missing = sorted(set(range(1, count + 1)) - set(seen_shards))
    if missing:
        gaps = ", ".join(f"{k}/{count}" for k in missing)
        raise ValueError(
            f"incomplete shard set: missing shard(s) {gaps} "
            f"(got {len(seen_shards)} of {count} marked inputs)"
        )


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    # Same upfront guard as the sweep path: a rejected invocation must not
    # print a table or leave a partial output file behind.
    for path_arg in (args.output, args.report):
        if path_arg:
            out_parent = Path(path_arg).parent
            if not out_parent.exists():
                raise ValueError(f"output directory {out_parent} does not exist")
            _check_writable(out_parent)
    rows = []
    markers: list[tuple[str, tuple[int, int] | None]] = []
    for csv_path in args.csvs:
        text = Path(csv_path).read_text()
        markers.append((str(csv_path), read_shard_marker(text)))
        rows.extend(rows_from_csv(text))
    _check_shard_completeness(markers)
    if not rows:
        raise ValueError("the given CSV files contain no result rows")
    # Overlapping inputs (a shard listed twice, a glob that caught a
    # previous merged.csv) would silently double-count every duplicated
    # row in the aggregation; the identity tuple makes them detectable.
    seen: set = set()
    for row in rows:
        identity = row_identity(row)
        if identity in seen:
            raise ValueError(
                "duplicate result row across the given CSV files "
                f"(e.g. {row.family} n={row.n_tasks} seed={row.seed} "
                f"{row.heuristic}); was the same shard passed twice?"
            )
        seen.add(identity)
    # Aggregation runs over the rows in shard-file order: every (grid point,
    # heuristic) group lives entirely inside one shard (shards split whole
    # scenarios), so the group-internal member order — and therefore the
    # floating-point sums — match the unsharded run exactly.
    result = CampaignResult.from_rows(rows)
    print(result.render())
    if args.output:
        merged = sorted(result.rows, key=row_identity)
        path = save_rows_csv(merged, args.output)
        print(f"wrote {path} ({len(merged)} rows)")
    if args.report:
        path = Path(args.report)
        path.write_text(result.render() + "\n")
        print(f"wrote {path}")
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    if args.fabric_command == "coordinate":
        return _cmd_fabric_coordinate(args)
    if args.fabric_command == "work":
        return _cmd_fabric_work(args)
    return _cmd_fabric_cache_server(args)


def _cmd_fabric_coordinate(args: argparse.Namespace) -> int:
    # Lazy import: the fabric layer pulls in the service metrics registry,
    # which no other sub-command needs.
    from .experiments.fabric import FabricCoordinator, FabricSpec

    # The same cheap upfront validation as 'repro campaign': a rejected
    # invocation must not bind a port or create a journal file.
    heuristics = _split_csv(args.heuristics)
    for heuristic in heuristics:
        parse_heuristic_name(heuristic)
    if args.search_mode == "geometric":
        candidate_counts(3, mode="geometric", max_candidates=args.max_candidates)
    families = _split_csv(args.families)
    sizes = [int(s) for s in _split_csv(args.sizes)]
    seeds = [int(s) for s in _split_csv(args.seeds)]
    downtimes = (
        tuple(float(d) for d in _split_csv(args.downtimes))
        if args.downtimes is not None
        else None
    )
    processors = (
        tuple(int(p) for p in _split_csv(args.processors))
        if args.processors is not None
        else None
    )
    for path_arg in (args.output, args.report, args.metrics_output):
        if path_arg:
            out_parent = Path(path_arg).parent
            if not out_parent.exists():
                raise ValueError(f"output directory {out_parent} does not exist")
            _check_writable(out_parent)
    if args.journal and args.resume and args.journal != args.resume:
        raise ValueError(
            "--journal and --resume point at different files; give only one"
        )
    if args.resume and not Path(args.resume).exists():
        raise ValueError(f"cannot resume: no journal at {args.resume}")
    journal_path = args.resume or args.journal
    if journal_path:
        _check_writable(Path(journal_path).parent)
    spec = FabricSpec(
        families=tuple(families),
        sizes=tuple(sizes),
        downtimes=downtimes,
        processors=processors,
        preset=args.preset,
        seeds=tuple(seeds),
        heuristics=tuple(heuristics),
        checkpoint_mode=args.checkpoint_mode,
        checkpoint_factor=args.checkpoint_factor,
        checkpoint_value=args.checkpoint_value,
        search_mode=args.search_mode,
        max_candidates=args.max_candidates,
        n_shards=args.shards,
    )
    coordinator = FabricCoordinator(
        spec,
        host=args.host,
        port=args.port,
        ttl=args.ttl,
        max_attempts=args.max_attempts,
        journal=journal_path,
        cache_endpoint=args.cache_server,
        backend=args.backend,
    )
    done = len(coordinator.queue.done)
    if done:
        print(f"resumed: {done}/{spec.n_shards} shard(s) already journaled")
    coordinator.start()
    print(
        f"fabric coordinator listening on {coordinator.endpoint} "
        f"({spec.n_shards} shards, ttl {args.ttl:g}s); start workers with: "
        f"repro fabric work --coordinator {coordinator.endpoint}",
        flush=True,
    )
    try:
        coordinator.serve(timeout=args.timeout)
    except KeyboardInterrupt:
        print(file=sys.stderr)
        if journal_path:
            print(
                f"interrupted — completed shards are safe in {journal_path}; "
                f"resume with: repro fabric coordinate ... --resume {journal_path}",
                file=sys.stderr,
            )
        else:
            print(
                "interrupted — re-run with --journal PATH to make interrupted "
                "fabric campaigns resumable",
                file=sys.stderr,
            )
        return 130
    finally:
        if args.metrics_output:
            Path(args.metrics_output).write_text(coordinator.registry.render())
        coordinator.close()
    result = coordinator.result()
    print(result.render())
    if args.output:
        merged = sorted(result.rows, key=row_identity)
        path = save_rows_csv(merged, args.output)
        print(f"wrote {path} ({len(merged)} rows)")
    if args.report:
        path = Path(args.report)
        path.write_text(result.render() + "\n")
        print(f"wrote {path}")
    failures = coordinator.failures
    if failures:
        # The same quarantine contract as 'repro campaign': exit 3 plus a
        # structured stderr block naming what is absent from the table.
        print(
            f"warning: {len(failures)} shard(s) quarantined after repeated "
            "failures (their rows are absent above):",
            file=sys.stderr,
        )
        for lease in failures:
            print(f"  - {lease.describe()}", file=sys.stderr)
        return 3
    return 0


def _cmd_fabric_work(args: argparse.Namespace) -> int:
    from .experiments.fabric import FabricError, FabricWorker

    resolve_jobs(args.jobs)  # reject a bad --jobs before dialing out
    worker = FabricWorker(
        args.coordinator,
        name=args.name,
        jobs=args.jobs,
        local_cache_path=args.cache_path,
        backend=args.backend,
        poll=args.poll,
        on_event=lambda message: print(message, file=sys.stderr, flush=True),
    )
    try:
        completed = worker.run(max_shards=args.max_shards)
    except FabricError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"completed {completed} shard(s)")
    return 0


def _cmd_fabric_cache_server(args: argparse.Namespace) -> int:
    from .runtime.cachenet import CacheNetServer

    server = CacheNetServer(DiskCache(args.cache_path), host=args.host, port=args.port)
    print(
        f"fabric cache server listening on {server.endpoint} "
        f"(cache {args.cache_path}); point workers at it with: "
        f"repro fabric coordinate --cache-server {server.endpoint}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ninterrupted", file=sys.stderr)
        return 0
    finally:
        server.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Lazy import: the service package pulls in asyncio plumbing no other
    # sub-command needs.
    from .service import ServiceConfig, run_server

    resolve_jobs(args.jobs)  # reject a bad --jobs before binding the socket
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        workers=args.workers,
        cache_path=args.cache_path,
        backend=args.backend,
        batch_window=args.batch_window,
        queue_max=args.queue_max,
        request_timeout=args.request_timeout,
        group_retries=args.group_retries,
    )
    return run_server(
        config,
        announce=lambda url: print(f"repro service listening on {url}", flush=True),
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if args.cache_command == "stats":
        try:
            stats = read_disk_stats(path)
        except FileNotFoundError:
            print(f"no cache file at {path}", file=sys.stderr)
            return 1
        print(json.dumps(stats, indent=2))
        return 0
    if not path.exists():
        print(f"no cache file at {path}", file=sys.stderr)
        return 1
    read_disk_stats(path)  # refuse (read-only) before mutating a foreign file
    disk = DiskCache(path)
    try:
        removed = disk.clear()
    finally:
        disk.close()
    print(f"removed {removed} entries from {path}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """List registered evaluation backends (the registry's describe rows)."""
    rows = BACKEND_REGISTRY.describe(n_tasks=args.tasks)
    resolved: str | None = None
    resolve_error: str | None = None
    try:
        resolved = BACKEND_REGISTRY.resolve("auto", n_tasks=args.tasks).name
    except ValueError as exc:  # no available backend at all
        resolve_error = str(exc)
    if args.json_output:
        payload: dict = {"backends": rows}
        if args.tasks is not None:
            payload["n_tasks"] = args.tasks
        if resolved is not None:
            payload["auto"] = resolved
        else:
            # The same {"error": {"code", "message"}} shape --json error
            # reporting uses, nested so the listing still comes through.
            payload["auto"] = None
            payload["error"] = {"code": "no-backend", "message": resolve_error}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    name_width = max(len(row["name"]) for row in rows)
    for row in rows:
        status = "available" if row["available"] else "unavailable"
        line = (
            f"{row['name']:<{name_width}}  {status:<11}  "
            f"priority={row['priority']:<3} "
            f"min_auto_tasks={row['min_auto_tasks']:<3} "
            f"capabilities={','.join(row['capabilities'])}"
        )
        print(line)
        if not row["available"]:
            print(f"{'':<{name_width}}  reason: {row['unavailable_reason']}")
    if resolved is not None:
        suffix = f" for n_tasks={args.tasks}" if args.tasks is not None else ""
        print(f"auto resolves to: {resolved}{suffix}")
    else:
        print(f"auto resolves to: error ({resolve_error})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint.  Exit codes: 0 clean, 1 findings, 2 usage/internal."""
    # Lazy import: devtools is contributor/CI tooling and must not tax the
    # startup of every other subcommand.
    from .devtools import reprolint as rl
    from .devtools.reprolint.rules.cache_keys import compute_lock_for_paths

    try:
        if args.list_rules:
            for rule_id in sorted(rl.RULES):
                rule = rl.RULES[rule_id]
                print(f"{rule_id}  {rule.name} [{rule.scope}]")
                print(f"       {rule.invariant}")
            return 0

        repo_root = Path(args.repo_root).resolve()
        paths = [Path(p) for p in args.paths]
        if not paths:
            default = repo_root / "src" / "repro"
            if not default.is_dir():
                raise rl.LintError(
                    f"no paths given and {default} does not exist; pass the "
                    f"directories to lint explicitly"
                )
            paths = [default]

        if args.write_key_lock:
            ctx, schema = compute_lock_for_paths(
                paths, repo_root, key_lock_path_override=args.key_lock
            )
            if schema is None:
                raise rl.LintError(
                    "the linted tree has no runtime/keys.py; cannot lock a "
                    "key schema"
                )
            target = rl.write_key_lock(
                ctx, Path(args.key_lock) if args.key_lock else None
            )
            print(f"key schema locked in {target}")
            return 0

        config: dict[str, object] = {}
        if args.key_lock:
            config["key_lock_path"] = args.key_lock
        # When (re)writing the baseline, the file is allowed not to exist
        # yet; in read mode a missing path is a hard error (typo guard).
        baseline = None
        if args.baseline and not args.write_baseline:
            baseline = rl.load_baseline(Path(args.baseline))
        only_rules = (
            [r.strip() for r in args.rules.split(",") if r.strip()]
            if args.rules
            else None
        )
        result = rl.run_lint(
            paths,
            repo_root=repo_root,
            baseline=baseline,
            only_rules=only_rules,
            config=config,
        )

        if args.write_baseline:
            if not args.baseline:
                raise rl.LintError("--write-baseline requires --baseline PATH")
            rl.write_baseline(Path(args.baseline), result)
            print(
                f"baseline written to {args.baseline} "
                f"({len(result.findings)} finding(s) grandfathered)"
            )
            return 0

        report = (
            rl.render_json(result)
            if args.format == "json"
            else rl.render_text(result)
        )
        if args.output:
            Path(args.output).write_text(report, encoding="utf-8")
        else:
            sys.stdout.write(report)
        return 0 if result.clean else 1
    except rl.LintError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2


_COMMANDS = {
    "generate": _cmd_generate,
    "solve": _cmd_solve,
    "evaluate": _cmd_evaluate,
    "analyse": _cmd_analyse,
    "simulate": _cmd_simulate,
    "robustness": _cmd_robustness,
    "figures": _cmd_figures,
    "campaign": _cmd_campaign,
    "fabric": _cmd_fabric,
    "serve": _cmd_serve,
    "backends": _cmd_backends,
    "lint": _cmd_lint,
    "cache": _cmd_cache,
}


#: Machine-readable error codes of ``--json`` mode, by exception type.  The
#: same ``{"error": {"code", "message"}}`` shape the service daemon returns,
#: so one client-side parser covers CLI and HTTP failures.
_JSON_ERROR_CODES = (
    (sqlite3.DatabaseError, "cache-error"),
    (OSError, "io-error"),
    (ValueError, "bad-request"),
)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    try:
        return handler(args)
    except KeyboardInterrupt:
        # Sub-commands with state to save (campaign) handle the interrupt
        # themselves; this is the fallback for everything else.  130 is the
        # conventional 128+SIGINT exit code.
        print("\ninterrupted", file=sys.stderr)
        return 130
    except (ValueError, OSError, sqlite3.DatabaseError) as exc:
        # Routine bad input (unknown family/heuristic, empty seed list,
        # missing/corrupt/unwritable file) gets a one-line message, not a
        # traceback.
        # The library signals every one of these with ValueError, so the
        # blanket catch is the price of clean messages; REPRO_DEBUG=1
        # re-raises for debugging an unexpected ValueError from deeper in
        # the stack.
        if os.environ.get("REPRO_DEBUG", "").lower() in ("1", "true", "yes"):
            raise
        if getattr(args, "json_errors", False):
            code = next(
                code for kind, code in _JSON_ERROR_CODES if isinstance(exc, kind)
            )
            print(
                json.dumps({"error": {"code": code, "message": str(exc)}}),
                file=sys.stderr,
            )
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
