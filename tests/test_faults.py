"""Chaos suite: deterministic fault injection across the crash-safety stack.

Every failure path added by the crash-safe-campaigns work is exercised here
through the ``REPRO_FAULTS`` registry (:mod:`repro.runtime.faults`):

* worker supervision — transient crashes retried, poison units bisected and
  quarantined, stuck units timed out;
* the campaign journal — torn tails, idempotence, version pinning, and the
  headline contract: a crashed-then-resumed campaign renders byte-identical
  to an uninterrupted one (in-process here, via SIGKILL in CI);
* disk-cache corruption — quarantine-and-rebuild on open and mid-session;
* service degradation — a broken worker pool answers 503 + ``Retry-After``
  and self-heals, per-request budgets map to 503 ``timeout``.
"""

from __future__ import annotations

import json
import math
import os
import sqlite3
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.experiments import Scenario, run_campaign
from repro.runtime import (
    FAULTS_ENV,
    QUARANTINED,
    CampaignJournal,
    DiskCache,
    WorkerFailure,
    active_faults,
    fault_fired,
    fault_point,
    parallel_map,
    parse_faults,
)

HEURISTICS = ("DF-CkptW", "DF-CkptNvr")  # deterministic and fast


@pytest.fixture
def scenario():
    return Scenario(
        family="montage",
        n_tasks=15,
        failure_rate=1e-3,
        heuristics=HEURISTICS,
        label="chaos-test",
    )


@pytest.fixture(autouse=True)
def _no_inherited_faults(monkeypatch):
    # A spec leaking in from the invoking shell must not skew these tests.
    monkeypatch.delenv(FAULTS_ENV, raising=False)


# ----------------------------------------------------------------------
# Fault-spec grammar
# ----------------------------------------------------------------------
class TestParseFaults:
    def test_full_clause(self):
        (clause,) = parse_faults(
            "worker_crash:unit=3,attempt=1,raise=RuntimeError,after=2,times=1"
        )
        assert clause.site == "worker_crash"
        assert clause.action == ("raise", "RuntimeError")
        assert clause.after == 2
        assert clause.times == 1
        assert clause.match == {"unit": "3", "attempt": "1"}

    def test_multiple_clauses_and_empty_spec(self):
        clauses = parse_faults("cache_read; campaign_unit:exit=7")
        assert [c.site for c in clauses] == ["cache_read", "campaign_unit"]
        assert clauses[0].action is None  # site default applies at the point
        assert clauses[1].action == ("exit", "7")
        assert parse_faults("") == []

    def test_unknown_exception_rejected(self):
        with pytest.raises(ValueError, match="unknown exception"):
            parse_faults("cache_read:raise=SystemExit")

    def test_two_actions_rejected(self):
        with pytest.raises(ValueError, match="more than one action"):
            parse_faults("demo:raise=ValueError,exit=1")

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ValueError, match="expected key=value"):
            parse_faults("demo:unit")

    def test_unknown_site_warns_but_parses(self):
        # A typo'd site must not pass silently (it would arm nothing and
        # the chaos test would stop testing anything), but it must not be
        # a hard error either: specs may legitimately name sites that only
        # exist in a newer/older build.
        with pytest.warns(RuntimeWarning, match="unknown fault site 'worker_crsh'"):  # reprolint: allow[RL006]
            (clause,) = parse_faults("worker_crsh:exit=9")  # reprolint: allow[RL006]
        assert clause.action == ("exit", "9")

    def test_registry_is_exported_and_closed(self):
        from repro.runtime import KNOWN_FAULT_SITES

        assert "worker_crash" in KNOWN_FAULT_SITES
        assert "demo" in KNOWN_FAULT_SITES
        with warnings.catch_warnings():  # known sites never warn
            warnings.simplefilter("error")
            parse_faults(";".join(f"{s}:exit=1" for s in sorted(KNOWN_FAULT_SITES)))


class TestFaultPoint:
    def test_unarmed_spec_is_a_noop(self):
        fault_point("worker_crash", default="exit=137", unit=0)  # must not fire

    def test_clause_action_fires_with_site_and_context_in_message(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "demo:raise=RuntimeError")
        with pytest.raises(RuntimeError, match=r"injected fault at demo \(unit=7\)"):
            fault_point("demo", unit=7)

    def test_context_match_gates_firing(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "demo:unit=3,raise=ValueError")
        fault_point("demo", unit=2)  # no match, no fire
        with pytest.raises(ValueError):
            fault_point("demo", unit=3)

    def test_after_skips_matching_calls(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "demo:after=2,raise=ValueError")
        fault_point("demo")
        fault_point("demo")
        with pytest.raises(ValueError):
            fault_point("demo")

    def test_times_caps_firings(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "demo:times=1,raise=ValueError")
        with pytest.raises(ValueError):
            fault_point("demo")
        fault_point("demo")  # budget spent
        assert fault_fired("demo") == 1

    def test_site_default_applies_when_clause_names_no_action(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "demo")
        with pytest.raises(sqlite3.DatabaseError):
            fault_point("demo", default="raise=DatabaseError")
        fault_point("demo")  # no default at this point: still a no-op

    def test_changing_the_spec_resets_counters(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "demo:times=1,raise=ValueError")
        with pytest.raises(ValueError):
            fault_point("demo")
        monkeypatch.setenv(FAULTS_ENV, "demo:times=1,raise=ValueError ")
        with pytest.raises(ValueError):
            fault_point("demo")

    def test_active_faults_restores_the_environment(self):
        with active_faults("demo:raise=ValueError"):
            assert os.environ[FAULTS_ENV] == "demo:raise=ValueError"
            with pytest.raises(ValueError):
                fault_point("demo")
        assert FAULTS_ENV not in os.environ
        fault_point("demo")


# ----------------------------------------------------------------------
# Worker supervision (the faults ride os.environ into forked workers)
# ----------------------------------------------------------------------
class TestSupervision:
    def test_transient_worker_crash_is_retried_to_the_serial_result(
        self, monkeypatch
    ):
        # The worker handling unit 2 dies hard on the first attempt only —
        # the retry (attempt 2) no longer matches, so supervision recovers
        # the exact serial result.
        values = list(range(8))
        serial = parallel_map(math.sqrt, values, jobs=1)
        monkeypatch.setenv(FAULTS_ENV, "worker_crash:unit=2,attempt=1")
        assert (
            parallel_map(
                math.sqrt, values, jobs=2, chunksize=2,
                max_retries=2, retry_backoff=0.0,
            )
            == serial
        )

    def test_poison_unit_is_bisected_and_quarantined_alone(self, monkeypatch):
        # Unit 5 kills its worker on every attempt.  Bisection must isolate
        # it: its chunk-mates (same initial chunk) still produce results.
        monkeypatch.setenv(FAULTS_ENV, "worker_crash:unit=5")
        failures: list[WorkerFailure] = []
        results = parallel_map(
            math.sqrt, list(range(8)), jobs=2, chunksize=4,
            max_retries=1, retry_backoff=0.0,
            quarantine=True, on_failure=failures.append,
        )
        assert results[5] is QUARANTINED
        assert [r for i, r in enumerate(results) if i != 5] == [
            math.sqrt(i) for i in range(8) if i != 5
        ]
        assert [f.unit_index for f in failures] == [5]
        assert failures[0].kind == "crash"
        assert failures[0].attempts >= 2  # it was genuinely retried

    def test_stuck_unit_times_out_and_is_quarantined(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "chunk_timeout:unit=1,sleep=5")
        failures: list[WorkerFailure] = []
        results = parallel_map(
            math.sqrt, [1.0, 4.0, 9.0, 16.0], jobs=2, chunksize=1,
            unit_timeout=0.5, max_retries=0, retry_backoff=0.0,
            quarantine=True, on_failure=failures.append,
        )
        assert results[1] is QUARANTINED
        assert [results[0], results[2], results[3]] == [1.0, 3.0, 4.0]
        assert [f.unit_index for f in failures] == [1]
        assert failures[0].kind == "timeout"

    def test_without_quarantine_the_poison_failure_is_raised(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "worker_crash:unit=0")
        with pytest.raises(WorkerFailure) as excinfo:
            parallel_map(
                math.sqrt, [4.0, 9.0], jobs=2, chunksize=1,
                max_retries=0, retry_backoff=0.0,
            )
        assert excinfo.value.unit_index == 0
        assert excinfo.value.kind == "crash"


# ----------------------------------------------------------------------
# Campaign journal
# ----------------------------------------------------------------------
class TestCampaignJournal:
    def test_roundtrip_and_idempotence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("k1", {"x": 1.5})
            journal.record("k1", {"x": 999.0})  # idempotent: first write wins
            journal.record_failure("k2", {"kind": "crash", "attempts": 3})
        lines = path.read_text().splitlines()
        assert len(lines) == 3  # header + one unit + one failure
        with CampaignJournal(path) as journal:
            assert journal.get("k1") == {"x": 1.5}
            assert "k1" in journal and len(journal) == 1
            assert journal.failures["k2"]["kind"] == "crash"

    def test_torn_tail_is_dropped_and_trimmed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("k1", {"x": 1.0})
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "unit", "key": "k2", "outc')  # crash mid-write
        with CampaignJournal(path) as journal:
            assert "k1" in journal and "k2" not in journal
            journal.record("k3", {"x": 3.0})  # appends on a clean boundary
        with CampaignJournal(path) as journal:
            assert sorted(journal.keys()) == ["k1", "k3"]

    def test_non_journal_file_is_rejected(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("hello\n")
        with pytest.raises(ValueError, match="not a campaign journal"):
            CampaignJournal(path)

    def test_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {"kind": "journal", "v": 999, "key_version": 2, "algo_version": 2}
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError, match="re-run the campaign"):
            CampaignJournal(path)

    def test_unknown_record_kinds_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with CampaignJournal(path) as journal:
            journal.record("k1", {"x": 1.0})
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "future-extension", "key": "k9", "blob": []}\n')
        with CampaignJournal(path) as journal:
            assert sorted(journal.keys()) == ["k1"]


class TestCampaignResume:
    def test_crash_then_resume_renders_bit_identical(
        self, scenario, tmp_path, monkeypatch
    ):
        reference = run_campaign([scenario], seeds=(0, 1))
        journal_path = tmp_path / "campaign.jsonl"
        # Die right after the second completed unit lands in the journal
        # (the point fires post-write, so after=1 means two units are safe) —
        # the in-process stand-in for the CI gate's exit=137 kill.
        monkeypatch.setenv(FAULTS_ENV, "campaign_unit:raise=KeyboardInterrupt,after=1")
        with pytest.raises(KeyboardInterrupt):
            run_campaign([scenario], seeds=(0, 1), journal=str(journal_path))
        monkeypatch.delenv(FAULTS_ENV)
        with CampaignJournal(journal_path) as journal:
            completed_at_crash = len(journal)
        assert completed_at_crash == 2

        resumed = run_campaign([scenario], seeds=(0, 1), journal=str(journal_path))
        assert resumed.render() == reference.render()
        assert len(resumed.rows) == len(reference.rows)

    def test_full_journal_replays_without_any_computation(
        self, scenario, tmp_path, monkeypatch
    ):
        journal_path = tmp_path / "campaign.jsonl"
        reference = run_campaign([scenario], seeds=(0,), journal=str(journal_path))

        def bomb(unit):  # pragma: no cover - must never run
            raise AssertionError("journal replay must not recompute")

        monkeypatch.setattr("repro.runtime.runner._solve_unit", bomb)
        replayed = run_campaign([scenario], seeds=(0,), journal=str(journal_path))
        assert replayed.render() == reference.render()

    def test_journal_replay_warms_the_cache(self, scenario, tmp_path):
        from repro.runtime import ResultCache

        journal_path = tmp_path / "campaign.jsonl"
        run_campaign([scenario], seeds=(0,), journal=str(journal_path))
        cache = ResultCache(maxsize=64)
        run_campaign(
            [scenario], seeds=(0,), journal=str(journal_path), cache=cache
        )
        assert cache.stats.puts == len(HEURISTICS)


# ----------------------------------------------------------------------
# CLI: SIGINT semantics and the kill-resume contract
# ----------------------------------------------------------------------
CLI_ARGS = [
    "campaign",
    "--families", "montage",
    "--sizes", "15",
    "--seeds", "0",
    "--heuristics", ",".join(HEURISTICS),
]


class TestCampaignCli:
    def test_interrupt_exits_130_with_resume_hint(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        journal_path = tmp_path / "j.jsonl"
        monkeypatch.setenv(
            FAULTS_ENV, "campaign_unit:raise=KeyboardInterrupt,after=1"
        )
        code = main(CLI_ARGS + ["--journal", str(journal_path)])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert f"--resume {journal_path}" in err

    def test_interrupt_without_journal_suggests_one(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(
            FAULTS_ENV, "campaign_unit:raise=KeyboardInterrupt,after=1"
        )
        code = main(list(CLI_ARGS))
        assert code == 130
        assert "--journal" in capsys.readouterr().err

    def test_resume_report_matches_uninterrupted_run(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.cli import main

        reference_report = tmp_path / "reference.txt"
        assert main(CLI_ARGS + ["--report", str(reference_report)]) == 0
        capsys.readouterr()

        journal_path = tmp_path / "j.jsonl"
        monkeypatch.setenv(
            FAULTS_ENV, "campaign_unit:raise=KeyboardInterrupt,after=1"
        )
        assert main(CLI_ARGS + ["--journal", str(journal_path)]) == 130
        monkeypatch.delenv(FAULTS_ENV)
        capsys.readouterr()

        resumed_report = tmp_path / "resumed.txt"
        code = main(
            CLI_ARGS + ["--resume", str(journal_path), "--report", str(resumed_report)]
        )
        assert code == 0
        assert resumed_report.read_bytes() == reference_report.read_bytes()

    def test_resume_requires_an_existing_journal(self, tmp_path, capsys):
        from repro.cli import main

        code = main(CLI_ARGS + ["--resume", str(tmp_path / "missing.jsonl")])
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_conflicting_journal_and_resume_rejected(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "a.jsonl").write_text("")
        code = main(
            CLI_ARGS
            + ["--journal", str(tmp_path / "a.jsonl"),
               "--resume", str(tmp_path / "b.jsonl")]
        )
        assert code == 2
        assert "give only one" in capsys.readouterr().err


class TestKillResumeSubprocess:
    """The true hard-kill path: ``os._exit(137)`` mid-campaign, then resume.

    This is the same contract the CI kill-resume gate enforces with ``cmp``;
    running it here keeps the property testable without CI.
    """

    def _run(self, args, *, faults=None, cwd=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        env.pop(FAULTS_ENV, None)
        if faults is not None:
            env[FAULTS_ENV] = faults
        return subprocess.run(
            [sys.executable, "-m", "repro", *args],
            env=env, cwd=cwd, capture_output=True, text=True, timeout=300,
        )

    def test_sigkill_mid_campaign_then_resume_is_byte_identical(self, tmp_path):
        reference = tmp_path / "reference.txt"
        completed = self._run(CLI_ARGS + ["--report", str(reference)])
        assert completed.returncode == 0, completed.stderr

        journal = tmp_path / "j.jsonl"
        killed = self._run(
            CLI_ARGS + ["--journal", str(journal)],
            faults="campaign_unit:after=1",
        )
        assert killed.returncode == 137  # died hard, mid-run
        assert journal.exists()

        resumed_report = tmp_path / "resumed.txt"
        resumed = self._run(
            CLI_ARGS + ["--resume", str(journal), "--report", str(resumed_report)]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert resumed_report.read_bytes() == reference.read_bytes()


# ----------------------------------------------------------------------
# Disk-cache corruption recovery
# ----------------------------------------------------------------------
class TestCacheCorruption:
    def test_corrupt_file_on_open_is_quarantined_and_rebuilt(
        self, tmp_path, caplog
    ):
        path = tmp_path / "cache.sqlite"
        path.write_bytes(b"this is not a sqlite database at all")
        with caplog.at_level("WARNING", logger="repro.runtime.cache"):
            cache = DiskCache(path)
        try:
            assert cache.get("k") is None
            cache.put("k", {"x": 1.0})
            assert cache.get("k") == {"x": 1.0}
        finally:
            cache.close()
        quarantined = list(tmp_path.glob("cache.sqlite.corrupt-*"))
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes().startswith(b"this is not")
        assert any("quarantin" in r.message for r in caplog.records)

    def test_corruption_during_read_recovers_to_an_empty_cache(
        self, tmp_path, monkeypatch, caplog
    ):
        path = tmp_path / "cache.sqlite"
        cache = DiskCache(path)
        cache.put("k", {"x": 1.0})
        monkeypatch.setenv(FAULTS_ENV, "cache_read:times=1")
        with caplog.at_level("WARNING", logger="repro.runtime.cache"):
            assert cache.get("k") is None  # corruption surfaced as a miss
        monkeypatch.delenv(FAULTS_ENV)
        try:
            cache.put("k2", {"y": 2.0})  # the rebuilt cache is writable
            assert cache.get("k2") == {"y": 2.0}
        finally:
            cache.close()
        assert list(tmp_path.glob("cache.sqlite.corrupt-*"))

    def test_corruption_during_open_validation_is_survived(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(FAULTS_ENV, "cache_open:times=1")
        cache = DiskCache(tmp_path / "cache.sqlite")
        try:
            cache.put("k", {"x": 1.0})
            assert cache.get("k") == {"x": 1.0}
        finally:
            cache.close()


# ----------------------------------------------------------------------
# Service degradation and self-healing
# ----------------------------------------------------------------------
class TestServiceChaos:
    @staticmethod
    def _request(port, method, path, payload=None):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            body = json.dumps(payload) if payload is not None else None
            conn.request(method, path, body=body)
            response = conn.getresponse()
            raw = response.read()
            headers = dict(response.getheaders())
            if headers.get("Content-Type", "").startswith("application/json"):
                return response.status, json.loads(raw), headers
            return response.status, raw.decode("utf-8"), headers
        finally:
            conn.close()

    @staticmethod
    def _solve_payload():
        return {
            "family": "montage", "n_tasks": 12, "seed": 3, "heuristic": "DF-CkptW",
        }

    def test_pool_crash_answers_503_with_retry_after_then_heals(self, monkeypatch):
        from repro.service import BackgroundServer, ServiceConfig

        config = ServiceConfig(port=0, workers=1, group_retries=0)
        with BackgroundServer(config) as server:
            monkeypatch.setenv(FAULTS_ENV, "service_group:raise=BrokenProcessPool")
            status, payload, headers = self._request(
                server.port, "POST", "/v1/solve", self._solve_payload()
            )
            assert status == 503
            assert payload["error"]["code"] == "pool-crashed"
            assert headers.get("Retry-After") == "1"

            monkeypatch.delenv(FAULTS_ENV)
            status, payload, _ = self._request(
                server.port, "POST", "/v1/solve", self._solve_payload()
            )
            assert status == 200  # self-healed, no restart
            assert payload["expected_makespan"] > 0

            _, metrics, _ = self._request(server.port, "GET", "/metrics")
            assert "repro_pool_crashes_total 1" in metrics

    def test_pool_crash_is_retried_within_the_request(self, monkeypatch):
        from repro.service import BackgroundServer, ServiceConfig

        config = ServiceConfig(port=0, workers=1, group_retries=1)
        with BackgroundServer(config) as server:
            # Only the first attempt of the group crashes; the in-request
            # retry (attempt=2) succeeds, so the client sees a plain 200.
            monkeypatch.setenv(
                FAULTS_ENV, "service_group:raise=BrokenProcessPool,attempt=1"
            )
            status, payload, _ = self._request(
                server.port, "POST", "/v1/solve", self._solve_payload()
            )
            assert status == 200
            assert payload["expected_makespan"] > 0
            _, metrics, _ = self._request(server.port, "GET", "/metrics")
            assert "repro_solve_retries_total 1" in metrics
            assert "repro_pool_crashes_total 1" in metrics

    def test_request_timeout_maps_to_503_timeout(self, monkeypatch):
        from repro.service import BackgroundServer, ServiceConfig

        config = ServiceConfig(port=0, workers=1, request_timeout=0.2)
        with BackgroundServer(config) as server:
            monkeypatch.setenv(FAULTS_ENV, "service_group:sleep=2,times=1")
            status, payload, headers = self._request(
                server.port, "POST", "/v1/solve", self._solve_payload()
            )
            assert status == 503
            assert payload["error"]["code"] == "timeout"
            assert headers.get("Retry-After") == "1"
            monkeypatch.delenv(FAULTS_ENV)
            _, metrics, _ = self._request(server.port, "GET", "/metrics")
            assert "repro_solve_timeouts_total 1" in metrics
