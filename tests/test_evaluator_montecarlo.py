"""Cross-validation: analytical evaluator vs Monte-Carlo fault injection.

Theorem 3's evaluator and the discrete-event engine were written independently
from the paper's execution model; agreement between the two on a diverse set of
workflows is the strongest correctness evidence this reproduction can produce
without the authors' original OCaml code.
"""

from __future__ import annotations

import pytest

from repro import Platform, Schedule, evaluate_schedule, run_monte_carlo
from repro.heuristics import linearize
from repro.workflows import generators, pegasus


def assert_analytical_in_ci(schedule, platform, *, n_runs=3000, seed=0, widen=1.6):
    """The analytical value must fall inside a (slightly widened) 95% CI."""
    summary = run_monte_carlo(schedule, platform, n_runs=n_runs, rng=seed)
    analytical = evaluate_schedule(schedule, platform).expected_makespan
    low, high = summary.ci95
    margin = (high - low) / 2.0 * widen + 1e-9
    assert abs(summary.mean_makespan - analytical) <= margin, (
        f"analytical {analytical:.4f} outside MC interval "
        f"[{low:.4f}, {high:.4f}] (mean {summary.mean_makespan:.4f})"
    )


class TestAgreementOnStructuredDags:
    def test_chain_with_checkpoints(self):
        wf = generators.chain_workflow(6, weights=[20, 35, 10, 45, 25, 15]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(4e-3, downtime=2.0)
        assert_analytical_in_ci(Schedule(wf, range(6), {1, 3}), platform)

    def test_chain_without_checkpoints(self):
        wf = generators.chain_workflow(5, weights=[30, 20, 25, 15, 10]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(3e-3)
        assert_analytical_in_ci(Schedule(wf, range(5), ()), platform)

    def test_fork(self):
        wf = generators.fork_workflow(5, source_weight=40.0, seed=1, mean_weight=25.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(3e-3, downtime=1.0)
        order = wf.topological_order()
        assert_analytical_in_ci(Schedule(wf, order, {0}), platform)

    def test_join(self):
        wf = generators.join_workflow(5, sink_weight=30.0, seed=2, mean_weight=30.0).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(3e-3)
        order = wf.topological_order()
        assert_analytical_in_ci(Schedule(wf, order, {0, 2}), platform)

    def test_paper_example_schedule(self, paper_example_schedule):
        platform = Platform.from_platform_rate(8e-3, downtime=1.5)
        assert_analytical_in_ci(paper_example_schedule, platform, n_runs=4000)

    def test_diamond_with_downtime(self, diamond):
        platform = Platform.from_platform_rate(1e-2, downtime=5.0)
        assert_analytical_in_ci(Schedule(diamond, (0, 2, 1, 3), {0}), platform)


class TestAgreementOnRandomAndPegasusDags:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_layered_random(self, seed):
        wf = generators.layered_workflow(3, 3, density=0.7, seed=seed).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(2e-3, downtime=1.0)
        order = linearize(wf, "DF")
        checkpointed = set(range(0, wf.n_tasks, 3))
        assert_analytical_in_ci(Schedule(wf, order, checkpointed), platform, n_runs=2500)

    def test_montage_heuristic_schedule(self):
        wf = pegasus.montage(25, seed=3).with_checkpoint_costs(mode="proportional", factor=0.1)
        platform = Platform.from_platform_rate(2e-3)
        order = linearize(wf, "DF")
        checkpointed = set(order[:: 4])
        assert_analytical_in_ci(Schedule(wf, order, checkpointed), platform, n_runs=2500)

    def test_cybershake_bf_schedule(self):
        wf = pegasus.cybershake(20, seed=4).with_checkpoint_costs(mode="constant", value=5.0)
        platform = Platform.from_platform_rate(1.5e-3, downtime=3.0)
        order = linearize(wf, "BF")
        checkpointed = set(order[1::3])
        assert_analytical_in_ci(Schedule(wf, order, checkpointed), platform, n_runs=2500)


class TestSmokeGridWithDowntime:
    """Theorem 3 vs Monte-Carlo on scenario-layer platforms with D > 0.

    This is the end-to-end guard for the downtime plumbing: the schedule is
    solved through the harness exactly as campaigns do, and the scenario's
    platform (downtime included) must price within the simulation CI on
    both Monte-Carlo backends.
    """

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("downtime", [5.0, 60.0])
    def test_scenario_analytical_within_ci(self, backend, downtime):
        from repro import solve_heuristic
        from repro.experiments import Scenario, build_workflow
        from repro.heuristics import heuristic_rng

        scenario = Scenario(
            family="montage", n_tasks=20, failure_rate=5e-3,
            downtime=downtime, heuristics=("DF-CkptW",), seed=4,
        )
        workflow = build_workflow(scenario)
        platform = scenario.platform
        assert platform.downtime == downtime
        result = solve_heuristic(
            workflow, platform, "DF-CkptW", rng=heuristic_rng(scenario.seed, "DF-CkptW")
        )
        summary = run_monte_carlo(
            result.schedule, platform, n_runs=3000, rng=0, backend=backend
        )
        low, high = summary.ci95
        margin = (high - low) / 2.0 * 1.6 + 1e-9
        assert abs(summary.mean_makespan - result.expected_makespan) <= margin

    def test_multi_processor_scenario_within_ci(self):
        from repro import solve_heuristic
        from repro.experiments import Scenario, build_workflow
        from repro.heuristics import heuristic_rng

        scenario = Scenario(
            family="montage", n_tasks=20, failure_rate=1e-3,
            downtime=10.0, processors=4, heuristics=("DF-CkptW",), seed=4,
        )
        workflow = build_workflow(scenario)
        platform = scenario.platform
        result = solve_heuristic(
            workflow, platform, "DF-CkptW", rng=heuristic_rng(scenario.seed, "DF-CkptW")
        )
        assert_analytical_in_ci(result.schedule, platform, n_runs=3000)


class TestHighFailureRegime:
    def test_agreement_when_failures_are_frequent(self):
        """Several failures per task on average: exercises deep recovery chains."""
        wf = generators.chain_workflow(4, weights=[30, 40, 20, 30]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(2.5e-2, downtime=1.0)
        assert_analytical_in_ci(Schedule(wf, range(4), {0, 1, 2, 3}), platform, n_runs=4000)

    def test_agreement_with_no_checkpoints_high_rate(self):
        wf = generators.diamond_workflow(weights=[15, 25, 10, 20]).with_checkpoint_costs(
            mode="proportional", factor=0.1
        )
        platform = Platform.from_platform_rate(1.5e-2)
        assert_analytical_in_ci(Schedule(wf, (0, 1, 2, 3), ()), platform, n_runs=4000)
